"""Deployment and routing-tree serialization (JSON).

Reproducible experiments need their topologies to be shareable
artifacts, not just code paths: a deployment generated randomly today
must be reloadable bit-for-bit next year.  Round-trippable JSON for
:class:`~repro.net.topology.Deployment` and
:class:`~repro.net.routing.RoutingTree`.
"""

from __future__ import annotations

import json

from repro.net.routing import RoutingTree
from repro.net.topology import Deployment

__all__ = [
    "deployment_to_json",
    "deployment_from_json",
    "routing_tree_to_json",
    "routing_tree_from_json",
]

_DEPLOYMENT_FORMAT = "repro/deployment/v1"
_TREE_FORMAT = "repro/routing-tree/v1"


def deployment_to_json(deployment: Deployment) -> str:
    """Serialize a deployment (positions, sink, range, labels)."""
    return json.dumps(
        {
            "format": _DEPLOYMENT_FORMAT,
            "sink": deployment.sink,
            "radio_range": deployment.radio_range,
            "positions": {
                str(node): [x, y] for node, (x, y) in deployment.positions.items()
            },
            "labels": dict(deployment.labels),
        },
        indent=2,
        sort_keys=True,
    )


def deployment_from_json(text: str) -> Deployment:
    """Inverse of :func:`deployment_to_json`.

    Raises
    ------
    ValueError
        If the document is not a v1 deployment.
    """
    payload = json.loads(text)
    if payload.get("format") != _DEPLOYMENT_FORMAT:
        raise ValueError(
            f"not a {_DEPLOYMENT_FORMAT} document: format="
            f"{payload.get('format')!r}"
        )
    positions = {
        int(node): (float(x), float(y))
        for node, (x, y) in payload["positions"].items()
    }
    return Deployment(
        positions=positions,
        sink=int(payload["sink"]),
        radio_range=float(payload["radio_range"]),
        labels={str(k): int(v) for k, v in payload.get("labels", {}).items()},
    )


def routing_tree_to_json(tree: RoutingTree) -> str:
    """Serialize a routing tree (parent pointers + sink)."""
    return json.dumps(
        {
            "format": _TREE_FORMAT,
            "sink": tree.sink,
            "parent": {str(child): parent for child, parent in tree.parent.items()},
        },
        indent=2,
        sort_keys=True,
    )


def routing_tree_from_json(text: str) -> RoutingTree:
    """Inverse of :func:`routing_tree_to_json` (revalidates the tree)."""
    payload = json.loads(text)
    if payload.get("format") != _TREE_FORMAT:
        raise ValueError(
            f"not a {_TREE_FORMAT} document: format={payload.get('format')!r}"
        )
    return RoutingTree(
        parent={int(child): int(parent) for child, parent in payload["parent"].items()},
        sink=int(payload["sink"]),
    )
