"""Sensor-network substrate: packets, deployments, links and routing.

This layer models the network exactly at the abstraction level of the
paper's simulator: node positions and connectivity, a routing tree
toward a single sink, constant per-hop transmission delay (tau = 1 time
unit; "we simplified the PHY- and MAC-level protocols by adopting a
constant transmission delay", Section 5.2), and packets carrying the
TinyOS MultiHop-style cleartext header next to an encrypted payload.
"""

from repro.net.link import ConstantDelayLink, LossyLink
from repro.net.packet import Packet, PacketObservation, RoutingHeader
from repro.net.routing import (
    DisconnectedDeploymentError,
    RoutingTree,
    backup_parents,
    greedy_grid_tree,
    shortest_path_tree,
)
from repro.net.serialization import (
    deployment_from_json,
    deployment_to_json,
    routing_tree_from_json,
    routing_tree_to_json,
)
from repro.net.topology import (
    Deployment,
    grid_deployment,
    line_deployment,
    paper_topology,
    random_geometric_deployment,
)

__all__ = [
    "Packet",
    "PacketObservation",
    "RoutingHeader",
    "ConstantDelayLink",
    "LossyLink",
    "RoutingTree",
    "DisconnectedDeploymentError",
    "shortest_path_tree",
    "greedy_grid_tree",
    "backup_parents",
    "Deployment",
    "grid_deployment",
    "line_deployment",
    "random_geometric_deployment",
    "paper_topology",
    "deployment_to_json",
    "deployment_from_json",
    "routing_tree_to_json",
    "routing_tree_from_json",
]
