"""Packets: cleartext routing headers plus sealed payloads.

The split between header and payload is the crux of the threat model
(paper, Section 2):

* the **routing header** travels in the clear, mirroring the TinyOS
  1.1.7 MultiHop header (``MultiHop.h``): previous-hop id, origin id,
  routing-layer sequence number and hop count.  The adversary reads all
  of it;
* the **payload** (sensor reading, application sequence number, and the
  creation timestamp) is encrypted and authenticated by
  :mod:`repro.crypto`; the adversary cannot open it.

:class:`PacketObservation` is the *only* view handed to adversary
implementations -- constructing it strips everything but the cleartext
header and the observed arrival time, enforcing the threat model by
construction rather than by convention.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.crypto.payload import SealedPayload

__all__ = ["RoutingHeader", "Packet", "PacketObservation"]


@dataclass(frozen=True)
class RoutingHeader:
    """Cleartext multihop routing header (TinyOS MultiHop style).

    Attributes
    ----------
    previous_hop:
        Id of the node that last transmitted the packet.
    origin:
        Id of the node that generated the packet (used by the routing
        layer to tell generated from forwarded traffic).
    routing_seq:
        Routing-layer sequence number used for loop suppression.  It is
        not flow-specific, so -- as the paper notes -- it does not help
        the adversary estimate creation times.
    hop_count:
        Number of hops the packet has traversed so far.  The adversary
        reads the final value at the sink to learn the flow's path
        length h_i.
    """

    previous_hop: int
    origin: int
    routing_seq: int
    hop_count: int

    def forwarded(self, by_node: int) -> "RoutingHeader":
        """Header after one more hop, transmitted by ``by_node``."""
        return replace(self, previous_hop=by_node, hop_count=self.hop_count + 1)


@dataclass
class Packet:
    """A sensor packet in flight.

    ``created_at`` duplicates the (encrypted) payload timestamp for the
    simulator's own bookkeeping; the sink cross-checks it against the
    decrypted payload, and adversaries never see it (they receive
    :class:`PacketObservation` instead).
    """

    header: RoutingHeader
    payload: SealedPayload
    flow_id: int
    created_at: float
    packet_id: int

    def observe(self, arrival_time: float) -> "PacketObservation":
        """The eavesdropper's view of this packet arriving at the sink."""
        return PacketObservation(
            arrival_time=arrival_time,
            previous_hop=self.header.previous_hop,
            origin=self.header.origin,
            routing_seq=self.header.routing_seq,
            hop_count=self.header.hop_count,
        )


@dataclass(frozen=True)
class PacketObservation:
    """What the adversary sees: arrival time and cleartext header only.

    There is deliberately no reference back to the :class:`Packet`, no
    payload, and no creation time.  The adversary identifies the flow
    by the cleartext origin id and reads the path length from the hop
    count, exactly the two pieces of network knowledge the paper grants
    (Section 2.1).
    """

    arrival_time: float
    previous_hop: int
    origin: int
    routing_seq: int
    hop_count: int
