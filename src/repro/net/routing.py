"""Routing trees toward the sink.

Sensor networks route convergecast traffic over a spanning tree rooted
at the sink ("each message is routed in a hop-by-hop manner based on a
routing tree", Section 4).  Two constructions:

* :func:`shortest_path_tree` -- BFS/Dijkstra tree over any deployment's
  connectivity graph (ties broken deterministically by node id), the
  general-purpose router;
* :func:`greedy_grid_tree` -- the deterministic "staircase" router for
  grid deployments: step toward the sink along the axis with the larger
  remaining distance (ties step in x).  On the paper topology this
  makes the four flows merge progressively into a shared trunk, the
  behaviour Figure 1 depicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import networkx as nx

from repro.net.topology import Deployment

__all__ = [
    "RoutingTree",
    "DisconnectedDeploymentError",
    "shortest_path_tree",
    "greedy_grid_tree",
    "backup_parents",
]


class DisconnectedDeploymentError(ValueError):
    """A deployment node cannot reach the sink over the radio graph.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    call sites keep working; carries the offending node so scenario
    tooling can report *which* placement failed instead of guessing.
    """

    def __init__(self, node: int, sink: int, n_unreachable: int = 1) -> None:
        self.node = node
        self.sink = sink
        self.n_unreachable = n_unreachable
        others = (
            f" ({n_unreachable - 1} other nodes are unreachable too)"
            if n_unreachable > 1
            else ""
        )
        super().__init__(
            f"deployment is disconnected: node {node} cannot reach the "
            f"sink {sink} over the radio graph{others}; increase "
            "radio_range or node density"
        )


@dataclass(frozen=True)
class RoutingTree:
    """A spanning tree of next-hop pointers toward the sink.

    Attributes
    ----------
    parent:
        Mapping node id -> next hop toward the sink.  The sink itself
        is absent from the mapping.
    sink:
        The root of the tree.
    """

    parent: Mapping[int, int]
    sink: int

    def __post_init__(self) -> None:
        if self.sink in self.parent:
            raise ValueError("the sink must not have a parent")
        for node in self.parent:
            # Walk to the root; a cycle would loop forever, so bound it.
            current = node
            for _ in range(len(self.parent) + 1):
                current = self.parent.get(current, self.sink)
                if current == self.sink:
                    break
            else:
                raise ValueError(f"node {node} cannot reach the sink (cycle?)")

    def next_hop(self, node: int) -> int:
        """The node ``node`` forwards to."""
        if node == self.sink:
            raise ValueError("the sink does not forward")
        try:
            return self.parent[node]
        except KeyError:
            raise KeyError(f"node {node} is not in the routing tree")

    def path(self, source: int) -> list[int]:
        """Nodes from ``source`` to the sink inclusive."""
        nodes = [source]
        while nodes[-1] != self.sink:
            nodes.append(self.next_hop(nodes[-1]))
        return nodes

    def hop_count(self, source: int) -> int:
        """Number of transmissions from ``source`` to the sink.

        This is the h_i the adversary reads out of the cleartext
        header's hop-count field.
        """
        return len(self.path(source)) - 1

    def depths(self) -> dict[int, int]:
        """Hop count of every node (sink included, at 0), in one pass.

        Equivalent to calling :meth:`hop_count` per node but memoized
        along shared path suffixes, so it is O(n) instead of O(n * h)
        -- the difference between instant and sluggish on the 10^4-node
        scenario topologies.
        """
        depth = {self.sink: 0}
        for node in self.parent:
            chain: list[int] = []
            current = node
            while current not in depth:
                chain.append(current)
                current = self.parent.get(current, self.sink)
            base = depth[current]
            for offset, member in enumerate(reversed(chain), start=1):
                depth[member] = base + offset
        return depth

    def children_map(self) -> dict[int, list[int]]:
        """Inverse of ``parent``: node -> nodes forwarding into it."""
        children: dict[int, list[int]] = {}
        for child, par in self.parent.items():
            children.setdefault(par, []).append(child)
        for nodes in children.values():
            nodes.sort()
        return children

    def nodes_on_flows(self, sources: list[int]) -> set[int]:
        """All nodes participating in the given flows (excluding sink)."""
        involved: set[int] = set()
        for source in sources:
            involved.update(self.path(source)[:-1])
        return involved


def backup_parents(deployment: Deployment, tree: RoutingTree) -> dict[int, int]:
    """Per-node failover parents for crash resilience.

    A node whose tree parent is down needs somewhere else to forward.
    The backup parent is the connectivity-graph neighbour -- other than
    the primary parent -- with the *smallest tree depth* (hops to the
    sink along the tree), provided that depth is strictly smaller than
    the node's own.  Strict progress toward the sink guarantees the
    failover graph is loop-free even if every primary parent fails at
    once.  Ties break toward the smaller node id, keeping failover
    deterministic.  Nodes with no qualifying neighbour (e.g. a node
    whose only closer neighbour *is* its parent) are absent from the
    mapping and simply lose packets while their parent is down.

    Raises :class:`ValueError` naming the offending node when the tree
    and the deployment disagree (a tree node that is not deployed, or a
    radio neighbour that is not part of the tree) instead of surfacing
    a bare ``KeyError`` from deep inside the depth lookup.
    """
    graph = deployment.connectivity_graph()
    depth = tree.depths()
    backups: dict[int, int] = {}
    for node in tree.parent:
        if node not in graph:
            raise ValueError(
                f"routing-tree node {node} is not in the deployment "
                f"(deployed ids: {len(deployment.positions)} nodes, "
                f"sink {deployment.sink}); tree and deployment disagree"
            )
        primary = tree.parent[node]
        candidates: list[tuple[int, int]] = []
        for neighbor in graph.neighbors(node):
            neighbor_depth = depth.get(neighbor)
            if neighbor_depth is None:
                raise ValueError(
                    f"neighbour {neighbor} of node {node} is absent from "
                    f"the routing tree toward sink {tree.sink}; the tree "
                    "does not span the deployment it is used with"
                )
            if neighbor != primary and neighbor_depth < depth[node]:
                candidates.append((neighbor_depth, neighbor))
        if candidates:
            backups[node] = min(candidates)[1]
    return backups


def shortest_path_tree(deployment: Deployment) -> RoutingTree:
    """BFS shortest-path tree over the connectivity graph.

    Ties between equally short parents are broken toward the smaller
    node id so that routing is deterministic across runs.

    Raises :class:`DisconnectedDeploymentError` -- naming the first
    unreachable node -- when the deployment does not connect; the BFS
    distances double as the reachability check, so the graph is built
    once instead of twice.
    """
    graph = deployment.connectivity_graph()
    distances = nx.single_source_shortest_path_length(graph, deployment.sink)
    unreachable = [n for n in deployment.node_ids if n not in distances]
    if unreachable:
        raise DisconnectedDeploymentError(
            unreachable[0], deployment.sink, len(unreachable)
        )
    parent: dict[int, int] = {}
    for node in deployment.node_ids:
        if node == deployment.sink:
            continue
        candidates = [
            neighbor
            for neighbor in graph.neighbors(node)
            if distances[neighbor] == distances[node] - 1
        ]
        if not candidates:  # pragma: no cover - BFS guarantees a parent
            raise DisconnectedDeploymentError(node, deployment.sink)
        parent[node] = min(candidates)
    return RoutingTree(parent=parent, sink=deployment.sink)


def greedy_grid_tree(deployment: Deployment, width: int) -> RoutingTree:
    """Deterministic staircase routing on a grid deployment.

    Each node steps toward the sink's corner along the axis with the
    larger remaining distance; on a tie it steps in x.  Produces the
    progressive-merge structure of the paper's Figure 1: flows from
    deeper in the grid join the diagonal trunk and share all remaining
    hops.  Hop counts equal Manhattan distances, as with any shortest
    -path grid routing.

    Only valid for unit-spaced row-major grids (``id = y * width + x``,
    integer coordinates).  Every computed parent is validated against
    ``deployment.positions``: a non-lattice or non-row-major deployment
    raises a clear :class:`ValueError` instead of silently producing a
    tree whose parents reference the wrong -- or nonexistent -- nodes.
    """
    if width < 1:
        raise ValueError(f"grid width must be at least 1, got {width}")
    sink_x, sink_y = deployment.positions[deployment.sink]
    parent: dict[int, int] = {}
    for node, (x, y) in deployment.positions.items():
        if node == deployment.sink:
            continue
        dx = x - sink_x
        dy = y - sink_y
        if abs(dx) >= abs(dy) and dx != 0:
            step = (-1 if dx > 0 else 1, 0)
        elif dy != 0:
            step = (0, -1 if dy > 0 else 1)
        else:  # pragma: no cover - co-located with sink but not the sink
            raise ValueError(f"node {node} is co-located with the sink")
        next_x, next_y = int(x + step[0]), int(y + step[1])
        if x + step[0] != next_x or y + step[1] != next_y:
            raise ValueError(
                f"greedy_grid_tree requires integer unit-spaced grid "
                f"coordinates, but node {node} sits at ({x:g}, {y:g}); "
                "use shortest_path_tree for non-lattice deployments"
            )
        parent_id = next_y * width + next_x
        actual = deployment.positions.get(parent_id)
        if actual is None:
            raise ValueError(
                f"greedy_grid_tree: node {node} at ({x:g}, {y:g}) steps "
                f"to ({next_x}, {next_y}), but the row-major id "
                f"{parent_id} = {next_y} * {width} + {next_x} is not "
                f"deployed; the deployment is not a width-{width} "
                "row-major grid"
            )
        if (float(actual[0]), float(actual[1])) != (float(next_x), float(next_y)):
            raise ValueError(
                f"greedy_grid_tree: node {node} at ({x:g}, {y:g}) steps "
                f"to ({next_x}, {next_y}), but node {parent_id} -- the "
                f"row-major id for that cell -- sits at "
                f"({actual[0]:g}, {actual[1]:g}); node ids are not "
                f"row-major (id = y * {width} + x) in this deployment"
            )
        parent[node] = parent_id
    return RoutingTree(parent=parent, sink=deployment.sink)
