"""Link models: how long a transmission takes, and whether it arrives.

The paper's simulator "simplified the PHY- and MAC-level protocols by
adopting a constant transmission delay (i.e. 1 time unit) from any node
to its neighbors" (Section 5.2).  :class:`ConstantDelayLink` is that
model; :class:`LossyLink` adds i.i.d. loss as an extension used in the
robustness experiments (packet loss perturbs the adversary's timing
picture too, so it interacts with temporal privacy).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ConstantDelayLink", "LossyLink"]


class ConstantDelayLink:
    """A link with fixed transmission delay and no loss.

    Parameters
    ----------
    delay:
        tau, the per-hop transmission time (1 time unit in the paper).
    """

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.delay = float(delay)

    def transmission_delay(self) -> float:
        """Delay of the next transmission."""
        return self.delay

    def delivers(self) -> bool:
        """Whether the next transmission is delivered (always True)."""
        return True


class LossyLink(ConstantDelayLink):
    """A constant-delay link dropping each packet independently.

    Parameters
    ----------
    delay:
        Per-hop transmission time.
    loss_probability:
        Probability an individual transmission is lost.
    rng:
        Random stream for the loss coin flips.
    """

    def __init__(
        self,
        delay: float,
        loss_probability: float,
        rng: np.random.Generator,
    ) -> None:
        super().__init__(delay)
        if not 0.0 <= loss_probability <= 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1], got {loss_probability}"
            )
        self.loss_probability = float(loss_probability)
        self._rng = rng

    def delivers(self) -> bool:
        """One Bernoulli trial: True if the packet survives the hop.

        The closed-interval endpoints short-circuit without consuming
        randomness: 0 always delivers, and 1 -- a crash-equivalent
        link, useful for boundary tests -- never does.
        """
        if self.loss_probability == 0.0:
            return True
        if self.loss_probability == 1.0:
            return False
        return bool(self._rng.random() >= self.loss_probability)
