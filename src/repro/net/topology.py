"""Deployments: where the nodes are and who can hear whom.

A :class:`Deployment` is a set of node positions plus a communication
radius; connectivity is the induced unit-disk graph.  Builders cover
the standard research topologies (line, grid, random geometric) and
:func:`paper_topology` reconstructs the evaluation scenario of the
paper's Figure 1: four source flows with hop counts 15, 22, 9 and 11
that merge progressively on their way to a common sink.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

import networkx as nx
import numpy as np

__all__ = [
    "Deployment",
    "line_deployment",
    "grid_deployment",
    "random_geometric_deployment",
    "paper_topology",
    "PAPER_SOURCE_POSITIONS",
    "PAPER_HOP_COUNTS",
]

# Source positions on the 12x12 grid used by :func:`paper_topology`.
# With the sink at (0, 0) and 4-neighbour grid connectivity, the hop
# count of each flow is the Manhattan distance -- matching the flow
# hop counts reported in Section 5.2 (S1..S4 -> 15, 22, 9, 11).
PAPER_SOURCE_POSITIONS: dict[str, tuple[int, int]] = {
    "S1": (7, 8),
    "S2": (11, 11),
    "S3": (4, 5),
    "S4": (5, 6),
}
PAPER_HOP_COUNTS: dict[str, int] = {"S1": 15, "S2": 22, "S3": 9, "S4": 11}


@dataclass
class Deployment:
    """Node positions, a sink, and radio connectivity.

    Parameters
    ----------
    positions:
        Mapping node id -> (x, y) position.
    sink:
        Id of the data sink (base station).
    radio_range:
        Two nodes are connected iff their Euclidean distance is at most
        this range.
    """

    positions: Mapping[int, tuple[float, float]]
    sink: int
    radio_range: float
    labels: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.sink not in self.positions:
            raise ValueError(f"sink id {self.sink} has no position")
        if self.radio_range <= 0:
            raise ValueError(f"radio range must be positive, got {self.radio_range}")

    @property
    def node_ids(self) -> list[int]:
        """All node ids, sorted."""
        return sorted(self.positions)

    def distance(self, a: int, b: int) -> float:
        """Euclidean distance between two nodes."""
        (ax, ay), (bx, by) = self.positions[a], self.positions[b]
        return math.hypot(ax - bx, ay - by)

    def connectivity_graph(self) -> nx.Graph:
        """The unit-disk communication graph.

        Candidate pairs come from a spatial hash (grid cells of side
        ``radio_range``): two nodes within range always fall in the
        same or adjacent cells, so only those pairs are distance-tested.
        The edge set is exactly the brute-force all-pairs one
        (``distance <= radio_range + 1e-12``), but building it is
        O(n * local density) instead of O(n^2) -- the difference
        between milliseconds and minutes at the 10^3-10^4-node
        scenario scales.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self.positions)
        ids = self.node_ids
        if len(ids) < 2:
            return graph
        cell = self.radio_range
        buckets: dict[tuple[int, int], list[int]] = {}
        for node in ids:
            x, y = self.positions[node]
            key = (math.floor(x / cell), math.floor(y / cell))
            buckets.setdefault(key, []).append(node)
        limit = self.radio_range + 1e-12
        # Half of the 8-neighbourhood: each unordered cell pair is
        # visited exactly once, as is each node pair within a cell.
        offsets = ((1, -1), (1, 0), (1, 1), (0, 1))
        for (cx, cy), members in buckets.items():
            for i, a in enumerate(members):
                for b in members[i + 1 :]:
                    if self.distance(a, b) <= limit:
                        graph.add_edge(a, b)
            for ox, oy in offsets:
                others = buckets.get((cx + ox, cy + oy))
                if others is None:
                    continue
                for a in members:
                    for b in others:
                        if self.distance(a, b) <= limit:
                            graph.add_edge(a, b)
        return graph

    def is_connected(self) -> bool:
        """True if every node can reach the sink over some path."""
        graph = self.connectivity_graph()
        return nx.is_connected(graph) if graph.number_of_nodes() else True

    def node_for_label(self, label: str) -> int:
        """Resolve a human label (e.g. ``"S1"``) to a node id."""
        try:
            return self.labels[label]
        except KeyError:
            raise KeyError(f"no node labelled {label!r}; labels: {sorted(self.labels)}")


def line_deployment(hops: int, spacing: float = 1.0) -> Deployment:
    """A line S -> F1 -> ... -> sink with ``hops`` hops.

    Node 0 is the source, node ``hops`` is the sink; the source's flow
    has hop count exactly ``hops``.  This is the topology of the
    paper's two-party and tandem analyses (Sections 3-4).
    """
    if hops < 1:
        raise ValueError(f"need at least 1 hop, got {hops}")
    if spacing <= 0:
        raise ValueError(f"spacing must be positive, got {spacing}")
    positions = {i: (i * spacing, 0.0) for i in range(hops + 1)}
    return Deployment(
        positions=positions,
        sink=hops,
        radio_range=spacing,
        labels={"S1": 0, "sink": hops},
    )


def grid_deployment(width: int, height: int, spacing: float = 1.0) -> Deployment:
    """A ``width x height`` grid with the sink at the origin corner.

    Node ids are assigned row-major (``id = y * width + x``); radio
    range equals the spacing, giving 4-neighbour connectivity, so hop
    counts to the sink equal Manhattan distances.
    """
    if width < 1 or height < 1:
        raise ValueError("grid dimensions must be positive")
    positions = {
        y * width + x: (x * spacing, y * spacing)
        for y in range(height)
        for x in range(width)
    }
    return Deployment(
        positions=positions,
        sink=0,
        radio_range=spacing,
        labels={"sink": 0},
    )


def random_geometric_deployment(
    n_nodes: int,
    area_side: float,
    radio_range: float,
    rng: np.random.Generator | int,
    max_attempts: int = 50,
) -> Deployment:
    """Uniform random node placement, resampled until connected.

    The sink is the node closest to the area's corner (0, 0), modelling
    an edge-of-field base station.

    ``rng`` may be a ``numpy`` ``Generator`` or a plain integer seed
    (``default_rng(seed)`` is built internally), so declarative
    scenario specs can pin the topology with a number: the same seed
    always yields the identical deployment.
    """
    if n_nodes < 2:
        raise ValueError(f"need at least 2 nodes, got {n_nodes}")
    if area_side <= 0:
        raise ValueError(f"area side must be positive, got {area_side}")
    if isinstance(rng, (int, np.integer)):
        rng = np.random.default_rng(int(rng))
    for _ in range(max_attempts):
        coords = rng.uniform(0.0, area_side, size=(n_nodes, 2))
        positions = {i: (float(x), float(y)) for i, (x, y) in enumerate(coords)}
        sink = min(positions, key=lambda i: math.hypot(*positions[i]))
        deployment = Deployment(
            positions=positions,
            sink=sink,
            radio_range=radio_range,
            labels={"sink": sink},
        )
        if deployment.is_connected():
            return deployment
    raise RuntimeError(
        f"could not draw a connected deployment in {max_attempts} attempts "
        f"({n_nodes} nodes over a {area_side:g} x {area_side:g} area = "
        f"{n_nodes / area_side**2:.3g} nodes per unit area at radio range "
        f"{radio_range:g}); increase radio_range or node density"
    )


def paper_topology() -> Deployment:
    """The Figure 1 evaluation topology.

    A 12x12 grid with the sink at the corner (0, 0) and sources S1-S4
    placed so their shortest-path hop counts are 15, 22, 9 and 11,
    exactly the four flows of Section 5.2.  Under the deterministic
    staircase routing of :func:`repro.net.routing.greedy_grid_tree`
    the four flows merge progressively: S2's path passes through S1,
    and S1's path passes through S4 and S3, so the near-sink trunk
    carries all four flows -- the traffic-accumulation regime the
    queueing analysis (Section 4) is about.
    """
    deployment = grid_deployment(width=12, height=12)
    labels = dict(deployment.labels)
    for label, (x, y) in PAPER_SOURCE_POSITIONS.items():
        labels[label] = y * 12 + x
    deployment.labels = labels
    return deployment
