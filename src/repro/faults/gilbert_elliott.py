"""The Gilbert-Elliott two-state Markov burst-loss channel.

An i.i.d. Bernoulli loss model (the existing
:class:`repro.net.link.LossyLink`) cannot produce *bursts*: on real
radios, fades last many packet times, so losses cluster.  The standard
minimal model is a two-state Markov chain -- a GOOD state with low loss
and a BAD state with high loss -- stepped once per transmission:

* from GOOD the channel moves to BAD with probability ``p_good_to_bad``;
* from BAD it recovers to GOOD with probability ``p_bad_to_good``;
* a packet sent while the chain is in state ``s`` is lost with
  probability ``loss_good`` or ``loss_bad`` respectively.

The stationary bad-state probability is
``pi_bad = p_gb / (p_gb + p_bg)`` and the long-run loss rate is
``(1 - pi_bad) * loss_good + pi_bad * loss_bad``; mean burst (bad
sojourn) length is ``1 / p_bad_to_good`` transmissions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GilbertElliottChannel"]


class GilbertElliottChannel:
    """One Gilbert-Elliott chain, stepped at every transmission.

    Parameters
    ----------
    p_good_to_bad, p_bad_to_good:
        Per-transmission state transition probabilities.
    loss_good, loss_bad:
        Loss probability of a transmission made in each state.
    rng:
        Random stream for both the state walk and the loss draws.

    Examples
    --------
    >>> import numpy as np
    >>> chan = GilbertElliottChannel(
    ...     p_good_to_bad=0.5, p_bad_to_good=0.5,
    ...     loss_good=0.0, loss_bad=1.0,
    ...     rng=np.random.Generator(np.random.PCG64(0)))
    >>> isinstance(chan.delivers(), bool)
    True
    """

    def __init__(
        self,
        p_good_to_bad: float,
        p_bad_to_good: float,
        loss_good: float,
        loss_bad: float,
        rng: np.random.Generator,
    ) -> None:
        for name, value in (
            ("p_good_to_bad", p_good_to_bad),
            ("p_bad_to_good", p_bad_to_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_good_to_bad = float(p_good_to_bad)
        self.p_bad_to_good = float(p_bad_to_good)
        self.loss_good = float(loss_good)
        self.loss_bad = float(loss_bad)
        self._rng = rng
        self.in_bad_state = False
        self.transitions_to_bad = 0

    # ------------------------------------------------------------------
    def steady_state_loss(self) -> float:
        """Long-run loss rate under the stationary state distribution."""
        denom = self.p_good_to_bad + self.p_bad_to_good
        if denom == 0.0:
            # Absorbing start state: the chain never leaves GOOD.
            return self.loss_good
        pi_bad = self.p_good_to_bad / denom
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    def mean_burst_length(self) -> float:
        """Expected bad-state sojourn, in transmissions."""
        if self.p_bad_to_good == 0.0:
            return float("inf")
        return 1.0 / self.p_bad_to_good

    # ------------------------------------------------------------------
    def delivers(self) -> bool:
        """Step the chain once, then draw the loss for this transmission."""
        if self.in_bad_state:
            if self._rng.random() < self.p_bad_to_good:
                self.in_bad_state = False
        else:
            if self._rng.random() < self.p_good_to_bad:
                self.in_bad_state = True
                self.transitions_to_bad += 1
        loss = self.loss_bad if self.in_bad_state else self.loss_good
        if loss == 0.0:
            return True
        if loss == 1.0:
            return False
        return bool(self._rng.random() >= loss)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "BAD" if self.in_bad_state else "GOOD"
        return (
            f"GilbertElliottChannel(state={state}, "
            f"p_gb={self.p_good_to_bad:g}, p_bg={self.p_bad_to_good:g})"
        )
