"""Declarative fault plans attached to a simulation configuration.

A :class:`FaultPlan` composes four orthogonal fault families plus the
link ARQ resilience mechanism:

* :class:`BurstyLossSpec` -- Gilbert-Elliott burst loss, one chain per
  transmitting node;
* :class:`JitterSpec` -- random per-hop delay jitter added to the
  constant transmission delay tau;
* :class:`DuplicationSpec` -- spurious packet duplication (the MAC
  heard its own ACK collide and re-sent; the copy travels one hop and
  is suppressed by the receiver's duplicate filter);
* :class:`CrashWindow` -- scheduled node crash/recovery intervals: a
  crashed node neither receives nor transmits, its buffered packets
  freeze until recovery (never released mid-crash -- audited), and
  upstream nodes fail over to a backup parent where one exists;
* :class:`~repro.faults.arq.ArqSpec` -- stop-and-wait retransmission.

Everything is plain declarative data: the runtime sampling lives in
:class:`~repro.faults.injector.FaultInjector`, and all randomness is
drawn from named :class:`~repro.des.rng.RngRegistry` streams so a
fault realization is a pure function of the simulation seed.

A plan with no active component reports :attr:`FaultPlan.is_noop`,
and the simulator then takes the exact pre-fault code paths --
bit-identical results, enforced by test.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.arq import ArqSpec

__all__ = [
    "BurstyLossSpec",
    "JitterSpec",
    "DuplicationSpec",
    "CrashWindow",
    "FaultPlan",
]


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class BurstyLossSpec:
    """Gilbert-Elliott parameters shared by every link's chain."""

    p_good_to_bad: float
    p_bad_to_good: float
    loss_bad: float
    loss_good: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("p_good_to_bad", self.p_good_to_bad)
        _check_probability("p_bad_to_good", self.p_bad_to_good)
        _check_probability("loss_bad", self.loss_bad)
        _check_probability("loss_good", self.loss_good)
        if self.p_good_to_bad > 0 and self.p_bad_to_good == 0 and self.loss_bad < 1:
            # Allowed (absorbing bad state), but loss_bad == 0 there is
            # a configuration mistake: the chain wedges in a lossless
            # "bad" state and the spec silently does nothing.
            if self.loss_bad == 0 and self.loss_good == 0:
                raise ValueError(
                    "absorbing bad state with zero loss everywhere: "
                    "the spec can never drop a packet"
                )

    @property
    def is_noop(self) -> bool:
        """True if no transmission can ever be lost."""
        if self.loss_good > 0:
            return False
        return self.p_good_to_bad == 0 or self.loss_bad == 0


@dataclass(frozen=True)
class JitterSpec:
    """Uniform per-hop delay jitter on top of tau.

    Each transmission's delay becomes ``tau + U[0, amplitude)``.
    Jitter is additive and non-negative so causality (arrival after
    send) is preserved without clamping.
    """

    amplitude: float

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ValueError(
                f"jitter amplitude must be non-negative, got {self.amplitude}"
            )

    @property
    def is_noop(self) -> bool:
        return self.amplitude == 0.0


@dataclass(frozen=True)
class DuplicationSpec:
    """Per-transmission probability of emitting a spurious second copy."""

    probability: float

    def __post_init__(self) -> None:
        _check_probability("duplication probability", self.probability)

    @property
    def is_noop(self) -> bool:
        return self.probability == 0.0


@dataclass(frozen=True)
class CrashWindow:
    """One node's scheduled crash interval ``[start, end)``.

    ``end`` may be ``inf`` for a node that never recovers; its frozen
    buffer contents are then counted as stranded by the invariant
    auditor rather than delivered.
    """

    node: int
    start: float
    end: float = float("inf")

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"crash start must be non-negative, got {self.start}")
        if self.end <= self.start:
            raise ValueError(
                f"crash window must end after it starts: [{self.start}, {self.end})"
            )

    def covers(self, time: float) -> bool:
        """True if the node is down at ``time``."""
        return self.start <= time < self.end


@dataclass(frozen=True)
class FaultPlan:
    """The complete declarative fault configuration of one run."""

    bursty_loss: BurstyLossSpec | None = None
    jitter: JitterSpec | None = None
    duplication: DuplicationSpec | None = None
    crashes: tuple[CrashWindow, ...] = field(default_factory=tuple)
    arq: ArqSpec | None = None

    def __post_init__(self) -> None:
        # Tolerate lists for ergonomics, store an immutable tuple.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        by_node: dict[int, list[CrashWindow]] = {}
        for window in self.crashes:
            by_node.setdefault(window.node, []).append(window)
        for node, windows in by_node.items():
            windows.sort(key=lambda w: w.start)
            for earlier, later in zip(windows, windows[1:]):
                if later.start < earlier.end:
                    raise ValueError(
                        f"overlapping crash windows for node {node}: "
                        f"[{earlier.start}, {earlier.end}) and "
                        f"[{later.start}, {later.end})"
                    )

    # ------------------------------------------------------------------
    @property
    def is_noop(self) -> bool:
        """True if this plan cannot alter the simulation in any way.

        The simulator promises *bit-identical* results for no-op plans:
        it disables the fault machinery entirely rather than running it
        with zeroed parameters.
        """
        if self.crashes or self.arq is not None:
            return False
        for spec in (self.bursty_loss, self.jitter, self.duplication):
            if spec is not None and not spec.is_noop:
                return False
        return True

    def crash_nodes(self) -> set[int]:
        """All nodes with at least one scheduled crash window."""
        return {window.node for window in self.crashes}

    def describe(self) -> str:
        """One-line human summary (used by CLI output)."""
        parts = []
        if self.bursty_loss is not None and not self.bursty_loss.is_noop:
            parts.append(
                f"GE loss ~{self.bursty_loss.p_good_to_bad:g}->"
                f"{self.bursty_loss.p_bad_to_good:g}@{self.bursty_loss.loss_bad:g}"
            )
        if self.jitter is not None and not self.jitter.is_noop:
            parts.append(f"jitter U[0,{self.jitter.amplitude:g})")
        if self.duplication is not None and not self.duplication.is_noop:
            parts.append(f"dup {self.duplication.probability:g}")
        if self.crashes:
            parts.append(f"{len(self.crashes)} crash window(s)")
        if self.arq is not None:
            parts.append(
                f"ARQ t/o {self.arq.timeout:g} x{self.arq.total_attempts()}"
            )
        return ", ".join(parts) if parts else "no faults"
