"""Stop-and-wait link ARQ: ACK, timeout, exponential backoff, retries.

The paper's link model loses packets *silently*; a real link layer
retransmits.  :class:`ArqSpec` declares a per-hop stop-and-wait
protocol: after transmitting a data copy the sender arms a timer; the
receiver ACKs every copy it hears (including duplicates, since a
duplicate means the previous ACK was lost); if the timer expires the
sender retransmits with exponentially backed-off timeouts, up to
``max_retries`` retransmissions, then abandons the hop.

Retries matter for *privacy*, not just delivery: each retransmission
is an extra observable emission whose timing correlates with the
original send, so the simulator logs every retransmission into
:attr:`repro.sim.results.SimulationResult.retransmissions` where
adversary models can read it.

:class:`ArqTransfer` is the simulator-side bookkeeping for one hop
transfer in flight; it lives here so the protocol state machine is
unit-testable without a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ArqSpec", "ArqTransfer"]


@dataclass(frozen=True)
class ArqSpec:
    """Stop-and-wait ARQ parameters for every hop.

    Attributes
    ----------
    timeout:
        Time the sender waits for an ACK before the first
        retransmission.  Must exceed one round trip (2 * tau) or every
        transmission would spuriously retransmit; the simulator
        validates this against the configured transmission delay.
    max_retries:
        Retransmissions attempted after the initial copy; once
        exhausted the hop transfer is abandoned and the packet is lost
        (unless some earlier copy was in fact received).
    backoff:
        Multiplicative timeout growth per retry (2.0 = classic binary
        exponential backoff).
    """

    timeout: float = 4.0
    max_retries: int = 3
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout <= 0:
            raise ValueError(f"ARQ timeout must be positive, got {self.timeout}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be non-negative, got {self.max_retries}"
            )
        if self.backoff < 1.0:
            raise ValueError(
                f"backoff must be >= 1 (non-decreasing timeouts), got {self.backoff}"
            )

    def timeout_for(self, attempt: int) -> float:
        """Timeout armed after transmission ``attempt`` (0 = initial)."""
        if attempt < 0:
            raise ValueError(f"attempt must be non-negative, got {attempt}")
        return self.timeout * self.backoff**attempt

    def total_attempts(self) -> int:
        """Initial transmission plus all retries."""
        return 1 + self.max_retries


@dataclass
class ArqTransfer:
    """One stop-and-wait hop transfer in flight.

    ``received`` flips when the receiver accepts *any* copy -- the
    god-view flag that distinguishes "abandoned but actually delivered
    downstream" (ACKs all lost) from a genuinely lost packet.
    """

    transfer_id: int
    sender: int
    receiver: int
    payload: Any
    dedup_key: tuple[int, int, int] | None = None
    attempt: int = 0
    received: bool = False
    acked: bool = False
    abandoned: bool = False
    copies_in_flight: int = 0
    """Data copies launched but not yet arrived.  An abandoned transfer
    with copies still in the air defers its lost/delivered verdict to
    the last arrival -- a copy already on the air survives its sender's
    crash."""
    timer: Any = None
    retransmit_times: list[float] = field(default_factory=list)

    @property
    def settled(self) -> bool:
        """True once the sender has stopped working on this transfer."""
        return self.acked or self.abandoned
