"""Runtime fault sampling, seeded through the RNG registry.

The :class:`FaultInjector` turns the declarative
:class:`~repro.faults.plan.FaultPlan` into per-event decisions.  Every
stochastic choice draws from a *named* registry stream:

* ``faults/link-{node}`` -- the Gilbert-Elliott chain of the link out
  of ``node`` (data copies and the ACKs that node transmits share its
  chain: they traverse the same radio);
* ``faults/jitter`` -- per-transmission delay jitter;
* ``faults/duplication`` -- per-transmission duplication coin.

Stream naming keeps fault draws decoupled from traffic and delay draws
("common random numbers"): enabling a fault family never perturbs the
packet creation times or the sampled privacy delays, so fault
experiments stay comparable against the fault-free baseline.

Crash state is *driven* by the simulator (which schedules the
crash/recovery events) but *owned* here, so every component asks one
authority whether a node is down.
"""

from __future__ import annotations

from repro.des.rng import RngRegistry
from repro.faults.gilbert_elliott import GilbertElliottChannel
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector"]


class FaultInjector:
    """Samples every fault decision for one simulation run."""

    def __init__(self, plan: FaultPlan, rng: RngRegistry) -> None:
        self.plan = plan
        self._rng = rng
        self._channels: dict[int, GilbertElliottChannel] = {}
        self._crashed: set[int] = set()
        # Lifetime counters for reporting / auditing.
        self.link_losses = 0
        self.duplications = 0

    # ------------------------------------------------------------------
    # link loss
    # ------------------------------------------------------------------
    def channel_for(self, sender: int) -> GilbertElliottChannel | None:
        """The GE chain of the link transmitted by ``sender``."""
        spec = self.plan.bursty_loss
        if spec is None or spec.is_noop:
            return None
        channel = self._channels.get(sender)
        if channel is None:
            channel = GilbertElliottChannel(
                p_good_to_bad=spec.p_good_to_bad,
                p_bad_to_good=spec.p_bad_to_good,
                loss_good=spec.loss_good,
                loss_bad=spec.loss_bad,
                rng=self._rng.stream(f"faults/link-{sender}"),
            )
            self._channels[sender] = channel
        return channel

    def link_delivers(self, sender: int) -> bool:
        """Whether one transmission by ``sender`` survives the air."""
        channel = self.channel_for(sender)
        if channel is None:
            return True
        delivered = channel.delivers()
        if not delivered:
            self.link_losses += 1
        return delivered

    # ------------------------------------------------------------------
    # delay jitter & duplication
    # ------------------------------------------------------------------
    def sample_jitter(self) -> float:
        """Extra delay added to this transmission (0 if disabled)."""
        spec = self.plan.jitter
        if spec is None or spec.is_noop:
            return 0.0
        return float(self._rng.stream("faults/jitter").random() * spec.amplitude)

    def duplicates(self) -> bool:
        """Whether this transmission spuriously emits a second copy."""
        spec = self.plan.duplication
        if spec is None or spec.is_noop:
            return False
        if self._rng.stream("faults/duplication").random() < spec.probability:
            self.duplications += 1
            return True
        return False

    # ------------------------------------------------------------------
    # crash state
    # ------------------------------------------------------------------
    def mark_crashed(self, node: int) -> None:
        """Record that ``node`` just went down."""
        self._crashed.add(node)

    def mark_recovered(self, node: int) -> None:
        """Record that ``node`` just came back."""
        self._crashed.discard(node)

    def is_crashed(self, node: int) -> bool:
        """Whether ``node`` is currently down."""
        return node in self._crashed

    @property
    def crashed_nodes(self) -> frozenset[int]:
        """Snapshot of currently crashed nodes."""
        return frozenset(self._crashed)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def publish_telemetry(self, registry) -> None:
        """Fold lifetime fault counters into a telemetry registry.

        Called by the simulator at finalize time (the hot sampling paths
        stay untouched); ``registry`` is a
        :class:`repro.telemetry.MetricsRegistry`.
        """
        registry.counter("faults/link-losses").inc(self.link_losses)
        registry.counter("faults/duplications").inc(self.duplications)
        registry.counter("faults/crash-windows").inc(len(self.plan.crashes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector({self.plan.describe()}, "
            f"crashed={sorted(self._crashed)})"
        )
