"""Fault injection: bursty loss, jitter, duplication, crashes, ARQ.

The paper's simulator assumes a lossless PHY with a constant per-hop
delay (Section 5.2).  Real deployments see bursty radio loss, node
crashes and link-layer retransmissions -- all of which reshape the
arrival-time process the adversary observes, which is exactly the
channel the timing-side-channel literature studies.  This subpackage
supplies a *composable, declarative* fault layer:

* :class:`~repro.faults.plan.FaultPlan` -- the declarative description
  attached to :class:`repro.sim.config.SimulationConfig`; a plan with
  every knob at zero is a strict no-op (the simulator takes the exact
  pre-fault code paths, bit-identical results);
* :class:`~repro.faults.gilbert_elliott.GilbertElliottChannel` -- the
  classic two-state Markov burst-loss model, one chain per
  transmitting node;
* :class:`~repro.faults.injector.FaultInjector` -- the runtime that
  samples every fault decision from named
  :class:`~repro.des.rng.RngRegistry` streams, so fault realizations
  are reproducible per seed and decoupled from traffic/delay draws;
* :class:`~repro.faults.arq.ArqSpec` -- stop-and-wait link ARQ
  (ACK, timeout, exponential backoff, max retries) so the simulator
  can model retransmission rather than silent loss; retransmission
  events are exposed on the result since retries leak timing;
* :class:`~repro.faults.audit.InvariantAuditor` -- the post-simulation
  packet-conservation and clock-sanity auditor, raising a structured
  :class:`~repro.faults.audit.InvariantViolation` on any breach.
"""

from repro.faults.arq import ArqSpec
from repro.faults.audit import (
    ConservationCounters,
    InvariantAuditor,
    InvariantViolation,
)
from repro.faults.gilbert_elliott import GilbertElliottChannel
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    BurstyLossSpec,
    CrashWindow,
    DuplicationSpec,
    FaultPlan,
    JitterSpec,
)

__all__ = [
    "FaultPlan",
    "BurstyLossSpec",
    "JitterSpec",
    "DuplicationSpec",
    "CrashWindow",
    "ArqSpec",
    "GilbertElliottChannel",
    "FaultInjector",
    "InvariantAuditor",
    "InvariantViolation",
    "ConservationCounters",
]
