"""Post-simulation invariant auditing.

A fault layer multiplies the ways a simulator can silently go wrong:
a packet both counted lost *and* delivered, a crashed node releasing
its frozen buffer, a clock that runs backwards through a retransmission
path.  The :class:`InvariantAuditor` runs after every simulation --
faulty or not -- and checks:

1. **packet conservation** -- every created packet reaches exactly one
   terminal state::

       created == delivered + buffer_dropped + lost_in_transit
                  + stranded_in_buffer

   and every extra physical copy (duplication, ARQ retransmission) is
   separately conserved::

       extra copies arrived == duplicates_suppressed

2. **monotone clock** -- observations arrive in non-decreasing time
   order, no negative times, per-node occupancy accounting never ran
   past the simulation end;
3. **crash discipline** -- a crashed node never released a buffered
   packet mid-crash (the simulator reports the count of such releases,
   which must be zero), and only crashed nodes may strand packets;
4. **alignment** -- the adversary tap and the ground-truth log are the
   same length (a misalignment would silently mis-score every
   adversary).

Violations raise :class:`InvariantViolation`, a structured exception
carrying every failed check so a test failure shows the full picture
rather than the first symptom.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ConservationCounters", "InvariantAuditor", "InvariantViolation"]


class InvariantViolation(RuntimeError):
    """One or more simulator invariants failed after a run.

    Attributes
    ----------
    violations:
        Human-readable description of every failed check.
    """

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        summary = "; ".join(self.violations)
        super().__init__(f"simulation invariants violated: {summary}")


@dataclass
class ConservationCounters:
    """The simulator's packet-accounting ledger, one run's worth.

    All counts are in *unique packets* except the copy-level pair
    ``extra_copies_arrived`` / ``duplicates_suppressed``.
    """

    created: int = 0
    delivered: int = 0
    buffer_dropped: int = 0
    lost_in_transit: int = 0
    stranded_in_buffer: int = 0
    extra_copies_arrived: int = 0
    duplicates_suppressed: int = 0
    crashed_releases: int = 0
    stranding_nodes: set[int] = field(default_factory=set)
    crash_nodes: set[int] = field(default_factory=set)

    def accounted(self) -> int:
        """Unique packets in a terminal state."""
        return (
            self.delivered
            + self.buffer_dropped
            + self.lost_in_transit
            + self.stranded_in_buffer
        )


class InvariantAuditor:
    """Checks one finished run's counters and result for consistency."""

    def __init__(self, counters: ConservationCounters) -> None:
        self.counters = counters

    # ------------------------------------------------------------------
    def audit(self, result) -> None:
        """Raise :class:`InvariantViolation` if any check fails.

        ``result`` is a :class:`repro.sim.results.SimulationResult`
        (duck-typed to keep this module import-light).
        """
        violations = self.conservation_violations()
        violations += self.clock_violations(result)
        violations += self.alignment_violations(result)
        if violations:
            raise InvariantViolation(violations)

    # ------------------------------------------------------------------
    def conservation_violations(self) -> list[str]:
        c = self.counters
        violations: list[str] = []
        if c.created != c.accounted():
            violations.append(
                f"packet conservation: created={c.created} but "
                f"delivered={c.delivered} + dropped={c.buffer_dropped} + "
                f"lost={c.lost_in_transit} + stranded={c.stranded_in_buffer} "
                f"= {c.accounted()}"
            )
        if c.extra_copies_arrived != c.duplicates_suppressed:
            violations.append(
                f"copy conservation: {c.extra_copies_arrived} extra copies "
                f"arrived but {c.duplicates_suppressed} were suppressed"
            )
        if c.crashed_releases != 0:
            violations.append(
                f"crash discipline: {c.crashed_releases} buffered packet(s) "
                "released by a crashed node"
            )
        rogue = c.stranding_nodes - c.crash_nodes
        if rogue:
            violations.append(
                "crash discipline: non-crashing node(s) "
                f"{sorted(rogue)} stranded buffered packets at the horizon"
            )
        negatives = [
            name
            for name, value in (
                ("created", c.created),
                ("delivered", c.delivered),
                ("buffer_dropped", c.buffer_dropped),
                ("lost_in_transit", c.lost_in_transit),
                ("stranded_in_buffer", c.stranded_in_buffer),
                ("extra_copies_arrived", c.extra_copies_arrived),
                ("duplicates_suppressed", c.duplicates_suppressed),
            )
            if value < 0
        ]
        if negatives:
            violations.append(f"negative counter(s): {', '.join(negatives)}")
        return violations

    # ------------------------------------------------------------------
    def clock_violations(self, result) -> list[str]:
        violations: list[str] = []
        if result.end_time < 0:
            violations.append(f"end time {result.end_time:g} is negative")
        previous = float("-inf")
        for index, observation in enumerate(result.observations):
            if observation.arrival_time < previous:
                violations.append(
                    f"observation {index} arrives at "
                    f"{observation.arrival_time:g}, before its predecessor "
                    f"at {previous:g} (non-monotone adversary tap)"
                )
                break
            previous = observation.arrival_time
        for node, stats in result.node_stats.items():
            if stats.observation_time - result.end_time > 1e-9:
                violations.append(
                    f"node {node} occupancy accounting ran to "
                    f"{stats.observation_time:g}, past the run end "
                    f"{result.end_time:g}"
                )
            if stats.occupancy_time_integral < -1e-9:
                violations.append(
                    f"node {node} has negative occupancy integral "
                    f"{stats.occupancy_time_integral:g}"
                )
        for record in result.records:
            if record.delivered_at > result.end_time + 1e-9:
                violations.append(
                    f"packet ({record.flow_id}, {record.packet_id}) delivered "
                    f"at {record.delivered_at:g}, after the run end "
                    f"{result.end_time:g}"
                )
                break
        return violations

    # ------------------------------------------------------------------
    def alignment_violations(self, result) -> list[str]:
        if len(result.observations) != len(result.records):
            return [
                f"adversary tap has {len(result.observations)} observations "
                f"but ground truth has {len(result.records)} records"
            ]
        return []
