"""Proximity detection: which sensors see the asset, and when.

A sensor fires when the asset comes within its detection radius, then
re-arms after a hold-off period (real motes debounce detections; this
also keeps one pass from generating a packet storm).  Detection times
are found by sampling the trajectory on a fine grid and taking the
closest-approach instant of each entry into the radius.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.tracking.trajectory import Trajectory

__all__ = ["Detection", "detect_passes"]


@dataclass(frozen=True)
class Detection:
    """One sensor firing: the ground truth of an observation event."""

    node_id: int
    time: float
    distance: float


def detect_passes(
    trajectory: Trajectory,
    positions: Mapping[int, tuple[float, float]],
    detection_radius: float,
    hold_off: float = 10.0,
    time_step: float = 0.25,
) -> list[Detection]:
    """Compute all sensor detections along a trajectory.

    Parameters
    ----------
    trajectory:
        The asset's path.
    positions:
        Sensor node id -> (x, y).
    detection_radius:
        Sensing range.
    hold_off:
        Minimum time between two detections by the same sensor.
    time_step:
        Sampling resolution along the trajectory.

    Returns
    -------
    list[Detection]
        Sorted by time.  Each contiguous in-radius interval yields one
        detection at the closest approach within it.
    """
    if detection_radius <= 0:
        raise ValueError(f"detection radius must be positive, got {detection_radius}")
    if hold_off < 0:
        raise ValueError(f"hold-off must be non-negative, got {hold_off}")
    times = trajectory.sample_times(time_step)
    track = np.array([trajectory.position_at(float(t)) for t in times])

    detections: list[Detection] = []
    for node_id, (sx, sy) in positions.items():
        distances = np.hypot(track[:, 0] - sx, track[:, 1] - sy)
        inside = distances <= detection_radius
        last_fire = -math.inf
        index = 0
        while index < inside.size:
            if not inside[index]:
                index += 1
                continue
            # One contiguous pass: find the closest approach inside it.
            end = index
            while end < inside.size and inside[end]:
                end += 1
            closest = index + int(np.argmin(distances[index:end]))
            fire_time = float(times[closest])
            if fire_time - last_fire >= hold_off:
                detections.append(
                    Detection(
                        node_id=node_id,
                        time=fire_time,
                        distance=float(distances[closest]),
                    )
                )
                last_fire = fire_time
            index = end
    detections.sort(key=lambda d: (d.time, d.node_id))
    return detections
