"""Asset tracking: the paper's motivating threat, made executable.

Section 2's scenario: an asset (animal, vehicle) moves through the
field; sensors that detect it report to the sink.  The adversary reads
each report's *origin* from the cleartext header -- so he knows
**where** the asset was seen -- and estimates **when** from the arrival
time.  "If we add temporal ambiguity to the time that the packets are
created then, as the asset moves, this would introduce spatial
ambiguity and make it harder for the adversary to track the asset."

This subpackage closes the loop on that claim:

* :mod:`repro.tracking.trajectory` -- waypoint asset motion models and
  interpolated position lookup,
* :mod:`repro.tracking.detection` -- proximity detection: which sensors
  fire, and when, as the asset passes,
* :mod:`repro.tracking.adversary` -- the tracking adversary: per-packet
  creation-time estimates + known sensor positions -> a reconstructed
  trajectory; plus the localization-error metric that quantifies the
  spatial ambiguity temporal privacy buys.
"""

from repro.tracking.adversary import (
    TrackingAdversary,
    TrajectoryEstimate,
    mean_localization_error,
)
from repro.tracking.detection import Detection, detect_passes
from repro.tracking.trajectory import Trajectory, waypoint_trajectory

__all__ = [
    "Trajectory",
    "waypoint_trajectory",
    "Detection",
    "detect_passes",
    "TrackingAdversary",
    "TrajectoryEstimate",
    "mean_localization_error",
]
