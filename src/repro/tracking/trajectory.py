"""Asset motion models.

A :class:`Trajectory` is a piecewise-linear path through the plane:
waypoints with timestamps, positions interpolated in between.  The
asset moves at constant speed along each leg (timestamps are derived
from leg lengths when built via :func:`waypoint_trajectory`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Trajectory", "waypoint_trajectory"]


@dataclass(frozen=True)
class Trajectory:
    """A timed piecewise-linear path.

    Attributes
    ----------
    times:
        Strictly increasing waypoint timestamps.
    points:
        (x, y) waypoint positions, aligned with ``times``.
    """

    times: tuple[float, ...]
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.points):
            raise ValueError("times and points must be aligned")
        if len(self.times) < 2:
            raise ValueError("a trajectory needs at least two waypoints")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("waypoint times must be strictly increasing")

    @property
    def start_time(self) -> float:
        """Time of the first waypoint."""
        return self.times[0]

    @property
    def end_time(self) -> float:
        """Time of the last waypoint."""
        return self.times[-1]

    def position_at(self, t: float) -> tuple[float, float]:
        """Asset position at time ``t`` (clamped to the endpoints)."""
        if t <= self.times[0]:
            return self.points[0]
        if t >= self.times[-1]:
            return self.points[-1]
        index = int(np.searchsorted(self.times, t, side="right")) - 1
        t0, t1 = self.times[index], self.times[index + 1]
        (x0, y0), (x1, y1) = self.points[index], self.points[index + 1]
        fraction = (t - t0) / (t1 - t0)
        return (x0 + fraction * (x1 - x0), y0 + fraction * (y1 - y0))

    def total_length(self) -> float:
        """Path length over all legs."""
        return float(
            sum(
                math.hypot(x1 - x0, y1 - y0)
                for (x0, y0), (x1, y1) in zip(self.points, self.points[1:])
            )
        )

    def sample_times(self, step: float) -> np.ndarray:
        """Uniform time grid covering the trajectory."""
        if step <= 0:
            raise ValueError(f"step must be positive, got {step}")
        return np.arange(self.start_time, self.end_time + step / 2, step)


def waypoint_trajectory(
    waypoints: Sequence[tuple[float, float]],
    speed: float,
    start_time: float = 0.0,
) -> Trajectory:
    """Constant-speed trajectory through ``waypoints``.

    Timestamps are derived from leg lengths: a leg of length L takes
    L / speed time units.  Zero-length legs are rejected (they would
    produce duplicate timestamps).
    """
    if speed <= 0:
        raise ValueError(f"speed must be positive, got {speed}")
    if len(waypoints) < 2:
        raise ValueError("need at least two waypoints")
    times = [float(start_time)]
    for (x0, y0), (x1, y1) in zip(waypoints, waypoints[1:]):
        leg = math.hypot(x1 - x0, y1 - y0)
        if leg == 0:
            raise ValueError("consecutive waypoints must be distinct")
        times.append(times[-1] + leg / speed)
    return Trajectory(
        times=tuple(times),
        points=tuple((float(x), float(y)) for x, y in waypoints),
    )
