"""The tracking adversary: from sink observations to a trajectory.

The adversary knows every sensor's position (deployment-aware) and
reads each packet's origin from the cleartext header, so each observed
packet gives him a (position, estimated-creation-time) pin.  Sorting
pins by estimated time and interpolating yields his reconstruction of
the asset's track.  The damage metric is the **mean localization
error**: how far his position-at-time estimate is from the asset's
true position, averaged over the observation window -- the "spatial
ambiguity" the paper says temporal ambiguity buys.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.adversary import Adversary
from repro.net.packet import PacketObservation
from repro.tracking.trajectory import Trajectory

__all__ = ["TrajectoryEstimate", "TrackingAdversary", "mean_localization_error"]


@dataclass(frozen=True)
class TrajectoryEstimate:
    """The adversary's reconstructed track: timed position pins."""

    times: tuple[float, ...]
    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.points):
            raise ValueError("times and points must be aligned")
        if not self.times:
            raise ValueError("an estimate needs at least one pin")

    def position_at(self, t: float) -> tuple[float, float]:
        """Interpolated position estimate at time ``t``.

        Piecewise linear between pins, clamped at the ends.  (Pins are
        stored sorted by estimated time.)
        """
        times = self.times
        if t <= times[0]:
            return self.points[0]
        if t >= times[-1]:
            return self.points[-1]
        index = int(np.searchsorted(times, t, side="right")) - 1
        t0, t1 = times[index], times[index + 1]
        if t1 == t0:
            return self.points[index]
        (x0, y0), (x1, y1) = self.points[index], self.points[index + 1]
        fraction = (t - t0) / (t1 - t0)
        return (x0 + fraction * (x1 - x0), y0 + fraction * (y1 - y0))


class TrackingAdversary:
    """Reconstructs an asset track from sink observations.

    Parameters
    ----------
    time_estimator:
        Any :class:`~repro.core.adversary.Adversary` -- the per-packet
        creation-time estimator to pin events in time.
    positions:
        Sensor node id -> (x, y); deployment knowledge.
    """

    def __init__(
        self,
        time_estimator: Adversary,
        positions: Mapping[int, tuple[float, float]],
    ) -> None:
        self.time_estimator = time_estimator
        self.positions = dict(positions)

    def reconstruct(
        self, observations: Sequence[PacketObservation]
    ) -> TrajectoryEstimate:
        """Build the track estimate from an arrival-ordered stream."""
        if not observations:
            raise ValueError("cannot reconstruct a track from zero observations")
        self.time_estimator.reset()
        estimates = self.time_estimator.estimate_all(list(observations))
        pins = []
        for observation, estimated_time in zip(observations, estimates):
            try:
                position = self.positions[observation.origin]
            except KeyError:
                raise KeyError(
                    f"adversary has no position for origin {observation.origin}"
                )
            pins.append((estimated_time, position))
        pins.sort(key=lambda pin: pin[0])
        return TrajectoryEstimate(
            times=tuple(t for t, _ in pins),
            points=tuple(p for _, p in pins),
        )


def mean_localization_error(
    truth: Trajectory,
    estimate: TrajectoryEstimate,
    time_step: float = 5.0,
) -> float:
    """Mean distance between true and estimated asset positions.

    Averaged over a uniform time grid spanning the true trajectory --
    the spatial-ambiguity metric of the reproduction's asset-tracking
    experiment.
    """
    grid = truth.sample_times(time_step)
    errors = []
    for t in grid:
        tx, ty = truth.position_at(float(t))
        ex, ey = estimate.position_at(float(t))
        errors.append(math.hypot(tx - ex, ty - ey))
    return float(np.mean(errors))
