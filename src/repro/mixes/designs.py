"""The classical mix designs, as transforms over arrival sequences.

A mix takes a stream of message arrival times and emits each message at
some later time, possibly in a different order.  We model each design
as a deterministic-given-RNG *transform*: ``mix.transform(arrivals,
rng)`` returns a :class:`MixOutput` carrying, for every input message,
its departure time and its batch id (which inputs were flushed
together -- the anonymity set structure the entropy metric needs).

This offline formulation is equivalent to the event-driven one for the
designs implemented here (none of them reacts to anything but arrivals
and its own clock) and makes the privacy analysis exact.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = ["MixOutput", "Mix", "ThresholdMix", "TimedMix", "PoolMix", "StopAndGoMix"]


@dataclass(frozen=True)
class MixOutput:
    """Result of pushing a message stream through a mix.

    Attributes
    ----------
    arrival_times:
        The input times, as given (sorted ascending).
    departure_times:
        Departure time of each input message (aligned with
        ``arrival_times``; not necessarily sorted -- reordering is the
        point of a mix).
    batch_ids:
        For batching mixes, the flush batch each message left in
        (messages sharing a batch id are mutually indistinguishable to
        a timing observer).  For the stop-and-go mix every message is
        its own "batch" (-1-free unique ids) because departures are
        individually timed.
    """

    arrival_times: np.ndarray
    departure_times: np.ndarray
    batch_ids: np.ndarray

    def __post_init__(self) -> None:
        n = self.arrival_times.size
        if self.departure_times.size != n or self.batch_ids.size != n:
            raise ValueError("output arrays must be aligned with inputs")
        if np.any(self.departure_times < self.arrival_times - 1e-12):
            raise ValueError("a message cannot depart before it arrives")

    @property
    def latencies(self) -> np.ndarray:
        """Per-message mix latency."""
        return self.departure_times - self.arrival_times

    def batch_members(self, batch_id: int) -> np.ndarray:
        """Indices of the messages flushed in ``batch_id``."""
        return np.flatnonzero(self.batch_ids == batch_id)


class Mix(abc.ABC):
    """A mixing strategy."""

    #: short name used in comparison tables
    name: str = "abstract"

    @abc.abstractmethod
    def transform(self, arrivals: np.ndarray, rng: np.random.Generator) -> MixOutput:
        """Push ``arrivals`` (sorted times) through the mix."""

    @staticmethod
    def _check_arrivals(arrivals: np.ndarray) -> np.ndarray:
        arrivals = np.asarray(arrivals, dtype=float)
        if arrivals.ndim != 1 or arrivals.size == 0:
            raise ValueError("need a non-empty 1-D array of arrival times")
        if np.any(np.diff(arrivals) < 0):
            raise ValueError("arrival times must be sorted ascending")
        return arrivals


class ThresholdMix(Mix):
    """Chaum-style threshold mix: flush when ``batch_size`` accumulate.

    All messages of a batch depart together at the batch-completing
    arrival instant; a timing observer learns only the batch, giving
    each message an anonymity set of ``batch_size``.  Messages left in
    a final partial batch are flushed at the last arrival (a common
    practical policy; otherwise they would wait forever).
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)
        self.name = f"threshold({batch_size})"

    def transform(self, arrivals, rng):
        arrivals = self._check_arrivals(arrivals)
        n = arrivals.size
        departures = np.empty(n)
        batches = np.empty(n, dtype=int)
        for start in range(0, n, self.batch_size):
            end = min(start + self.batch_size, n)
            flush_time = arrivals[end - 1]
            departures[start:end] = flush_time
            batches[start:end] = start // self.batch_size
        return MixOutput(arrivals, departures, batches)


class TimedMix(Mix):
    """Timed mix: flush everything accumulated every ``interval``.

    Messages depart at the first flush tick at or after their arrival;
    the anonymity set is whatever shares the tick.
    """

    def __init__(self, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self.name = f"timed({interval:g})"

    def transform(self, arrivals, rng):
        arrivals = self._check_arrivals(arrivals)
        ticks = np.ceil(arrivals / self.interval).astype(int)
        # A message arriving exactly on a tick leaves on that tick.
        on_tick = np.isclose(np.mod(arrivals, self.interval), 0.0)
        ticks[on_tick] = np.round(arrivals[on_tick] / self.interval).astype(int)
        ticks = np.maximum(ticks, 1)
        departures = ticks * self.interval
        return MixOutput(arrivals, departures, ticks)


class PoolMix(Mix):
    """Pool mix: flush on threshold but retain a random pool.

    When ``batch_size`` messages are present, the mix flushes all but
    ``pool_size`` uniformly chosen survivors, which stay for later
    batches -- spreading anonymity across batches at the cost of
    unbounded worst-case latency.  Any residue is flushed at the final
    arrival.
    """

    def __init__(self, batch_size: int, pool_size: int) -> None:
        if batch_size < 1:
            raise ValueError(f"batch size must be >= 1, got {batch_size}")
        if not 0 <= pool_size < batch_size:
            raise ValueError(
                f"pool size must be in [0, batch_size), got {pool_size}"
            )
        self.batch_size = int(batch_size)
        self.pool_size = int(pool_size)
        self.name = f"pool({batch_size},{pool_size})"

    def transform(self, arrivals, rng):
        arrivals = self._check_arrivals(arrivals)
        n = arrivals.size
        departures = np.full(n, np.nan)
        batches = np.full(n, -1, dtype=int)
        pool: list[int] = []
        batch_id = 0
        for index in range(n):
            pool.append(index)
            if len(pool) >= self.batch_size:
                keep = set(
                    rng.choice(len(pool), size=self.pool_size, replace=False).tolist()
                ) if self.pool_size else set()
                flushed = [m for i, m in enumerate(pool) if i not in keep]
                pool = [m for i, m in enumerate(pool) if i in keep]
                departures[flushed] = arrivals[index]
                batches[flushed] = batch_id
                batch_id += 1
        if pool:
            departures[pool] = arrivals[-1]
            batches[pool] = batch_id
        return MixOutput(arrivals, departures, batches)


class StopAndGoMix(Mix):
    """Kesdogan's SG-Mix: i.i.d. Exp(1/mean_delay) per-message delays.

    Exactly the paper's per-node mechanism (Section 3.1); Danezis
    (PET 2004) proved it the optimal mix strategy for a given mean
    delay.  Departures are individually timed, so each message gets a
    unique batch id.
    """

    def __init__(self, mean_delay: float) -> None:
        if mean_delay <= 0:
            raise ValueError(f"mean delay must be positive, got {mean_delay}")
        self.mean_delay = float(mean_delay)
        self.name = f"stop-and-go({mean_delay:g})"

    def transform(self, arrivals, rng):
        arrivals = self._check_arrivals(arrivals)
        delays = rng.exponential(self.mean_delay, size=arrivals.size)
        return MixOutput(
            arrivals, arrivals + delays, np.arange(arrivals.size, dtype=int)
        )
