"""Privacy metrics for mixes: anonymity entropy and temporal error.

Two views of what a mix buys you:

* the **anonymity view** of the mix literature: how uncertain is the
  observer about *which input* an output corresponds to?  Measured as
  the Serjantov-Danezis entropy of the linkage distribution --
  ``sender_anonymity_entropy`` for batching mixes (uniform over the
  flush batch) and ``sg_linkage_entropy`` for the stop-and-go mix
  (posterior proportional to the delay density);
* the **temporal-privacy view** of the paper: how wrong is the
  observer's estimate of *when* the input was created?  Measured as
  the MSE of the best mean-compensating estimator
  (``temporal_mse``), directly comparable to the Figure 2 metric.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mixes.designs import MixOutput

__all__ = [
    "sender_anonymity_entropy",
    "sg_linkage_entropy",
    "temporal_mse",
    "mean_latency",
]


def sender_anonymity_entropy(output: MixOutput) -> float:
    """Mean Serjantov-Danezis entropy over messages, in nats.

    For a batching mix, an output is uniformly linkable to every
    message flushed in the same batch, so a message in a batch of size
    b contributes entropy ln(b).  Individually-timed designs (every
    message its own batch) score 0 under this metric -- their
    protection is temporal, not set-based, which is exactly the
    contrast the comparison benchmark draws.
    """
    batch_ids, counts = np.unique(output.batch_ids, return_counts=True)
    size_of = dict(zip(batch_ids.tolist(), counts.tolist()))
    entropies = [math.log(size_of[b]) for b in output.batch_ids.tolist()]
    return float(np.mean(entropies))


def sg_linkage_entropy(
    output: MixOutput, mean_delay: float, max_messages: int = 500
) -> float:
    """Mean posterior linkage entropy of a stop-and-go mix, in nats.

    For departure time z, the posterior that it belongs to input i is
    ``p_i ∝ f_Exp(z - a_i)`` over inputs with ``a_i <= z`` (the
    adversary knows the delay distribution -- Kerckhoff).  Averaged
    over (at most ``max_messages``) departures.
    """
    if mean_delay <= 0:
        raise ValueError(f"mean delay must be positive, got {mean_delay}")
    arrivals = output.arrival_times
    departures = output.departure_times
    n = min(arrivals.size, max_messages)
    rate = 1.0 / mean_delay
    entropies = []
    for j in range(n):
        z = departures[j]
        lags = z - arrivals
        weights = np.where(lags >= 0, np.exp(-rate * lags), 0.0)
        total = weights.sum()
        if total <= 0:
            continue
        p = weights / total
        mask = p > 0
        entropies.append(float(-(p[mask] * np.log(p[mask])).sum()))
    if not entropies:
        raise ValueError("no departures with a valid linkage posterior")
    return float(np.mean(entropies))


def temporal_mse(output: MixOutput) -> float:
    """MSE of the best mean-compensating arrival-time estimator.

    The deployment-aware adversary estimates each input time as
    ``departure - E[latency]`` (it knows the design and its mean
    delay); the residual MSE is the variance of the latency around its
    mean -- the mix-level analogue of the paper's Figure 2(a) metric.
    """
    latencies = output.latencies
    return float(np.mean((latencies - latencies.mean()) ** 2))


def mean_latency(output: MixOutput) -> float:
    """Average time messages spent inside the mix."""
    return float(output.latencies.mean())
