"""Mix-network substrate (paper §6, related work).

The paper's per-node exponential delaying is the sensor-network
descendant of the anonymity literature it cites: Chaum's mixes,
threshold/pool mixes (Diaz & Preneel), Kesdogan's **SG-Mix**
(stop-and-go: each message independently delayed by an exponential)
and Danezis's proof that the SG-Mix is the entropy-optimal mixing
strategy.  This subpackage implements those designs so the claim "the
paper's mechanism is an SG-Mix network" is executable:

* :class:`~repro.mixes.designs.ThresholdMix` -- flush every n messages;
* :class:`~repro.mixes.designs.TimedMix` -- flush every T time units;
* :class:`~repro.mixes.designs.PoolMix` -- threshold flush, retaining a
  random pool;
* :class:`~repro.mixes.designs.StopAndGoMix` -- i.i.d. Exp(mu) delays,
  exactly one node of the paper's network;

plus the classical anonymity metric (Serjantov-Danezis entropy of the
sender anonymity set) and the temporal-privacy metrics of this
reproduction, so the designs are comparable on both axes
(:mod:`repro.mixes.metrics`).
"""

from repro.mixes.designs import (
    Mix,
    MixOutput,
    PoolMix,
    StopAndGoMix,
    ThresholdMix,
    TimedMix,
)
from repro.mixes.metrics import (
    mean_latency,
    sender_anonymity_entropy,
    sg_linkage_entropy,
    temporal_mse,
)

__all__ = [
    "Mix",
    "MixOutput",
    "ThresholdMix",
    "TimedMix",
    "PoolMix",
    "StopAndGoMix",
    "sender_anonymity_entropy",
    "sg_linkage_entropy",
    "temporal_mse",
    "mean_latency",
]
