"""repro: Temporal Privacy in Wireless Sensor Networks (ICDCS 2007).

A full reproduction of Kamat, Xu, Trappe & Zhang's temporal-privacy
system: the information-theoretic privacy formulation, the queueing
analysis of privacy buffering, the RCAD (Rate-Controlled Adaptive
Delaying) mechanism, the baseline and adaptive adversaries, and the
event-driven simulation platform the paper evaluates on -- plus every
substrate (DES engine, sensor-grade crypto, network/routing models,
traffic generators) built from scratch.

Quick start::

    from repro.sim import SimulationConfig, SensorNetworkSimulator
    from repro.core import BaselineAdversary, FlowKnowledge, summarize_flow

    config = SimulationConfig.paper_baseline(interarrival=2.0, case="rcad")
    result = SensorNetworkSimulator(config).run()

    adversary = BaselineAdversary(FlowKnowledge(
        transmission_delay=1.0, mean_delay_per_hop=30.0,
        buffer_capacity=10, n_sources=4))
    estimates = adversary.estimate_all(result.flow_observations(flow_id=1))
    metrics = summarize_flow(result.flow_records(flow_id=1), estimates)
    print(f"MSE = {metrics.mse:.0f}, mean latency = {metrics.latency.mean:.1f}")

Subpackages
-----------
``repro.core``
    RCAD, delay distributions, buffers, adversaries, metrics, planners.
``repro.sim``
    The event-driven WSN simulator of the paper's Section 5.
``repro.des`` / ``repro.net`` / ``repro.traffic`` / ``repro.crypto``
    The substrates: simulation engine, network model, workloads, crypto.
``repro.queueing`` / ``repro.infotheory``
    The analytic backbone: Sections 3 and 4 of the paper.
``repro.experiments`` / ``repro.analysis``
    Drivers regenerating every figure, and sweep/reporting plumbing.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
