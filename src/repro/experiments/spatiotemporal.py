"""Extension: spatial and temporal privacy, together (§1, refs [11,14]).

The paper's introduction splits asset privacy into *where* (source
location, protected by phantom routing in the authors' earlier work)
and *when* (temporal, this paper's RCAD).  This experiment runs the
2x2 of {tree, phantom} routing x {no-delay, RCAD} buffering on a
single S1 flow and scores both threats at once:

* **temporal** -- the baseline adversary's creation-time MSE (headers
  carry the true per-packet hop count, so the estimator stays
  calibrated under phantom routing's variable-length paths);
* **spatial** -- a backtracing local eavesdropper replaying the
  transmission log from the sink; scored by capture (did it reach the
  source?), capture time and moves.

Expected 2x2: phantom routing alone leaves creation times exactly
recoverable (MSE 0 -- spatial tricks buy no temporal privacy);
RCAD alone leaves the single fixed path trivially backtraceable in
h moves (though slower in wall-clock, since packets arrive spread
out); only the combination defends both axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.adversary import BaselineAdversary, FlowKnowledge
from repro.core.planner import UniformPlanner
from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_MEAN_DELAY,
    PAPER_TX_DELAY,
)
from repro.core.metrics import summarize_flow
from repro.location.backtrace import BacktracingAdversary
from repro.location.policies import PhantomRoutingPolicy, TreeRoutingPolicy
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PeriodicTraffic

__all__ = [
    "SpatioTemporalRow",
    "spatiotemporal_experiment",
    "SafetyPeriodRow",
    "safety_period_sweep",
]


@dataclass(frozen=True)
class SpatioTemporalRow:
    """One (routing, buffering) cell of the 2x2."""

    routing: str
    buffering: str
    temporal_mse: float
    mean_latency: float
    captured: bool
    capture_time: float | None
    backtrace_moves: int


def spatiotemporal_experiment(
    walk_length: int = 8,
    interarrival: float = 4.0,
    n_packets: int = 300,
    seed: int = 0,
    flow_label: str = "S1",
) -> list[SpatioTemporalRow]:
    """Run the 2x2 and score both adversaries on each cell."""
    if walk_length < 1:
        raise ValueError(f"walk length must be >= 1, got {walk_length}")
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    source = deployment.node_for_label(flow_label)

    rows = []
    for routing_name in ("tree", "phantom"):
        for buffering in ("no-delay", "rcad"):
            if routing_name == "tree":
                policy = TreeRoutingPolicy(tree)
            else:
                policy = PhantomRoutingPolicy(
                    tree, deployment, walk_length=walk_length
                )
            if buffering == "no-delay":
                plan, buffers = None, BufferSpec(kind="infinite")
                mean_delay = 0.0
            else:
                plan = UniformPlanner(PAPER_MEAN_DELAY).plan(
                    tree, {source: 1.0 / interarrival}
                )
                buffers = BufferSpec(kind="rcad", capacity=PAPER_BUFFER_CAPACITY)
                mean_delay = PAPER_MEAN_DELAY
            config = SimulationConfig(
                deployment=deployment,
                tree=tree,
                flows=[
                    FlowSpec(
                        flow_id=1,
                        source=source,
                        traffic=PeriodicTraffic(interval=interarrival),
                        n_packets=n_packets,
                    )
                ],
                delay_plan=plan,
                buffers=buffers,
                routing_policy=policy,
                record_transmissions=True,
                seed=seed,
            )
            result = SensorNetworkSimulator(config).run()

            timing_adversary = BaselineAdversary(
                FlowKnowledge(
                    transmission_delay=PAPER_TX_DELAY,
                    mean_delay_per_hop=mean_delay,
                    buffer_capacity=(
                        PAPER_BUFFER_CAPACITY if buffering == "rcad" else None
                    ),
                    n_sources=1,
                )
            )
            estimates = timing_adversary.estimate_all(result.observations)
            metrics = summarize_flow(result.records, estimates)

            hunter = BacktracingAdversary(sink=deployment.sink)
            outcome = hunter.hunt(result.transmissions, target_source=source)
            rows.append(
                SpatioTemporalRow(
                    routing=routing_name,
                    buffering=buffering,
                    temporal_mse=metrics.mse,
                    mean_latency=metrics.latency.mean,
                    captured=outcome.captured,
                    capture_time=outcome.capture_time,
                    backtrace_moves=outcome.moves,
                )
            )
    return rows


@dataclass(frozen=True)
class SafetyPeriodRow:
    """Backtracer outcome at one phantom walk length (replicated)."""

    walk_length: int
    capture_fraction: float
    mean_safety_period: float | None
    """Mean capture time over the replications that ended in capture
    (None if the source survived every hunt)."""
    mean_latency: float


def safety_period_sweep(
    walk_lengths: tuple[int, ...] = (0, 2, 4, 8, 12),
    interarrival: float = 4.0,
    n_packets: int = 300,
    n_replications: int = 5,
    base_seed: int = 0,
    flow_label: str = "S1",
) -> list[SafetyPeriodRow]:
    """The classic source-location figure: safety period vs h_walk.

    No artificial delays here (pure routing defence), so the sweep
    isolates phantom routing's contribution; walk length 0 is plain
    tree routing and the baseline safety period.  Hunts are replicated
    over seeds because a single backtrace outcome is high-variance.
    """
    if n_replications < 1:
        raise ValueError(f"need at least 1 replication, got {n_replications}")
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    source = deployment.node_for_label(flow_label)
    rows = []
    for walk_length in walk_lengths:
        if walk_length < 0:
            raise ValueError(f"walk length must be non-negative, got {walk_length}")
        capture_times: list[float] = []
        latencies: list[float] = []
        for replication in range(n_replications):
            policy = (
                TreeRoutingPolicy(tree)
                if walk_length == 0
                else PhantomRoutingPolicy(tree, deployment, walk_length=walk_length)
            )
            config = SimulationConfig(
                deployment=deployment,
                tree=tree,
                flows=[
                    FlowSpec(
                        flow_id=1,
                        source=source,
                        traffic=PeriodicTraffic(interval=interarrival),
                        n_packets=n_packets,
                    )
                ],
                delay_plan=None,
                buffers=BufferSpec(kind="infinite"),
                routing_policy=policy,
                record_transmissions=True,
                seed=base_seed + replication,
            )
            result = SensorNetworkSimulator(config).run()
            latencies.append(result.mean_latency())
            outcome = BacktracingAdversary(sink=deployment.sink).hunt(
                result.transmissions, target_source=source
            )
            if outcome.captured:
                capture_times.append(outcome.capture_time)
        rows.append(
            SafetyPeriodRow(
                walk_length=walk_length,
                capture_fraction=len(capture_times) / n_replications,
                mean_safety_period=(
                    sum(capture_times) / len(capture_times)
                    if capture_times
                    else None
                ),
                mean_latency=sum(latencies) / len(latencies),
            )
        )
    return rows
