"""Chaos sweep: fault intensity vs delivery, privacy, latency, overhead.

The robustness question the fault layer exists to answer: *how do the
paper's privacy and performance conclusions degrade as the network
gets uglier?*  This driver sweeps a single scalar **fault intensity**
``epsilon in [0, 1]`` that scales every fault family at once:

* Gilbert-Elliott burst loss: bad-state entry rate and bad-state loss
  both grow with epsilon;
* per-hop delay jitter: amplitude grows to half a transmission delay;
* packet duplication: probability grows to 5%;
* node crashes: above a threshold intensity, the first-flow trunk
  parent crashes for the middle third of the run (exercising buffer
  freezing, failover and stranding);

and compares the two bounded-buffer disciplines -- **drop-tail** vs
**RCAD** -- with and without stop-and-wait link ARQ.  Reported per
cell: delivery fraction, adversary MSE (privacy), mean latency, and
retransmission overhead.

Every run is audited by the simulator's invariant checker, so the
sweep doubles as an end-to-end stress test of the fault machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.sweep import sweep
from repro.experiments.common import build_adversary, score_flow
from repro.faults.arq import ArqSpec
from repro.faults.plan import (
    BurstyLossSpec,
    CrashWindow,
    DuplicationSpec,
    FaultPlan,
    JitterSpec,
)
from repro.runtime.context import run_simulation
from repro.sim.config import BufferSpec, SimulationConfig

__all__ = ["ChaosRow", "chaos_plan", "chaos_sweep", "render_chaos_rows"]

#: intensity at and above which the trunk-parent crash window turns on
CRASH_INTENSITY_THRESHOLD = 0.5


@dataclass(frozen=True)
class ChaosRow:
    """One (discipline, ARQ, intensity) cell of the chaos sweep."""

    discipline: str
    arq: bool
    intensity: float
    delivered_fraction: float
    mse: float
    mean_latency: float
    retransmissions: int
    lost_in_transit: int
    stranded: int
    duplicates_suppressed: int
    preemptions: int


def chaos_plan(
    intensity: float,
    config: SimulationConfig,
    arq: bool = False,
) -> FaultPlan | None:
    """The fault plan at one intensity, sized to one configuration.

    ``intensity == 0`` returns None (the fault-free baseline), keeping
    the zero cell bit-identical to the unfaulted simulator.
    """
    if not 0.0 <= intensity <= 1.0:
        raise ValueError(f"intensity must be in [0, 1], got {intensity}")
    if intensity == 0.0:
        return None
    crashes: tuple[CrashWindow, ...] = ()
    if intensity >= CRASH_INTENSITY_THRESHOLD:
        # Crash the first flow's trunk parent for the middle third of
        # the (approximate) active period.
        flow = config.flows[0]
        parent = config.tree.parent[flow.source]
        horizon = flow.n_packets / flow.traffic.mean_rate()
        crashes = (CrashWindow(node=parent, start=horizon / 3, end=2 * horizon / 3),)
    return FaultPlan(
        bursty_loss=BurstyLossSpec(
            p_good_to_bad=0.05 * intensity,
            p_bad_to_good=0.25,
            loss_bad=0.6 * intensity,
        ),
        jitter=JitterSpec(amplitude=0.5 * intensity * config.transmission_delay),
        duplication=DuplicationSpec(probability=0.05 * intensity),
        crashes=crashes,
        arq=ArqSpec(timeout=4.0 * config.transmission_delay, max_retries=4)
        if arq
        else None,
    )


def _discipline_config(
    discipline: str,
    interarrival: float,
    n_packets: int,
    seed: int,
) -> SimulationConfig:
    config = SimulationConfig.paper_baseline(
        interarrival=interarrival, case="rcad", n_packets=n_packets, seed=seed
    )
    if discipline == "drop-tail":
        return replace(
            config,
            buffers=BufferSpec(kind="drop-tail", capacity=config.buffers.capacity),
        )
    if discipline == "rcad":
        return config
    raise ValueError(f"unknown discipline {discipline!r}")


def chaos_sweep(
    intensities: tuple[float, ...] = (0.0, 0.25, 0.5, 1.0),
    disciplines: tuple[str, ...] = ("drop-tail", "rcad"),
    arq_modes: tuple[bool, ...] = (False, True),
    interarrival: float = 2.0,
    n_packets: int = 300,
    seed: int = 0,
    flow_id: int = 1,
) -> list[ChaosRow]:
    """Sweep fault intensity across disciplines and ARQ modes."""
    cells = [
        (discipline, arq, intensity)
        for discipline in disciplines
        for arq in arq_modes
        for intensity in intensities
    ]

    def run_cell(cell: tuple[str, bool, float]) -> ChaosRow:
        discipline, arq, intensity = cell
        config = _discipline_config(discipline, interarrival, n_packets, seed)
        config = config.with_faults(chaos_plan(intensity, config, arq=arq))
        result = run_simulation(config)
        delivered = result.delivered_count(flow_id)
        if delivered:
            metrics = score_flow(
                result, build_adversary("baseline", "rcad"), flow_id
            )
            mse, latency = metrics.mse, metrics.latency.mean
        else:  # the adversary has nothing to estimate
            mse, latency = float("nan"), float("nan")
        return ChaosRow(
            discipline=discipline,
            arq=arq,
            intensity=float(intensity),
            delivered_fraction=delivered / n_packets,
            mse=mse,
            mean_latency=latency,
            retransmissions=result.total_retransmissions(),
            lost_in_transit=result.lost_in_transit,
            stranded=result.stranded_in_buffer,
            duplicates_suppressed=result.duplicates_suppressed,
            preemptions=result.total_preemptions(),
        )

    return sweep(cells, run_cell)


def render_chaos_rows(rows: list[ChaosRow]) -> str:
    """Aligned text table of one sweep (the CLI's output)."""
    lines = [
        "# chaos sweep: fault intensity vs delivery / privacy / latency "
        "(flow S1)",
        f"{'discipline':>10} {'arq':>5} {'eps':>5} {'deliv':>7} "
        f"{'MSE':>12} {'latency':>9} {'retx':>6} {'lost':>6} "
        f"{'strand':>6} {'dups':>6} {'preempt':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.discipline:>10} {'on' if row.arq else 'off':>5} "
            f"{row.intensity:>5.2f} {row.delivered_fraction:>7.3f} "
            f"{row.mse:>12.1f} {row.mean_latency:>9.2f} "
            f"{row.retransmissions:>6d} {row.lost_in_transit:>6d} "
            f"{row.stranded:>6d} {row.duplicates_suppressed:>6d} "
            f"{row.preemptions:>8d}"
        )
    return "\n".join(lines)
