"""DES throughput benchmarking: event and packet rates, before/after.

The hot-path overhaul (calendar-queue engine + the vectorized fast
path of :mod:`repro.sim.fastpath`) is a performance change, and
performance claims need a reproducible harness.  This module defines

* the benchmark **workload matrix**: the paper's 4-flow Figure 2 cell
  plus two synthetic grid scale-ups (~10^2 and ~10^3 nodes) that stress
  deep routing trees and many concurrent buffers;
* :func:`measure` -- wall-clock one configuration under either engine
  ("event" = the discrete-event engine, forced via ``REPRO_FASTPATH=0``;
  "fast" = the batch replay), reporting events/sec and packets/sec;
* :func:`compare` -- the before/after A/B on one workload, asserting
  on the way that both engines account for exactly the same number of
  events (a cheap structural identity check on top of the golden
  digests).

``scripts/bench_des_throughput.py`` sweeps the matrix and commits the
numbers to ``benchmarks/results/BENCH_des_throughput.json``;
``scripts/ci_des_throughput_smoke.py`` re-measures a reduced workload
in CI and fails on >20% speedup regression against the committed file.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.core.planner import UniformPlanner
from repro.net.routing import greedy_grid_tree
from repro.net.topology import grid_deployment
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.traffic.generators import PoissonTraffic

__all__ = [
    "Measurement",
    "benchmark_workloads",
    "paper_workload",
    "grid_workload",
    "measure",
    "compare",
]


@dataclass(frozen=True)
class Measurement:
    """One timed run of one configuration under one engine."""

    mode: str
    seconds: float
    events: int
    packets: int

    @property
    def events_per_sec(self) -> float:
        return self.events / self.seconds

    @property
    def packets_per_sec(self) -> float:
        return self.packets / self.seconds

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "seconds": round(self.seconds, 6),
            "events": self.events,
            "packets": self.packets,
            "events_per_sec": round(self.events_per_sec, 1),
            "packets_per_sec": round(self.packets_per_sec, 1),
        }


def paper_workload(n_packets: int = 1000) -> SimulationConfig:
    """The paper's highest-load Figure 2 cell: RCAD, interarrival 2."""
    return SimulationConfig.paper_baseline(
        interarrival=2.0, case="rcad", n_packets=n_packets
    )


def grid_workload(
    width: int,
    height: int,
    n_flows: int,
    n_packets: int,
    mean_delay: float = 30.0,
    interarrival: float = 4.0,
    buffer_capacity: int = 10,
) -> SimulationConfig:
    """An RCAD workload on a ``width x height`` grid.

    Sources are the ``n_flows`` highest-id nodes -- the far rows of the
    grid, giving the longest routing paths and the deepest buffer
    chains the topology offers.
    """
    deployment = grid_deployment(width, height)
    tree = greedy_grid_tree(deployment, width=width)
    sources = sorted(deployment.positions, reverse=True)[:n_flows]
    flows = [
        FlowSpec(
            flow_id=index + 1,
            source=source,
            traffic=PoissonTraffic(rate=1.0 / interarrival),
            n_packets=n_packets,
        )
        for index, source in enumerate(sources)
    ]
    delay_plan = UniformPlanner(mean_delay).plan(
        tree, {flow.source: flow.traffic.mean_rate() for flow in flows}
    )
    return SimulationConfig(
        deployment=deployment,
        tree=tree,
        flows=flows,
        delay_plan=delay_plan,
        buffers=BufferSpec(kind="rcad", capacity=buffer_capacity),
        transmission_delay=1.0,
        max_sim_time=100_000_000.0,
    )


def benchmark_workloads(scale: float = 1.0) -> dict[str, SimulationConfig]:
    """The committed benchmark matrix; ``scale`` shrinks packet counts
    for smoke runs (CI) without changing the workload shapes."""

    def n(base: int) -> int:
        return max(10, int(base * scale))

    return {
        "paper-fig2-rcad-ia2": paper_workload(n_packets=n(1000)),
        "grid-100": grid_workload(
            width=10, height=10, n_flows=8, n_packets=n(500)
        ),
        "grid-1000": grid_workload(
            width=25, height=40, n_flows=8, n_packets=n(500)
        ),
    }


def measure(
    config: SimulationConfig, mode: str, repeats: int = 1
) -> Measurement:
    """Best-of-``repeats`` wall-clock for one engine on one workload.

    ``mode`` is ``"event"`` (discrete-event engine, ``REPRO_FASTPATH``
    forced off) or ``"fast"`` (batch replay, forced on; ineligible
    configurations would silently fall back, so eligibility is
    asserted).  The environment variable is restored afterwards.
    """
    from repro.sim.fastpath import fastpath_eligible
    from repro.sim.simulator import SensorNetworkSimulator

    if mode not in ("event", "fast"):
        raise ValueError(f"unknown mode {mode!r}")
    if mode == "fast" and not fastpath_eligible(config):
        raise ValueError("workload is not fast-path eligible")
    saved = os.environ.get("REPRO_FASTPATH")
    os.environ["REPRO_FASTPATH"] = "0" if mode == "event" else "1"
    try:
        best = None
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            result = SensorNetworkSimulator(config).run()
            elapsed = time.perf_counter() - start
            if best is None or elapsed < best[0]:
                best = (elapsed, result)
    finally:
        if saved is None:
            del os.environ["REPRO_FASTPATH"]
        else:
            os.environ["REPRO_FASTPATH"] = saved
    elapsed, result = best
    packets = sum(flow.n_packets for flow in config.flows)
    return Measurement(
        mode=mode,
        seconds=elapsed,
        events=result.events_processed,
        packets=packets,
    )


def compare(config: SimulationConfig, repeats: int = 1) -> dict:
    """Before/after on one workload: event engine vs the fast path."""
    before = measure(config, "event", repeats=repeats)
    after = measure(config, "fast", repeats=repeats)
    if before.events != after.events:
        raise AssertionError(
            "engines disagree on event count: "
            f"event={before.events} fast={after.events}"
        )
    return {
        "nodes": len(config.deployment.positions),
        "flows": len(config.flows),
        "before": before.to_dict(),
        "after": after.to_dict(),
        "speedup": round(before.seconds / after.seconds, 2),
    }
