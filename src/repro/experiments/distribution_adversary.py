"""Extension: a distribution-level adversary (EM deconvolution).

Per-packet creation-time estimates are one threat; the *temporal
pattern* of the phenomenon (when is the animal active?) is another.
Using the EM reconstruction the paper cites ([1], Agrawal & Aggarwal),
a sink adversary can deconvolve the known delay distribution out of
the arrival-time histogram and recover the creation-time distribution.

This experiment drives the paper topology with a **bimodal** activity
pattern (two activity bursts -- dawn and dusk, say), runs the three
evaluation cases, and lets the EM adversary reconstruct the pattern:

* **no-delay** -- the adversary shifts arrivals by h*tau and recovers
  the pattern essentially exactly;
* **unlimited buffers** -- the adversary deconvolves the true
  Erlang(h, mu) delay and still recovers the gross shape (temporal
  privacy against distribution inference is *weaker* than against
  per-packet inference -- deconvolution averages the noise away);
* **RCAD** -- the adversary deconvolves the *nominal* delay density,
  but preemption shortened the real delays, so the reconstruction is
  misplaced; the error is quantified as the total-variation distance
  to the true pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from repro.core.planner import UniformPlanner
from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_MEAN_DELAY,
    PAPER_TX_DELAY,
)
from repro.infotheory.deconvolution import em_deconvolve, total_variation_distance
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import TraceTraffic

__all__ = ["DistributionAdversaryRow", "distribution_adversary_experiment"]


@dataclass(frozen=True)
class DistributionAdversaryRow:
    """Reconstruction quality for one evaluation case."""

    case: str
    tv_distance: float
    reconstructed_mean: float
    true_mean: float


def _bimodal_pattern(n_packets: int, rng: np.random.Generator) -> np.ndarray:
    """Two activity bursts: N(300, 40) and N(900, 60), clipped positive."""
    first = rng.normal(300.0, 40.0, size=n_packets // 2)
    second = rng.normal(900.0, 60.0, size=n_packets - n_packets // 2)
    return np.sort(np.clip(np.concatenate([first, second]), 1.0, None))


def _true_masses(samples: np.ndarray, grid: np.ndarray) -> np.ndarray:
    step = grid[1] - grid[0]
    edges = np.concatenate([grid - step / 2, [grid[-1] + step / 2]])
    histogram, _ = np.histogram(samples, bins=edges)
    return histogram / histogram.sum()


def distribution_adversary_experiment(
    n_packets: int = 600,
    seed: int = 0,
    flow_label: str = "S1",
    grid_step: float = 10.0,
) -> list[DistributionAdversaryRow]:
    """Run the EM adversary against the three evaluation cases."""
    rng = np.random.Generator(np.random.PCG64(seed))
    creation_times = _bimodal_pattern(n_packets, rng)

    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    source = deployment.node_for_label(flow_label)
    hops = tree.hop_count(source)
    grid = np.arange(0.0, creation_times.max() + 300.0, grid_step)
    true_masses = _true_masses(creation_times, grid)

    rows = []
    for case in ("no-delay", "unlimited", "rcad"):
        if case == "no-delay":
            plan, buffers = None, BufferSpec(kind="infinite")
        else:
            plan = UniformPlanner(PAPER_MEAN_DELAY).plan(tree, {source: 0.01})
            buffers = (
                BufferSpec(kind="infinite")
                if case == "unlimited"
                else BufferSpec(kind="rcad", capacity=PAPER_BUFFER_CAPACITY)
            )
        config = SimulationConfig(
            deployment=deployment,
            tree=tree,
            flows=[
                FlowSpec(
                    flow_id=1,
                    source=source,
                    traffic=TraceTraffic(creation_times),
                    n_packets=n_packets,
                )
            ],
            delay_plan=plan,
            buffers=buffers,
            seed=seed,
        )
        result = SensorNetworkSimulator(config).run()
        arrivals = np.array([o.arrival_time for o in result.observations])

        # The adversary's delay model: h*tau transmission shift plus,
        # for the delayed cases, the *nominal* Erlang(h, mu) sum of
        # per-hop exponentials -- correct for "unlimited", optimistic
        # for RCAD (preemption shortens the real delays).
        if case == "no-delay":
            def delay_pdf(lag, _h=hops):
                return np.where(np.abs(lag - _h * PAPER_TX_DELAY) < grid_step / 2,
                                1.0 / grid_step, 0.0)
        else:
            erlang = scipy_stats.gamma(a=hops, scale=PAPER_MEAN_DELAY)

            def delay_pdf(lag, _e=erlang, _h=hops):
                return _e.pdf(lag - _h * PAPER_TX_DELAY)

        reconstruction = em_deconvolve(arrivals, delay_pdf, grid)
        rows.append(
            DistributionAdversaryRow(
                case=case,
                tv_distance=total_variation_distance(
                    reconstruction.density, true_masses
                ),
                reconstructed_mean=reconstruction.mean(),
                true_mean=float(creation_times.mean()),
            )
        )
    return rows
