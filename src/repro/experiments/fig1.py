"""Figure 1: the simulation topology.

The paper's Figure 1 is a picture of the deployment: four sources
(S1..S4) routing to a common sink over paths of 15, 22, 9 and 11 hops
that merge progressively.  :func:`topology_summary` regenerates the
figure's content as data: per-flow hop counts, path overlaps, and the
per-node flow load profile along S1's path (the traffic-accumulation
gradient the queueing analysis predicts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.routing import RoutingTree, greedy_grid_tree
from repro.net.topology import PAPER_HOP_COUNTS, Deployment, paper_topology

__all__ = ["FlowSummary", "TopologySummary", "topology_summary"]


@dataclass(frozen=True)
class FlowSummary:
    """One flow of the Figure 1 topology."""

    label: str
    source: int
    position: tuple[float, float]
    hop_count: int
    expected_hop_count: int

    @property
    def matches_paper(self) -> bool:
        """True if the reproduced hop count equals the paper's."""
        return self.hop_count == self.expected_hop_count


@dataclass(frozen=True)
class TopologySummary:
    """The Figure 1 content as data."""

    flows: list[FlowSummary]
    n_nodes: int
    sink: int
    trunk_flow_counts: list[tuple[int, int]]
    """Along S1's path, (node id, number of flows traversing it)."""

    def render(self) -> str:
        """Text rendering of the topology facts."""
        lines = [
            "# Figure 1: simulation topology",
            f"{'flow':>6} {'source':>8} {'position':>12} {'hops':>6} {'paper':>6}",
        ]
        for flow in self.flows:
            lines.append(
                f"{flow.label:>6} {flow.source:>8} "
                f"{str(flow.position):>12} {flow.hop_count:>6} "
                f"{flow.expected_hop_count:>6}"
            )
        lines.append("")
        lines.append("flows traversing each node of S1's path (source -> sink):")
        lines.append(
            " ".join(f"{count}" for _, count in self.trunk_flow_counts)
        )
        return "\n".join(lines)


def topology_summary(
    deployment: Deployment | None = None, tree: RoutingTree | None = None
) -> TopologySummary:
    """Reproduce the Figure 1 topology and summarize its structure."""
    deployment = deployment or paper_topology()
    tree = tree or greedy_grid_tree(deployment, width=12)
    flows = []
    for label, expected in PAPER_HOP_COUNTS.items():
        source = deployment.node_for_label(label)
        flows.append(
            FlowSummary(
                label=label,
                source=source,
                position=deployment.positions[source],
                hop_count=tree.hop_count(source),
                expected_hop_count=expected,
            )
        )
    sources = {f.label: f.source for f in flows}
    paths = {label: tree.path(source) for label, source in sources.items()}
    s1_path = paths["S1"][:-1]  # buffering nodes only
    trunk = [
        (node, sum(1 for path in paths.values() if node in path))
        for node in s1_path
    ]
    return TopologySummary(
        flows=flows,
        n_nodes=len(deployment.positions),
        sink=deployment.sink,
        trunk_flow_counts=trunk,
    )
