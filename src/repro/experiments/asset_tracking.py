"""Extension: temporal ambiguity becomes spatial ambiguity (§1-§2).

"In asset tracking, if we add temporal ambiguity to the time that the
packets are created then, as the asset moves, this would introduce
spatial ambiguity and make it harder for the adversary to track the
asset."  This experiment executes that sentence:

1. an asset walks a zigzag across the Figure 1 field; sensors within
   detection range fire one report per pass;
2. the reports are routed to the sink (undefended vs RCAD-defended);
3. the tracking adversary pins every report at its origin's (known)
   position and its *estimated* creation time, interpolates a track,
   and is scored by mean localization error against the true path.

The conversion rate is physical: a creation-time RMSE of T buys
roughly ``speed * T`` of spatial ambiguity, so the defence matters
more for faster assets -- the experiment reports both slow and fast
passes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adversary import BaselineAdversary, FlowKnowledge, NaiveAdversary
from repro.core.planner import UniformPlanner
from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_MEAN_DELAY,
    PAPER_TX_DELAY,
)
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.tracking.adversary import TrackingAdversary, mean_localization_error
from repro.tracking.detection import detect_passes
from repro.tracking.trajectory import waypoint_trajectory
from repro.traffic.generators import TraceTraffic

__all__ = ["AssetTrackingRow", "asset_tracking_experiment", "ZIGZAG_WAYPOINTS"]

#: A zigzag crossing most of the 12x12 field.
ZIGZAG_WAYPOINTS: tuple[tuple[float, float], ...] = (
    (11.0, 1.0),
    (2.0, 3.0),
    (10.0, 6.0),
    (3.0, 9.0),
    (11.0, 11.0),
)


@dataclass(frozen=True)
class AssetTrackingRow:
    """Tracking outcome for one (defence, asset speed) cell."""

    case: str
    asset_speed: float
    n_detections: int
    time_rmse: float
    localization_error: float


def asset_tracking_experiment(
    speeds: tuple[float, ...] = (0.02, 0.08),
    detection_radius: float = 1.3,
    seed: int = 0,
) -> list[AssetTrackingRow]:
    """Track the asset across defences and speeds.

    Returns one row per (case, speed); cases are ``no-delay`` (the
    undefended network, naive adversary is exact) and ``rcad`` (the
    paper's defence, baseline adversary).
    """
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    rows = []
    for speed in speeds:
        if speed <= 0:
            raise ValueError(f"asset speed must be positive, got {speed}")
        trajectory = waypoint_trajectory(
            ZIGZAG_WAYPOINTS, speed=speed, start_time=50.0
        )
        detections = detect_passes(
            trajectory,
            deployment.positions,
            detection_radius=detection_radius,
            hold_off=20.0 / speed * 0.02,  # re-arm scales with pass duration
        )
        # Sensors at the sink itself cannot report (the sink is not a
        # source); drop any detection there.
        detections = [d for d in detections if d.node_id != deployment.sink]
        if len(detections) < 8:
            raise RuntimeError(
                f"only {len(detections)} detections at speed {speed}; "
                "widen the detection radius"
            )
        per_sensor: dict[int, list[float]] = {}
        for detection in detections:
            per_sensor.setdefault(detection.node_id, []).append(detection.time)

        for case in ("no-delay", "rcad"):
            flows = [
                FlowSpec(
                    flow_id=index + 1,
                    source=node,
                    traffic=TraceTraffic(times),
                    n_packets=len(times),
                )
                for index, (node, times) in enumerate(sorted(per_sensor.items()))
            ]
            if case == "no-delay":
                plan, buffers = None, BufferSpec(kind="infinite")
                knowledge = FlowKnowledge(transmission_delay=PAPER_TX_DELAY)
                estimator = NaiveAdversary(knowledge)
            else:
                plan = UniformPlanner(PAPER_MEAN_DELAY).plan(
                    tree, {flow.source: 0.01 for flow in flows}
                )
                buffers = BufferSpec(kind="rcad", capacity=PAPER_BUFFER_CAPACITY)
                estimator = BaselineAdversary(
                    FlowKnowledge(
                        transmission_delay=PAPER_TX_DELAY,
                        mean_delay_per_hop=PAPER_MEAN_DELAY,
                        buffer_capacity=PAPER_BUFFER_CAPACITY,
                        n_sources=len(flows),
                    )
                )
            config = SimulationConfig(
                deployment=deployment,
                tree=tree,
                flows=flows,
                delay_plan=plan,
                buffers=buffers,
                seed=seed,
            )
            result = SensorNetworkSimulator(config).run()

            adversary = TrackingAdversary(estimator, deployment.positions)
            estimate = adversary.reconstruct(result.observations)
            error = mean_localization_error(trajectory, estimate, time_step=5.0)

            estimator.reset()
            time_estimates = estimator.estimate_all(result.observations)
            truths = np.array([r.created_at for r in result.records])
            time_rmse = float(
                np.sqrt(np.mean((np.array(time_estimates) - truths) ** 2))
            )
            rows.append(
                AssetTrackingRow(
                    case=case,
                    asset_speed=speed,
                    n_detections=len(detections),
                    time_rmse=time_rmse,
                    localization_error=error,
                )
            )
    return rows
