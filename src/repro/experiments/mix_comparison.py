"""Extension: comparing the §6 mix designs at equal mean latency.

The paper places its mechanism in the mix lineage: threshold/pool
mixes "wait until a certain threshold number of packets arrive", while
Kesdogan's SG-Mix "delays an individual incoming message according to
an exponential distribution" -- the very strategy the paper deploys in
every sensor node.  This experiment makes the comparison quantitative.

For a Poisson message stream, each design is configured to the *same
mean latency* and scored on:

* ``temporal_mse`` -- the paper's privacy currency (variance left to a
  mean-compensating timing adversary);
* ``set_entropy`` -- the classical sender-anonymity-set entropy (which
  favours batching designs);
* ``linkage_entropy`` -- for the SG-Mix, the posterior linkage
  entropy, its proper anonymity measure.

The headline: batching designs buy *set* anonymity but their flush
times are highly informative (low temporal MSE per unit latency at low
batch sizes and synchronized departures), while the SG-Mix converts
all of its latency budget into temporal uncertainty -- which is why a
delay-tolerant sensor network wanting *temporal* privacy uses SG-Mix
style delaying.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.sweep import sweep
from repro.mixes.designs import Mix, PoolMix, StopAndGoMix, ThresholdMix, TimedMix
from repro.mixes.metrics import (
    mean_latency,
    sender_anonymity_entropy,
    sg_linkage_entropy,
    temporal_mse,
)
from repro.queueing.poisson import sample_poisson_arrivals

__all__ = ["MixComparisonRow", "compare_mixes_at_equal_latency"]


@dataclass(frozen=True)
class MixComparisonRow:
    """One mix design's scores."""

    design: str
    mean_latency: float
    temporal_mse: float
    set_entropy: float
    linkage_entropy: float | None


def compare_mixes_at_equal_latency(
    target_latency: float = 30.0,
    message_rate: float = 0.5,
    horizon: float = 4000.0,
    seed: int = 0,
) -> list[MixComparisonRow]:
    """Score the four designs on one Poisson stream at equal latency.

    Design parameters are derived analytically from the target:

    * threshold mix, batch n: a random message waits on average
      ``(n-1)/2`` interarrivals, so ``n = 2 * target * rate + 1``;
    * timed mix, interval T: mean wait ``T/2``, so ``T = 2 * target``;
    * pool mix: threshold sizing with a small pool (its extra latency
      is reported, not corrected for -- pools have unbounded tails);
    * stop-and-go: mean delay = target, by definition.
    """
    if target_latency <= 0 or message_rate <= 0 or horizon <= 0:
        raise ValueError("latency, rate and horizon must all be positive")
    rng = np.random.Generator(np.random.PCG64(seed))
    arrivals = sample_poisson_arrivals(message_rate, horizon, rng)
    if arrivals.size < 50:
        raise ValueError("horizon too short: fewer than 50 messages generated")

    batch = max(2, int(round(2 * target_latency * message_rate + 1)))
    designs: list[Mix] = [
        ThresholdMix(batch_size=batch),
        TimedMix(interval=2 * target_latency),
        PoolMix(batch_size=batch, pool_size=max(1, batch // 4)),
        StopAndGoMix(mean_delay=target_latency),
    ]

    def score_design(cell: tuple[int, Mix]) -> MixComparisonRow:
        index, design = cell
        # Each design draws from its own spawned stream, so scores do
        # not depend on how many random draws earlier designs consumed
        # (and the sweep parallelizes without order effects).
        design_rng = np.random.Generator(
            np.random.PCG64(np.random.SeedSequence(entropy=seed, spawn_key=(index + 1,)))
        )
        output = design.transform(arrivals, design_rng)
        linkage = None
        if isinstance(design, StopAndGoMix):
            linkage = sg_linkage_entropy(output, mean_delay=target_latency)
        return MixComparisonRow(
            design=design.name,
            mean_latency=mean_latency(output),
            temporal_mse=temporal_mse(output),
            set_entropy=sender_anonymity_entropy(output),
            linkage_entropy=linkage,
        )

    return sweep(list(enumerate(designs)), score_design)
