"""Sensitivity extensions: does Figure 2 survive parameter changes?

Three sweeps a practitioner deploying RCAD would run first:

* :func:`workload_sensitivity` -- the paper evaluates periodic
  sources only; we repeat the headline cell under Poisson, jittered
  -periodic and bursty on/off workloads of the same mean rate;
* :func:`buffer_size_sweep` -- k is fixed at 10 ("approximates the
  buffers available on the Mica-2 motes"); sweeping k shows the
  privacy boost *is* the memory shortage: once k comfortably exceeds
  the offered load rho, preemption stops and case 3 collapses onto
  case 2;
* :func:`mean_delay_sweep` -- 1/mu is the paper's design knob; the
  sweep traces the privacy-latency frontier for both the unlimited
  and the RCAD network (for unlimited buffers, MSE grows ~h/mu^2 --
  quadratically -- while latency grows only linearly: randomness is
  cheap at the margin).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweep import sweep
from repro.core.planner import UniformPlanner
from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_MEAN_DELAY,
    PAPER_N_SOURCES,
    build_adversary,
    score_flow,
)
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.runtime.context import run_simulation
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.traffic.generators import (
    JitteredPeriodicTraffic,
    OnOffTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    TrafficModel,
)

__all__ = [
    "WorkloadRow",
    "workload_sensitivity",
    "BufferSizeRow",
    "buffer_size_sweep",
    "MeanDelayRow",
    "mean_delay_sweep",
]


@dataclass(frozen=True)
class WorkloadRow:
    """Headline RCAD cell under one traffic model."""

    workload: str
    mse: float
    mean_latency: float
    preemptions: int


def _workloads(interarrival: float) -> dict[str, TrafficModel]:
    rate = 1.0 / interarrival
    return {
        "periodic": PeriodicTraffic(interval=interarrival),
        "jittered": JitteredPeriodicTraffic(
            interval=interarrival, jitter=interarrival / 4
        ),
        "poisson": PoissonTraffic(rate=rate),
        # Bursts of ~5x the base rate with matching duty cycle.
        "on-off": OnOffTraffic(
            burst_rate=5.0 * rate, mean_on=10 * interarrival,
            mean_off=40 * interarrival,
        ),
    }


def workload_sensitivity(
    interarrival: float = 2.0,
    n_packets: int = 500,
    seed: int = 0,
    flow_id: int = 1,
) -> list[WorkloadRow]:
    """The Figure 2 headline cell across traffic models (RCAD case)."""
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    sources = [deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")]

    def run_workload(name: str) -> WorkloadRow:
        flows = [
            FlowSpec(
                flow_id=i + 1,
                source=source,
                traffic=_workloads(interarrival)[name],
                n_packets=n_packets,
            )
            for i, source in enumerate(sources)
        ]
        plan = UniformPlanner(PAPER_MEAN_DELAY).plan(
            tree, {f.source: 1.0 / interarrival for f in flows}
        )
        config = SimulationConfig(
            deployment=deployment, tree=tree, flows=flows, delay_plan=plan,
            buffers=BufferSpec(kind="rcad", capacity=PAPER_BUFFER_CAPACITY),
            seed=seed,
        )
        result = run_simulation(config)
        metrics = score_flow(result, build_adversary("baseline", "rcad"), flow_id)
        return WorkloadRow(
            workload=name,
            mse=metrics.mse,
            mean_latency=metrics.latency.mean,
            preemptions=result.total_preemptions(),
        )

    return sweep(list(_workloads(interarrival)), run_workload)


@dataclass(frozen=True)
class BufferSizeRow:
    """RCAD at one buffer capacity."""

    capacity: int
    mse: float
    mean_latency: float
    preemptions: int


def buffer_size_sweep(
    capacities: tuple[int, ...] = (2, 5, 10, 20, 40, 80),
    interarrival: float = 2.0,
    n_packets: int = 500,
    seed: int = 0,
    flow_id: int = 1,
) -> list[BufferSizeRow]:
    """RCAD privacy and latency as mote memory grows.

    The trunk's offered load at 1/lambda = 2 is
    rho = n lambda / mu = 60 Erlang; once k clears it, preemption
    vanishes and the network behaves like the unlimited case.
    """
    for capacity in capacities:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")

    def run_capacity(capacity: int) -> BufferSizeRow:
        config = SimulationConfig.paper_baseline(
            interarrival=interarrival,
            case="rcad",
            n_packets=n_packets,
            buffer_capacity=capacity,
            seed=seed,
        )
        result = run_simulation(config)
        metrics = score_flow(result, build_adversary("baseline", "rcad"), flow_id)
        return BufferSizeRow(
            capacity=capacity,
            mse=metrics.mse,
            mean_latency=metrics.latency.mean,
            preemptions=result.total_preemptions(),
        )

    return sweep(list(capacities), run_capacity)


@dataclass(frozen=True)
class MeanDelayRow:
    """Privacy-latency point at one advertised mean delay 1/mu."""

    mean_delay: float
    case: str
    mse: float
    mean_latency: float


def mean_delay_sweep(
    mean_delays: tuple[float, ...] = (5.0, 15.0, 30.0, 60.0, 120.0),
    interarrival: float = 4.0,
    n_packets: int = 400,
    seed: int = 0,
    flow_id: int = 1,
) -> list[MeanDelayRow]:
    """Trace the privacy-latency frontier over the design knob 1/mu.

    Both the unlimited-buffer network (variance-only privacy, the §3
    theory regime) and RCAD at k = 10 (preemption regime at larger
    1/mu, since rho grows with the advertised delay).
    """
    for mean_delay in mean_delays:
        if mean_delay <= 0:
            raise ValueError(f"mean delay must be positive, got {mean_delay}")
    cells = [
        (mean_delay, case)
        for mean_delay in mean_delays
        for case in ("unlimited", "rcad")
    ]

    def run_cell(cell: tuple[float, str]) -> MeanDelayRow:
        mean_delay, case = cell
        config = SimulationConfig.paper_baseline(
            interarrival=interarrival,
            case=case,
            n_packets=n_packets,
            mean_delay=mean_delay,
            buffer_capacity=PAPER_BUFFER_CAPACITY,
            seed=seed,
        )
        result = run_simulation(config)
        # The adversary knows the actual advertised delay.
        from repro.core.adversary import BaselineAdversary, FlowKnowledge

        adversary = BaselineAdversary(
            FlowKnowledge(
                transmission_delay=1.0,
                mean_delay_per_hop=mean_delay,
                buffer_capacity=(
                    PAPER_BUFFER_CAPACITY if case == "rcad" else None
                ),
                n_sources=PAPER_N_SOURCES,
            )
        )
        metrics = score_flow(result, adversary, flow_id)
        return MeanDelayRow(
            mean_delay=mean_delay,
            case=case,
            mse=metrics.mse,
            mean_latency=metrics.latency.mean,
        )

    return sweep(cells, run_cell)
