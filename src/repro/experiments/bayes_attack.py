"""Extension: the empirical-Bayes attack on structured traffic.

Real phenomena are bursty, and a per-packet adversary can exploit
that: learn the creation-time prior by EM deconvolution (paper ref
[1]) and estimate each packet by its posterior mean.  This experiment
drives a single bimodal-activity flow (the S1 path) and scores the
baseline mean-subtracting adversary against the empirical-Bayes
adversary under each defence level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.adversary import BaselineAdversary, FlowKnowledge
from repro.core.bayes import EmpiricalBayesAdversary
from repro.core.metrics import summarize_flow
from repro.core.planner import UniformPlanner
from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_MEAN_DELAY,
    PAPER_TX_DELAY,
)
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import TraceTraffic

__all__ = ["BayesAttackRow", "bayes_attack_experiment"]


@dataclass(frozen=True)
class BayesAttackRow:
    """One (case, adversary) cell of the attack comparison."""

    case: str
    adversary: str
    mse: float
    mean_error: float


def bayes_attack_experiment(
    n_packets: int = 500,
    seed: int = 0,
    flow_label: str = "S1",
) -> list[BayesAttackRow]:
    """Baseline vs empirical-Bayes across the three defence levels."""
    rng = np.random.Generator(np.random.PCG64(seed))
    half = n_packets // 2
    creation = np.sort(
        np.clip(
            np.concatenate(
                [
                    rng.normal(300.0, 40.0, size=half),
                    rng.normal(900.0, 60.0, size=n_packets - half),
                ]
            ),
            1.0,
            None,
        )
    )
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    source = deployment.node_for_label(flow_label)
    hops = tree.hop_count(source)

    rows = []
    for case in ("no-delay", "unlimited", "rcad"):
        if case == "no-delay":
            plan, buffers = None, BufferSpec(kind="infinite")
            mean_delay = 0.0
        else:
            plan = UniformPlanner(PAPER_MEAN_DELAY).plan(tree, {source: 0.01})
            buffers = (
                BufferSpec(kind="infinite")
                if case == "unlimited"
                else BufferSpec(kind="rcad", capacity=PAPER_BUFFER_CAPACITY)
            )
            mean_delay = PAPER_MEAN_DELAY
        config = SimulationConfig(
            deployment=deployment,
            tree=tree,
            flows=[
                FlowSpec(
                    flow_id=1,
                    source=source,
                    traffic=TraceTraffic(creation),
                    n_packets=n_packets,
                )
            ],
            delay_plan=plan,
            buffers=buffers,
            seed=seed,
        )
        result = SensorNetworkSimulator(config).run()
        knowledge = FlowKnowledge(
            transmission_delay=PAPER_TX_DELAY,
            mean_delay_per_hop=mean_delay,
            buffer_capacity=PAPER_BUFFER_CAPACITY if case == "rcad" else None,
            n_sources=1,
        )
        adversaries: dict[str, object] = {
            "baseline": BaselineAdversary(knowledge)
        }
        if mean_delay > 0:
            bayes = EmpiricalBayesAdversary(knowledge, hop_counts={source: hops})
            bayes.fit(result.observations)
            adversaries["empirical-bayes"] = bayes
        for name, adversary in adversaries.items():
            estimates = adversary.estimate_all(result.observations)
            metrics = summarize_flow(result.records, estimates)
            rows.append(
                BayesAttackRow(
                    case=case,
                    adversary=name,
                    mse=metrics.mse,
                    mean_error=metrics.mean_error,
                )
            )
    return rows
