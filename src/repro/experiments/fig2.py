"""Figures 2(a) and 2(b): RCAD effectiveness.

The paper's central result.  Sweep the source inter-arrival time
1/lambda over {2..20} and, for flow S1, measure

* **Figure 2(a)** -- the baseline adversary's MSE on creation times,
  for case 1 (NoDelay), case 2 (Delay & unlimited buffers) and case 3
  (Delay & limited buffers, i.e. RCAD).  Expected shape: cases 1-2
  are small (case 1 exactly zero; case 2 only the delay variance),
  while case 3 is orders of magnitude larger, growing as the traffic
  rate rises and preemption truncates more delays;
* **Figure 2(b)** -- mean end-to-end delivery latency for the same
  three cases.  Expected shape: case 1 lowest (h tau = 15), case 2
  highest (h (tau + 1/mu) = 465), case 3 between them and dropping
  toward case 1 at high traffic (about 2.5x below case 2 at
  1/lambda = 2 in the paper).
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.records import ExperimentSeries, ExperimentTable
from repro.analysis.sweep import sweep
from repro.experiments.common import (
    PAPER_INTERARRIVALS,
    PAPER_N_PACKETS,
    build_adversary,
    run_paper_case,
    score_flow,
)

__all__ = [
    "CASE_LABELS",
    "fig2_cell",
    "fig2_cells",
    "fig2_tables",
    "figure2",
    "figure2_mse",
    "figure2_latency",
]

#: The paper's legend labels, keyed by evaluation case.
CASE_LABELS: dict[str, str] = {
    "no-delay": "NoDelay",
    "unlimited": "Delay&UnlimitedBuffers",
    "rcad": "Delay&LimitedBuffers",
}


def fig2_cells(
    interarrivals: Sequence[float] = PAPER_INTERARRIVALS,
    n_packets: int = PAPER_N_PACKETS,
    seed: int = 0,
    flow_id: int = 1,
) -> list[tuple[str, float, int, int, int]]:
    """The flattened (case, 1/lambda) grid as self-contained cells.

    Every cell carries all of its parameters so :func:`fig2_cell` is an
    importable module-level function (``repro.experiments.fig2:fig2_cell``)
    -- which is what lets ``repro worker`` processes on other hosts join
    a fabric run of this grid.
    """
    return [
        (case, float(interarrival), int(n_packets), int(seed), int(flow_id))
        for case in CASE_LABELS
        for interarrival in interarrivals
    ]


def fig2_cell(cell: tuple[str, float, int, int, int]) -> tuple[float, float]:
    """Run and score one grid cell: ``(mse, mean_latency)`` for flow S1."""
    case, interarrival, n_packets, seed, flow_id = cell
    result = run_paper_case(
        interarrival=interarrival, case=case, n_packets=n_packets, seed=seed
    )
    metrics = score_flow(
        result, build_adversary("baseline", case), flow_id=flow_id
    )
    return metrics.mse, metrics.latency.mean


def fig2_tables(
    cells: Sequence[tuple[str, float, int, int, int]],
    values: Sequence[tuple[float, float]],
) -> tuple[ExperimentTable, ExperimentTable]:
    """Assemble both Figure 2 panels from per-cell scores.

    Shared by :func:`figure2` and ``repro sweep-fabric`` so the two
    paths produce bit-identical tables from the same per-cell values.
    """
    mse_table = ExperimentTable(
        title="Figure 2(a): adversary estimation error, flow S1",
        x_label="1/lambda",
        y_label="mean square error",
    )
    latency_table = ExperimentTable(
        title="Figure 2(b): delivery latency, flow S1",
        x_label="1/lambda",
        y_label="mean end-to-end latency",
    )
    scores = dict(zip([tuple(cell) for cell in cells], values))
    interarrivals: list[float] = []
    for cell in cells:
        if cell[1] not in interarrivals:
            interarrivals.append(cell[1])
    by_case = {cell[0]: cell for cell in cells}
    for case, label in CASE_LABELS.items():
        if case not in by_case:
            continue
        _, _, n_packets, seed, flow_id = by_case[case]
        mse_values = [
            scores[(case, ia, n_packets, seed, flow_id)][0] for ia in interarrivals
        ]
        latency_values = [
            scores[(case, ia, n_packets, seed, flow_id)][1] for ia in interarrivals
        ]
        mse_table.add(ExperimentSeries(label, list(interarrivals), mse_values))
        latency_table.add(ExperimentSeries(label, list(interarrivals), latency_values))
    return mse_table, latency_table


def figure2(
    interarrivals: Sequence[float] = PAPER_INTERARRIVALS,
    n_packets: int = PAPER_N_PACKETS,
    seed: int = 0,
    flow_id: int = 1,
) -> tuple[ExperimentTable, ExperimentTable]:
    """Regenerate both panels of Figure 2 in one sweep.

    Returns ``(mse_table, latency_table)``.  Each simulation is run
    once and scored for both panels, mirroring how the paper derives
    both plots from the same runs.
    """
    # Flatten the (case, 1/lambda) grid into independent cells so the
    # active executor can fan every simulation out at once.
    cells = fig2_cells(interarrivals, n_packets, seed, flow_id)
    return fig2_tables(cells, sweep(cells, fig2_cell))


def figure2_mse(
    interarrivals: Sequence[float] = PAPER_INTERARRIVALS,
    n_packets: int = PAPER_N_PACKETS,
    seed: int = 0,
) -> ExperimentTable:
    """Figure 2(a) only."""
    mse_table, _ = figure2(interarrivals, n_packets, seed)
    return mse_table


def figure2_latency(
    interarrivals: Sequence[float] = PAPER_INTERARRIVALS,
    n_packets: int = PAPER_N_PACKETS,
    seed: int = 0,
) -> ExperimentTable:
    """Figure 2(b) only."""
    _, latency_table = figure2(interarrivals, n_packets, seed)
    return latency_table
