"""Per-flow privacy: how path length buys temporal privacy.

The paper reports results "for the flow S1 to the sink" (h = 15).
But the topology carries four flows with hop counts 9-22, and both the
delay variance (h/mu^2 for unlimited buffers) and the preemption bias
accumulate *per hop* -- so deeper sources should enjoy more temporal
privacy from the same mechanism.  This experiment scores every flow
and verifies the ordering, a deployment-relevant observation (assets
near the sink are the poorly protected ones).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.sweep import sweep
from repro.experiments.common import build_adversary, run_paper_case, score_flow

__all__ = ["PerFlowRow", "per_flow_privacy"]

#: hop counts of the four paper flows, by flow id.
FLOW_HOPS = {1: 15, 2: 22, 3: 9, 4: 11}


@dataclass(frozen=True)
class PerFlowRow:
    """Privacy and performance of one of the four paper flows."""

    flow_id: int
    label: str
    hop_count: int
    mse: float
    mean_latency: float


def per_flow_privacy(
    interarrival: float = 2.0,
    case: str = "rcad",
    n_packets: int = 500,
    seed: int = 0,
) -> list[PerFlowRow]:
    """Score all four flows of one run, sorted by hop count."""
    result = run_paper_case(
        interarrival=interarrival, case=case, n_packets=n_packets, seed=seed
    )
    labels = {1: "S1", 2: "S2", 3: "S3", 4: "S4"}

    def score_one(flow_id: int) -> PerFlowRow:
        metrics = score_flow(result, build_adversary("baseline", case), flow_id)
        return PerFlowRow(
            flow_id=flow_id,
            label=labels[flow_id],
            hop_count=FLOW_HOPS[flow_id],
            mse=metrics.mse,
            mean_latency=metrics.latency.mean,
        )

    rows = sweep(list(FLOW_HOPS), score_one)
    rows.sort(key=lambda row: row.hop_count)
    return rows
