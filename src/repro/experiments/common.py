"""Shared constants and helpers for the paper's evaluation (§5.2).

The constants are the paper's stated simulation parameters; the helpers
run one evaluation case and score it with a chosen adversary, which is
the unit of work every figure driver sweeps.
"""

from __future__ import annotations

from typing import Literal

from repro.core.adversary import (
    AdaptiveAdversary,
    Adversary,
    BaselineAdversary,
    FlowKnowledge,
    NaiveAdversary,
)
from repro.core.metrics import FlowMetrics, summarize_flow
from repro.runtime.context import run_simulation
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

__all__ = [
    "PAPER_INTERARRIVALS",
    "PAPER_MEAN_DELAY",
    "PAPER_BUFFER_CAPACITY",
    "PAPER_N_PACKETS",
    "PAPER_N_SOURCES",
    "PAPER_TX_DELAY",
    "PAPER_PREEMPTION_THRESHOLD",
    "paper_flow_knowledge",
    "build_adversary",
    "run_paper_case",
    "score_flow",
]

#: 1/lambda sweep: "we varied 1/lambda from 2 ... to 20" (§5.2).
PAPER_INTERARRIVALS: tuple[float, ...] = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20)
#: 1/mu: "unless mentioned otherwise we took 1/mu = 30 time units".
PAPER_MEAN_DELAY: float = 30.0
#: k: "each node can buffer 10 packets ... Mica-2 motes".
PAPER_BUFFER_CAPACITY: int = 10
#: packets per source: "a total of 1000 packets".
PAPER_N_PACKETS: int = 1000
#: four sources S1..S4.
PAPER_N_SOURCES: int = 4
#: tau: "a constant transmission delay (i.e. 1 time unit)".
PAPER_TX_DELAY: float = 1.0
#: the adaptive adversary's Erlang-loss switching threshold (§5.4).
PAPER_PREEMPTION_THRESHOLD: float = 0.1

Case = Literal["no-delay", "unlimited", "rcad"]
AdversaryKind = Literal["naive", "baseline", "adaptive"]


def paper_flow_knowledge(case: Case) -> FlowKnowledge:
    """The deployment knowledge an adversary holds for a given case."""
    return FlowKnowledge(
        transmission_delay=PAPER_TX_DELAY,
        mean_delay_per_hop=0.0 if case == "no-delay" else PAPER_MEAN_DELAY,
        buffer_capacity=PAPER_BUFFER_CAPACITY if case == "rcad" else None,
        n_sources=PAPER_N_SOURCES,
    )


def build_adversary(kind: AdversaryKind, case: Case) -> Adversary:
    """Instantiate the requested adversary for the requested case.

    ``"baseline"`` against the no-delay case degenerates to the naive
    estimator (the advertised mean delay is zero), matching the paper's
    case-1 evaluation.
    """
    knowledge = paper_flow_knowledge(case)
    if kind == "naive" or (kind == "baseline" and case == "no-delay"):
        return NaiveAdversary(knowledge)
    if kind == "baseline":
        return BaselineAdversary(knowledge)
    if kind == "adaptive":
        if case != "rcad":
            raise ValueError("the adaptive adversary targets the RCAD case")
        return AdaptiveAdversary(
            knowledge, preemption_threshold=PAPER_PREEMPTION_THRESHOLD
        )
    raise ValueError(f"unknown adversary kind {kind!r}")


def run_paper_case(
    interarrival: float,
    case: Case,
    n_packets: int = PAPER_N_PACKETS,
    seed: int = 0,
    traffic: str = "periodic",
) -> SimulationResult:
    """Simulate one evaluation case at one traffic load.

    ``traffic="poisson"`` swaps the paper's periodic sources for
    Poisson sources at the same mean rate -- the regime the Section 4
    queueing predictions (and the telemetry acceptance checks) assume.
    """
    config = SimulationConfig.paper_baseline(
        interarrival=interarrival,
        case=case,
        n_packets=n_packets,
        mean_delay=PAPER_MEAN_DELAY,
        buffer_capacity=PAPER_BUFFER_CAPACITY,
        seed=seed,
        traffic=traffic,  # type: ignore[arg-type]
    )
    return run_simulation(config)


def score_flow(
    result: SimulationResult,
    adversary: Adversary,
    flow_id: int = 1,
) -> FlowMetrics:
    """Run an adversary over a result and score one flow.

    The adversary is fed the *full interleaved arrival stream* (it
    observes every flow at the sink, which the adaptive adversary
    exploits to estimate the aggregate rate), but it is scored on the
    requested flow only -- flow S1 in the paper's reported results.
    """
    adversary.reset()
    estimates = adversary.estimate_all(result.observations)
    indices = result.flow_indices(flow_id)
    if not indices:
        raise ValueError(f"no delivered packets for flow {flow_id}")
    flow_estimates = [estimates[i] for i in indices]
    flow_records = [result.records[i] for i in indices]
    return summarize_flow(flow_records, flow_estimates)
