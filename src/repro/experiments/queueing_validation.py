"""Section 4 validation: queue formulas against discrete-event runs.

Three checks tying the analytic queueing layer to the DES engine:

* :func:`mm_infinity_validation` -- simulated M/M/infinity occupancy
  vs the Poisson(rho) closed form (mean and full distribution);
* :func:`erlang_loss_validation` -- simulated M/M/k/k blocking vs the
  Erlang loss formula, swept across loads;
* :func:`tree_occupancy_validation` -- per-node time-averaged buffer
  occupancy of the *full WSN simulator* (Poisson sources, infinite
  buffers) vs the :class:`~repro.queueing.tandem.QueueTreeModel`
  prediction rho_i = lambda_i / mu_i along S1's path, validating the
  superposition/Burke composition on the real topology.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.records import ExperimentSeries, ExperimentTable
from repro.core.planner import UniformPlanner
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.queueing.erlang import erlang_b
from repro.queueing.mminf import MMInfinityQueue
from repro.queueing.simq import SimulatedMMInfinity, SimulatedMMkk
from repro.queueing.tandem import QueueTreeModel
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PoissonTraffic

__all__ = [
    "mm_infinity_validation",
    "erlang_loss_validation",
    "tree_occupancy_validation",
]


def mm_infinity_validation(
    arrival_rate: float = 0.5,
    service_rate: float = 1.0 / 30.0,
    horizon: float = 60_000.0,
    seed: int = 0,
) -> dict[str, float]:
    """Simulated vs analytic M/M/infinity occupancy.

    Returns the analytic and simulated means plus the total-variation
    distance between the simulated occupancy distribution and the
    Poisson(rho) law.
    """
    analytic = MMInfinityQueue(arrival_rate=arrival_rate, service_rate=service_rate)
    simulated = SimulatedMMInfinity(
        arrival_rate=arrival_rate, service_rate=service_rate, seed=seed
    ).run(horizon=horizon)
    sim_dist = simulated["occupancy_distribution"]
    support = range(0, max(sim_dist) + 20 if sim_dist else 20)
    tv_distance = 0.5 * sum(
        abs(sim_dist.get(k, 0.0) - analytic.occupancy_pmf(k)) for k in support
    )
    return {
        "analytic_mean": analytic.mean_occupancy,
        "simulated_mean": simulated["mean_occupancy"],
        "analytic_sojourn": analytic.mean_sojourn,
        "simulated_sojourn": simulated["mean_sojourn"],
        "tv_distance": float(tv_distance),
    }


def erlang_loss_validation(
    offered_loads: tuple[float, ...] = (2.0, 5.0, 10.0, 15.0, 25.0),
    capacity: int = 10,
    service_rate: float = 1.0 / 30.0,
    horizon: float = 60_000.0,
    seed: int = 0,
) -> ExperimentTable:
    """Simulated M/M/k/k blocking vs Erlang loss across loads."""
    analytic = []
    simulated = []
    for rho in offered_loads:
        arrival_rate = rho * service_rate
        analytic.append(erlang_b(rho, capacity))
        run = SimulatedMMkk(
            arrival_rate=arrival_rate,
            service_rate=service_rate,
            capacity=capacity,
            seed=seed,
        ).run(horizon=horizon)
        simulated.append(run["blocking_probability"])
    table = ExperimentTable(
        title=f"Eq. (5) Erlang loss validation, k={capacity}",
        x_label="offered load rho",
        y_label="blocking probability",
    )
    table.add(ExperimentSeries("Erlang B (analytic)", list(offered_loads), analytic))
    table.add(ExperimentSeries("M/M/k/k simulation", list(offered_loads), simulated))
    return table


def tree_occupancy_validation(
    interarrival: float = 10.0,
    mean_delay: float = 30.0,
    n_packets: int = 2000,
    seed: int = 0,
) -> ExperimentTable:
    """WSN-simulator node occupancy vs QueueTreeModel along S1's path.

    Runs the paper topology with *Poisson* sources (so the analytic
    model applies exactly) and infinite buffers, then compares each
    trunk node's time-averaged occupancy with rho_i = lambda_i / mu.
    The match validates superposition + Burke composition end-to-end
    on the very simulator that produces Figures 2-3.
    """
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    rate = 1.0 / interarrival
    sources = {
        label: deployment.node_for_label(label) for label in ("S1", "S2", "S3", "S4")
    }
    flows = [
        FlowSpec(
            flow_id=i + 1,
            source=source,
            traffic=PoissonTraffic(rate=rate),
            n_packets=n_packets,
        )
        for i, source in enumerate(sources.values())
    ]
    plan = UniformPlanner(mean_delay).plan(tree, {f.source: rate for f in flows})
    config = SimulationConfig(
        deployment=deployment,
        tree=tree,
        flows=flows,
        delay_plan=plan,
        buffers=BufferSpec(kind="infinite"),
        seed=seed,
    )
    result = SensorNetworkSimulator(config).run()

    model = QueueTreeModel(
        parent=dict(tree.parent),
        injection_rates={source: rate for source in sources.values()},
        default_service_rate=1.0 / mean_delay,
    )
    s1_path = tree.path(sources["S1"])[:-1]
    hop_positions = [float(i) for i in range(len(s1_path))]
    predicted = [model.mean_occupancy(node) for node in s1_path]
    # The simulator's time average includes the idle warm-up/drain
    # tails; restrict to the busy window by scaling with the fraction
    # of time the node was actually receiving traffic.
    measured = []
    busy_fraction = _busy_fraction(result, n_packets, rate)
    for node in s1_path:
        stats = result.node_stats.get(node)
        measured.append(stats.mean_occupancy / busy_fraction if stats else 0.0)
    table = ExperimentTable(
        title=(
            "Section 4 tree model vs WSN simulator, S1 path "
            f"(1/lambda={interarrival:g}, 1/mu={mean_delay:g})"
        ),
        x_label="hop index (0 = S1)",
        y_label="mean buffer occupancy",
    )
    table.add(ExperimentSeries("QueueTreeModel rho_i", hop_positions, predicted))
    table.add(ExperimentSeries("simulated occupancy", hop_positions, measured))
    return table


def _busy_fraction(result, n_packets: int, rate: float) -> float:
    """Fraction of the run during which sources were still injecting."""
    injection_span = n_packets / rate
    return min(injection_span / result.end_time, 1.0) if result.end_time > 0 else 1.0
