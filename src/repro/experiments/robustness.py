"""Robustness extensions: lossy links and replication statistics.

Two questions a reviewer would ask of the Figure 2 results:

* **Do the conclusions survive radio loss?**  The paper's PHY model is
  lossless; real links are not.  :func:`link_loss_robustness` sweeps
  an i.i.d. per-hop loss probability and reports delivery, privacy and
  latency.  Loss thins the traffic that reaches the congested trunk,
  which *reduces* preemption -- so packet loss actually erodes RCAD's
  privacy boost (delays drift back toward the advertised law the
  adversary knows).
* **Is one seed representative?**  :func:`figure2_replicated` reruns
  the Figure 2 headline cells across seeds and reports Student-t
  confidence intervals, using the :mod:`repro.analysis` machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import SummaryStats, summarize
from repro.analysis.sweep import sweep
from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_MEAN_DELAY,
    PAPER_N_PACKETS,
    build_adversary,
    score_flow,
)
from repro.runtime.context import run_simulation
from repro.sim.config import SimulationConfig

__all__ = [
    "LinkLossRow",
    "link_loss_robustness",
    "Figure2Cell",
    "figure2_replicated",
]


@dataclass(frozen=True)
class LinkLossRow:
    """RCAD under one per-hop loss probability."""

    loss_probability: float
    delivered_fraction: float
    lost_in_transit: int
    mse: float
    mean_latency: float
    preemptions: int


def link_loss_robustness(
    loss_probabilities: tuple[float, ...] = (0.0, 0.02, 0.05, 0.1),
    interarrival: float = 2.0,
    n_packets: int = 500,
    seed: int = 0,
    flow_id: int = 1,
) -> list[LinkLossRow]:
    """Sweep per-hop link loss under the RCAD configuration."""

    def run_loss(loss: float) -> LinkLossRow:
        config = SimulationConfig.paper_baseline(
            interarrival=interarrival,
            case="rcad",
            n_packets=n_packets,
            mean_delay=PAPER_MEAN_DELAY,
            buffer_capacity=PAPER_BUFFER_CAPACITY,
            seed=seed,
        )
        config.link_loss_probability = float(loss)
        result = run_simulation(config)
        delivered = result.delivered_count(flow_id)
        if delivered == 0:
            raise RuntimeError(
                f"no flow-{flow_id} packets survived loss={loss}; "
                "lower the loss probability"
            )
        metrics = score_flow(result, build_adversary("baseline", "rcad"), flow_id)
        return LinkLossRow(
            loss_probability=float(loss),
            delivered_fraction=delivered / n_packets,
            lost_in_transit=result.lost_in_transit,
            mse=metrics.mse,
            mean_latency=metrics.latency.mean,
            preemptions=result.total_preemptions(),
        )

    return sweep(list(loss_probabilities), run_loss)


@dataclass(frozen=True)
class Figure2Cell:
    """One replicated Figure 2 cell: metric +/- confidence interval."""

    case: str
    interarrival: float
    mse: SummaryStats
    latency: SummaryStats


def figure2_replicated(
    interarrival: float = 2.0,
    cases: tuple[str, ...] = ("unlimited", "rcad"),
    n_replications: int = 5,
    n_packets: int = PAPER_N_PACKETS,
    base_seed: int = 100,
    flow_id: int = 1,
) -> list[Figure2Cell]:
    """Figure 2's headline cells with seed-replication statistics."""
    if n_replications < 2:
        raise ValueError("need at least 2 replications for an interval")
    # Replications are swept as pure (case, seed) -> (mse, latency)
    # cells -- no side effects in the worker function, so the sweep is
    # safe to fan out over processes.
    grid = [
        (case, base_seed + i) for case in cases for i in range(n_replications)
    ]

    def one(cell: tuple[str, int]) -> tuple[float, float]:
        case, seed = cell
        config = SimulationConfig.paper_baseline(
            interarrival=interarrival,
            case=case,
            n_packets=n_packets,
            seed=seed,
        )
        result = run_simulation(config)
        metrics = score_flow(result, build_adversary("baseline", case), flow_id)
        return metrics.mse, metrics.latency.mean

    scores = dict(zip(grid, sweep(grid, one)))
    cells = []
    for case in cases:
        pairs = [scores[(case, base_seed + i)] for i in range(n_replications)]
        cells.append(
            Figure2Cell(
                case=case,
                interarrival=interarrival,
                mse=summarize([mse for mse, _ in pairs]),
                latency=summarize([lat for _, lat in pairs]),
            )
        )
    return cells
