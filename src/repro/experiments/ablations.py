"""Ablations of the design choices the paper (and DESIGN.md) call out.

* :func:`victim_policy_ablation` -- RCAD preempts the packet with the
  shortest remaining delay "so the resulting delay times ... are the
  closest to the original distribution" (§5).  We swap in the
  alternatives and measure MSE, latency, and how far the realized
  end-to-end artificial delays drift from the intended Erlang shape;
* :func:`delay_allocation_ablation` -- §3.3 suggests shifting delay
  away from the congested near-sink trunk; we compare the uniform,
  sink-weighted and Erlang-target planners on buffer load and privacy;
* :func:`drop_vs_preempt_ablation` -- §4's drop-tail alternative vs
  RCAD's preemption at equal capacity: RCAD should deliver every
  packet while drop-tail loses a load-dependent fraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as scipy_stats

from repro.core.adversary import BaselineAdversary, FlowKnowledge
from repro.core.optimizer import VarianceOptimalPlanner
from repro.core.planner import (
    DelayPlanner,
    ErlangTargetPlanner,
    SinkWeightedPlanner,
    UniformPlanner,
)
from repro.core.victim import (
    LongestRemainingDelay,
    NewestArrival,
    OldestArrival,
    RandomVictim,
    ShortestRemainingDelay,
    VictimPolicy,
)
from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_MEAN_DELAY,
    PAPER_TX_DELAY,
    build_adversary,
    score_flow,
)
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.simulator import SensorNetworkSimulator
from repro.traffic.generators import PeriodicTraffic

__all__ = [
    "VictimAblationRow",
    "victim_policy_ablation",
    "PlannerAblationRow",
    "delay_allocation_ablation",
    "DropVsPreemptRow",
    "drop_vs_preempt_ablation",
    "DEFAULT_VICTIM_POLICIES",
]

DEFAULT_VICTIM_POLICIES: tuple[VictimPolicy, ...] = (
    ShortestRemainingDelay(),
    LongestRemainingDelay(),
    RandomVictim(),
    OldestArrival(),
    NewestArrival(),
)


@dataclass(frozen=True)
class VictimAblationRow:
    """One victim policy's outcome."""

    policy: str
    mse: float
    mean_latency: float
    preemptions: int
    delay_shape_distance: float
    """Kolmogorov-Smirnov distance between the realized end-to-end
    artificial delays and the intended Erlang(h, mu) distribution;
    smaller = closer to the advertised delay process."""


def victim_policy_ablation(
    interarrival: float = 2.0,
    policies: Sequence[VictimPolicy] = DEFAULT_VICTIM_POLICIES,
    n_packets: int = 500,
    seed: int = 0,
    flow_id: int = 1,
) -> list[VictimAblationRow]:
    """Compare RCAD victim policies at one (high) traffic load."""
    rows = []
    for policy in policies:
        config = SimulationConfig.paper_baseline(
            interarrival=interarrival,
            case="rcad",
            n_packets=n_packets,
            victim_policy=policy,
            seed=seed,
        )
        result = SensorNetworkSimulator(config).run()
        metrics = score_flow(result, build_adversary("baseline", "rcad"), flow_id)
        records = result.flow_records(flow_id)
        hop_count = records[0].hop_count
        artificial = np.array(
            [r.latency - hop_count * PAPER_TX_DELAY for r in records]
        )
        # Intended shape: sum of h Exp(mu) delays = Erlang(h, mu).
        ks = scipy_stats.kstest(
            artificial,
            scipy_stats.gamma(a=hop_count, scale=PAPER_MEAN_DELAY).cdf,
        )
        rows.append(
            VictimAblationRow(
                policy=policy.name,
                mse=metrics.mse,
                mean_latency=metrics.latency.mean,
                preemptions=result.total_preemptions(),
                delay_shape_distance=float(ks.statistic),
            )
        )
    return rows


@dataclass(frozen=True)
class PlannerAblationRow:
    """One delay-allocation planner's outcome."""

    planner: str
    mse: float
    mean_latency: float
    max_node_mean_occupancy: float
    """Worst per-node time-averaged buffer load under *infinite*
    buffers: the §3.3/§4 resource metric the planners trade against
    privacy."""
    total_mean_occupancy: float


def delay_allocation_ablation(
    interarrival: float = 4.0,
    n_packets: int = 500,
    seed: int = 0,
    flow_id: int = 1,
) -> list[PlannerAblationRow]:
    """Uniform vs sink-weighted vs Erlang-target delay allocation.

    Runs each planner with infinite buffers (so occupancy reflects the
    plan, not preemption) and scores privacy with a baseline adversary
    that knows each plan's *per-flow mean path delay* -- the fair
    Kerckhoff adversary for non-uniform plans.
    """
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    labels = ("S1", "S2", "S3", "S4")
    sources = [deployment.node_for_label(label) for label in labels]
    rate = 1.0 / interarrival
    flows = [
        FlowSpec(
            flow_id=i + 1,
            source=source,
            traffic=PeriodicTraffic(interval=interarrival, phase=interarrival * (i + 1) / 4),
            n_packets=n_packets,
        )
        for i, source in enumerate(sources)
    ]
    flow_rates = {source: rate for source in sources}
    scored_source = sources[flow_id - 1]
    planners: dict[str, DelayPlanner] = {
        "uniform": UniformPlanner(PAPER_MEAN_DELAY),
        "sink-weighted": SinkWeightedPlanner(PAPER_MEAN_DELAY, exponent=1.0),
        "erlang-target": ErlangTargetPlanner(
            buffer_capacity=PAPER_BUFFER_CAPACITY,
            target_loss=0.1,
            max_mean_delay=8 * PAPER_MEAN_DELAY,
        ),
        # The §3.2/§3.3 optimum: same latency budget as uniform for the
        # scored flow, buffer caps enforced via the Erlang loss target.
        "variance-optimal": VarianceOptimalPlanner(
            source=scored_source,
            latency_budget=tree.hop_count(scored_source) * PAPER_MEAN_DELAY,
            buffer_capacity=PAPER_BUFFER_CAPACITY,
            target_loss=0.1,
            fallback_mean_delay=PAPER_MEAN_DELAY,
        ),
    }
    rows = []
    for name, planner in planners.items():
        plan = planner.plan(tree, flow_rates)
        config = SimulationConfig(
            deployment=deployment,
            tree=tree,
            flows=flows,
            delay_plan=plan,
            buffers=BufferSpec(kind="infinite"),
            seed=seed,
        )
        result = SensorNetworkSimulator(config).run()
        source = sources[flow_id - 1]
        # Fair adversary: knows this plan's mean total path delay.
        mean_path_delay = plan.mean_path_delay(tree, source)
        hops = tree.hop_count(source)
        adversary = BaselineAdversary(
            FlowKnowledge(
                transmission_delay=PAPER_TX_DELAY,
                mean_delay_per_hop=mean_path_delay / hops,
                buffer_capacity=None,
                n_sources=len(labels),
            )
        )
        metrics = score_flow(result, adversary, flow_id)
        occupancies = [s.mean_occupancy for s in result.node_stats.values()]
        rows.append(
            PlannerAblationRow(
                planner=name,
                mse=metrics.mse,
                mean_latency=metrics.latency.mean,
                max_node_mean_occupancy=max(occupancies) if occupancies else 0.0,
                total_mean_occupancy=float(sum(occupancies)),
            )
        )
    return rows


@dataclass(frozen=True)
class DropVsPreemptRow:
    """Drop-tail vs RCAD at one traffic load."""

    interarrival: float
    rcad_delivered: int
    rcad_mse: float
    droptail_delivered: int
    droptail_drop_fraction: float
    droptail_mse: float


def drop_vs_preempt_ablation(
    interarrivals: Sequence[float] = (2.0, 4.0, 8.0, 16.0),
    n_packets: int = 400,
    seed: int = 0,
    flow_id: int = 1,
) -> list[DropVsPreemptRow]:
    """RCAD preemption vs plain M/M/k/k dropping at equal capacity."""
    rows = []
    offered = n_packets  # per flow
    for interarrival in interarrivals:
        results = {}
        for kind in ("rcad", "drop-tail"):
            config = SimulationConfig.paper_baseline(
                interarrival=interarrival,
                case="rcad",
                n_packets=n_packets,
                seed=seed,
            )
            if kind == "drop-tail":
                config.buffers = BufferSpec(
                    kind="drop-tail", capacity=PAPER_BUFFER_CAPACITY
                )
            result = SensorNetworkSimulator(config).run()
            metrics = score_flow(result, build_adversary("baseline", "rcad"), flow_id)
            results[kind] = (result, metrics)
        rcad_result, rcad_metrics = results["rcad"]
        drop_result, drop_metrics = results["drop-tail"]
        rows.append(
            DropVsPreemptRow(
                interarrival=interarrival,
                rcad_delivered=rcad_result.delivered_count(flow_id),
                rcad_mse=rcad_metrics.mse,
                droptail_delivered=drop_result.delivered_count(flow_id),
                droptail_drop_fraction=(
                    1.0 - drop_result.delivered_count(flow_id) / offered
                ),
                droptail_mse=drop_metrics.mse,
            )
        )
    return rows
