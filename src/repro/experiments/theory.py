"""Section 3 validation: the information-theoretic bounds, empirically.

Three executable checks of the paper's theory:

* :func:`validate_bits_through_queues` -- Equation (4): for a
  Poisson(lambda) source with Exp(mu) delays, the empirical
  I(X_j; Z_j) (Kraskov estimator over many process realizations) must
  sit below ``ln(1 + j mu / lambda)`` for every packet index j;
* :func:`validate_epi_bound` -- Equation (2): for Gaussian X and
  exponential or Gaussian Y, empirical I(X; X+Y) must sit above the
  entropy-power-inequality floor (and match the closed form exactly in
  the all-Gaussian case);
* :func:`delay_distribution_comparison` -- the max-entropy argument
  for exponential delays: at equal mean delay, exponential leaks the
  least information among {exponential, uniform, constant}.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.records import ExperimentSeries, ExperimentTable
from repro.core.delays import ConstantDelay, ExponentialDelay, UniformDelay
from repro.infotheory.bounds import bits_through_queues_bound, epi_lower_bound
from repro.infotheory.entropy import (
    exponential_entropy,
    gaussian_entropy,
    gaussian_mutual_information,
)
from repro.infotheory.estimators import ksg_mutual_information

__all__ = [
    "validate_bits_through_queues",
    "validate_epi_bound",
    "delay_distribution_comparison",
]


def validate_bits_through_queues(
    creation_rate: float = 0.5,
    delay_rate: float = 1.0 / 30.0,
    packet_indices: tuple[int, ...] = (1, 2, 5, 10, 20),
    n_realizations: int = 4000,
    seed: int = 0,
) -> ExperimentTable:
    """Empirical I(X_j; Z_j) against the Equation (4) bound.

    Draws ``n_realizations`` independent realizations of the creation
    process; for each requested packet index j, X_j is the j-th Poisson
    arrival (j-stage Erlangian) and Z_j = X_j + Exp(1/delay_rate).
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    indices = sorted(packet_indices)
    max_index = indices[-1]
    gaps = rng.exponential(1.0 / creation_rate, size=(n_realizations, max_index))
    creation_times = np.cumsum(gaps, axis=1)
    delays = rng.exponential(1.0 / delay_rate, size=(n_realizations, max_index))
    arrivals = creation_times + delays

    empirical = []
    bounds = []
    for j in indices:
        empirical.append(
            ksg_mutual_information(creation_times[:, j - 1], arrivals[:, j - 1])
        )
        bounds.append(bits_through_queues_bound(j, creation_rate, delay_rate))
    table = ExperimentTable(
        title=(
            "Eq. (4) bits-through-queues: "
            f"lambda={creation_rate:g}, mu={delay_rate:g}"
        ),
        x_label="packet index j",
        y_label="mutual information (nats)",
    )
    table.add(ExperimentSeries("empirical I(Xj;Zj)", [float(j) for j in indices], empirical))
    table.add(ExperimentSeries("ln(1 + j*mu/lambda)", [float(j) for j in indices], bounds))
    return table


def validate_epi_bound(
    signal_std: float = 10.0,
    delay_means: tuple[float, ...] = (5.0, 15.0, 30.0, 60.0),
    n_samples: int = 8000,
    seed: int = 0,
) -> ExperimentTable:
    """Empirical I(X; X+Y) against the Equation (2) EPI floor.

    X is Gaussian (entropy known exactly); Y is exponential with the
    swept mean.  For reference the table also carries the all-Gaussian
    closed form ``0.5 ln(1 + var_X / var_Y)`` at matched variance,
    which upper-bounds the exponential case's floor gap intuitively.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    x = rng.normal(0.0, signal_std, size=n_samples)
    empirical = []
    floors = []
    gaussian_reference = []
    for mean_delay in delay_means:
        y = rng.exponential(mean_delay, size=n_samples)
        z = x + y
        empirical.append(ksg_mutual_information(x, z))
        floors.append(
            epi_lower_bound(
                gaussian_entropy(signal_std**2),
                exponential_entropy(1.0 / mean_delay),
            )
        )
        gaussian_reference.append(
            gaussian_mutual_information(signal_std**2, mean_delay**2)
        )
    table = ExperimentTable(
        title=f"Eq. (2) EPI lower bound: X ~ N(0, {signal_std:g}^2), Y ~ Exp",
        x_label="mean delay",
        y_label="mutual information (nats)",
    )
    table.add(ExperimentSeries("empirical I(X;Z)", list(delay_means), empirical))
    table.add(ExperimentSeries("EPI lower bound", list(delay_means), floors))
    table.add(
        ExperimentSeries("Gaussian-Y closed form", list(delay_means), gaussian_reference)
    )
    return table


def delay_distribution_comparison(
    mean_delay: float = 30.0,
    signal_std: float = 10.0,
    n_samples: int = 8000,
    seed: int = 0,
) -> dict[str, float]:
    """Leakage I(X; X+Y) per delay family at equal mean delay.

    Exponential should leak the least and constant the most (a
    deployment-aware adversary subtracts a constant exactly); this is
    the executable version of the paper's max-entropy motivation.
    Returns {family name: empirical MI in nats}.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    x = rng.normal(0.0, signal_std, size=n_samples)
    families = {
        "exponential": ExponentialDelay.from_mean(mean_delay),
        "uniform": UniformDelay.from_mean(mean_delay),
        "constant": ConstantDelay(mean_delay),
    }
    leakage = {}
    for name, distribution in families.items():
        y = np.array([distribution.sample(rng) for _ in range(n_samples)])
        leakage[name] = ksg_mutual_information(x, x + y)
    return leakage
