"""Reproduction drivers: one module per paper figure or analysis.

* :mod:`repro.experiments.fig1` -- the evaluation topology (Figure 1),
* :mod:`repro.experiments.fig2` -- adversary MSE and delivery latency
  vs traffic load for the three evaluation cases (Figures 2(a), 2(b)),
* :mod:`repro.experiments.fig3` -- baseline vs adaptive adversary
  under RCAD (Figure 3),
* :mod:`repro.experiments.theory` -- the Section 3 information bounds
  validated against empirical mutual information,
* :mod:`repro.experiments.queueing_validation` -- the Section 4 queue
  formulas validated against discrete-event simulation,
* :mod:`repro.experiments.ablations` -- the design choices DESIGN.md
  calls out (victim policy, delay allocation, drop vs preempt),
* :mod:`repro.experiments.mix_comparison` -- the Section 6 mix designs
  at equal mean latency (extension),
* :mod:`repro.experiments.distribution_adversary` -- EM reconstruction
  of the creation-time distribution, paper ref [1] (extension),
* :mod:`repro.experiments.bayes_attack` -- the EM prior chained into a
  per-packet posterior-mean estimator (extension),
* :mod:`repro.experiments.asset_tracking` -- the Section 1-2 motivating
  scenario: temporal ambiguity as spatial ambiguity (extension),
* :mod:`repro.experiments.per_flow` -- privacy across the four paper
  flows: path length is the multiplier (extension),
* :mod:`repro.experiments.sensitivity` -- workload, buffer-size and
  1/mu sweeps (extension),
* :mod:`repro.experiments.robustness` -- lossy links and seed
  -replication confidence intervals (extension).

Every driver returns :class:`~repro.analysis.records.ExperimentTable`
objects (or plain dicts for scalar checks) that the benchmark suite
prints; none of them writes files or needs network access.
"""

from repro.experiments.common import (
    PAPER_BUFFER_CAPACITY,
    PAPER_INTERARRIVALS,
    PAPER_MEAN_DELAY,
    PAPER_N_PACKETS,
    PAPER_N_SOURCES,
    PAPER_TX_DELAY,
    build_adversary,
    paper_flow_knowledge,
    run_paper_case,
)
from repro.experiments.fig1 import topology_summary
from repro.experiments.fig2 import figure2, figure2_latency, figure2_mse
from repro.experiments.fig3 import figure3

__all__ = [
    "PAPER_INTERARRIVALS",
    "PAPER_MEAN_DELAY",
    "PAPER_BUFFER_CAPACITY",
    "PAPER_N_PACKETS",
    "PAPER_N_SOURCES",
    "PAPER_TX_DELAY",
    "paper_flow_knowledge",
    "build_adversary",
    "run_paper_case",
    "topology_summary",
    "figure2",
    "figure2_mse",
    "figure2_latency",
    "figure3",
]
