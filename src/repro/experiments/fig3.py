"""Figure 3: the adaptive adversary against RCAD.

RCAD defeats the baseline adversary because preemption silently
shortens delays the adversary still models at full length.  The §5.4
adaptive adversary watches the sink's aggregate traffic rate, computes
the Erlang-loss probability, and -- above a 0.1 threshold -- switches
its per-hop delay estimate from 1/mu to n k / lambda_tot.

Expected shape (paper Figure 3): at low traffic (large 1/lambda) the
two adversaries coincide; at high traffic the adaptive adversary's MSE
is far below the baseline's, but remains well above zero -- RCAD
degrades gracefully rather than collapsing.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.records import ExperimentSeries, ExperimentTable
from repro.analysis.sweep import sweep
from repro.core.adversary import Adversary, PathAwareAdaptiveAdversary
from repro.experiments.common import (
    PAPER_INTERARRIVALS,
    PAPER_MEAN_DELAY,
    PAPER_N_PACKETS,
    build_adversary,
    paper_flow_knowledge,
    run_paper_case,
    score_flow,
)
from repro.net.routing import greedy_grid_tree
from repro.net.topology import paper_topology
from repro.queueing.tandem import QueueTreeModel

__all__ = ["ADVERSARY_LABELS", "figure3", "paper_path_aware_adversary"]

#: The paper's legend labels, keyed by adversary kind.
ADVERSARY_LABELS: dict[str, str] = {
    "baseline": "BaselineAdversary",
    "adaptive": "AdaptiveAdversary",
}

#: Label of the extension series (not in the paper's figure).
PATH_AWARE_LABEL = "PathAware(ext)"


def paper_path_aware_adversary(interarrival: float) -> Adversary:
    """The extension adversary, armed with the Figure 1 tree's rates."""
    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    sources = [deployment.node_for_label(s) for s in ("S1", "S2", "S3", "S4")]
    model = QueueTreeModel(
        parent=dict(tree.parent),
        injection_rates={s: 1.0 / interarrival for s in sources},
        default_service_rate=1.0 / PAPER_MEAN_DELAY,
    )
    return PathAwareAdaptiveAdversary(
        knowledge=paper_flow_knowledge("rcad"),
        path_rates={
            s: [model.arrival_rate(n) for n in tree.path(s)[:-1]] for s in sources
        },
    )


def figure3(
    interarrivals: Sequence[float] = PAPER_INTERARRIVALS,
    n_packets: int = PAPER_N_PACKETS,
    seed: int = 0,
    flow_id: int = 1,
    include_path_aware: bool = False,
) -> ExperimentTable:
    """Regenerate Figure 3: MSE vs 1/lambda for both adversaries.

    Each RCAD simulation is run once per load and scored by every
    adversary over the identical observation stream, exactly the
    comparison the paper draws.  With ``include_path_aware`` a third
    series adds this library's extension adversary (per-hop saturation
    modelling from full routing-tree knowledge) as an upper bound on
    adversarial capability.
    """
    table = ExperimentTable(
        title="Figure 3: baseline vs adaptive adversary under RCAD, flow S1",
        x_label="1/lambda",
        y_label="mean square error",
    )
    labels = dict(ADVERSARY_LABELS)
    kinds = list(labels)
    if include_path_aware:
        kinds.append("path-aware")
        labels["path-aware"] = PATH_AWARE_LABEL

    def run_load(interarrival: float) -> dict[str, float]:
        result = run_paper_case(
            interarrival=interarrival, case="rcad", n_packets=n_packets, seed=seed
        )
        scores: dict[str, float] = {}
        for kind in kinds:
            if kind == "path-aware":
                adversary = paper_path_aware_adversary(interarrival)
            else:
                adversary = build_adversary(kind, "rcad")
            scores[kind] = score_flow(result, adversary, flow_id=flow_id).mse
        return scores

    per_load = sweep(list(interarrivals), run_load)
    for kind, label in labels.items():
        values = [scores[kind] for scores in per_load]
        table.add(ExperimentSeries(label, list(interarrivals), values))
    return table
