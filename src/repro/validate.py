"""Installation self-check: ``python -m repro.validate``.

Runs one fast end-to-end check per subsystem (seconds, not minutes)
and prints PASS/FAIL per line -- the smoke test to run right after
installing in a new environment, before committing to the full test
and benchmark suites.  Exit code 0 iff everything passed.
"""

from __future__ import annotations

import sys
import traceback
from typing import Callable

__all__ = ["CHECKS", "run_checks", "main"]


def _check_des_engine() -> None:
    from repro.des import Simulator

    sim = Simulator()
    seen: list[float] = []
    sim.schedule(2.0, lambda: seen.append(sim.now))
    sim.schedule(1.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.0, 2.0], seen


def _check_crypto() -> None:
    from repro.crypto import KeyManager, PayloadCodec, SensorReading
    from repro.crypto.speck import Speck64_128

    key = bytes([0x00, 0x01, 0x02, 0x03, 0x08, 0x09, 0x0A, 0x0B,
                 0x10, 0x11, 0x12, 0x13, 0x18, 0x19, 0x1A, 0x1B])
    ct = Speck64_128(key).encrypt_block(
        bytes([0x2D, 0x43, 0x75, 0x74, 0x74, 0x65, 0x72, 0x3B])
    )
    assert ct == bytes([0x8B, 0x02, 0x4E, 0x45, 0x48, 0xA5, 0x6F, 0x8C])
    codec = PayloadCodec(KeyManager(bytes(16)))
    reading = SensorReading(created_at=17.0, app_seq=1, value=2.5)
    assert codec.open(codec.seal(3, reading)) == reading


def _check_queueing() -> None:
    from repro.queueing import MMInfinityQueue, erlang_b

    assert abs(erlang_b(2.0, 4) - 2.0 / 21.0) < 1e-12
    queue = MMInfinityQueue(arrival_rate=0.5, service_rate=1 / 30)
    assert abs(queue.mean_occupancy - 15.0) < 1e-12


def _check_infotheory() -> None:
    import numpy as np

    from repro.infotheory import gaussian_mutual_information, ksg_mutual_information

    rng = np.random.Generator(np.random.PCG64(0))
    x = rng.normal(0.0, 2.0, size=1500)
    z = x + rng.normal(0.0, 1.0, size=1500)
    truth = gaussian_mutual_information(4.0, 1.0)
    assert abs(ksg_mutual_information(x, z) - truth) < 0.2


def _check_topology() -> None:
    from repro.net import greedy_grid_tree, paper_topology

    deployment = paper_topology()
    tree = greedy_grid_tree(deployment, width=12)
    hops = {
        label: tree.hop_count(deployment.node_for_label(label))
        for label in ("S1", "S2", "S3", "S4")
    }
    assert hops == {"S1": 15, "S2": 22, "S3": 9, "S4": 11}, hops


def _check_simulator_and_rcad() -> None:
    from repro.experiments.common import build_adversary, run_paper_case, score_flow

    result = run_paper_case(2.0, "rcad", n_packets=80, seed=0)
    assert result.delivered_count() == 4 * 80
    assert result.total_preemptions() > 0
    metrics = score_flow(result, build_adversary("baseline", "rcad"))
    assert metrics.mse > 1e4  # the privacy boost is visible even tiny


def _check_rcad_closed_form() -> None:
    from repro.queueing import RcadNodeModel

    node = RcadNodeModel(arrival_rate=2.0, service_rate=1 / 30, capacity=10)
    assert node.mean_delay < 30.0
    assert abs(node.mean_delay - node.saturated_drain_time()) < 1.0


CHECKS: dict[str, Callable[[], None]] = {
    "des engine (ordering, clock)": _check_des_engine,
    "crypto (Speck vector, sealed payloads)": _check_crypto,
    "queueing (Erlang-B, M/M/inf)": _check_queueing,
    "information theory (KSG vs Gaussian)": _check_infotheory,
    "Figure 1 topology (hop counts)": _check_topology,
    "WSN simulator + RCAD (tiny run)": _check_simulator_and_rcad,
    "RCAD closed form": _check_rcad_closed_form,
}


def run_checks(verbose: bool = True) -> dict[str, Exception | None]:
    """Run every check; returns {name: None or the exception}."""
    outcomes: dict[str, Exception | None] = {}
    for name, check in CHECKS.items():
        try:
            check()
        except Exception as error:  # noqa: BLE001 - report, don't crash
            outcomes[name] = error
            if verbose:
                print(f"FAIL  {name}")
                traceback.print_exception(error, limit=2, file=sys.stdout)
        else:
            outcomes[name] = None
            if verbose:
                print(f"PASS  {name}")
    return outcomes


def main() -> int:
    """Entry point; returns the exit code."""
    print("repro self-check\n")
    outcomes = run_checks(verbose=True)
    failures = sum(1 for error in outcomes.values() if error is not None)
    print(
        f"\n{len(outcomes) - failures}/{len(outcomes)} subsystems healthy"
        + ("" if failures == 0 else f"; {failures} FAILED")
    )
    return 0 if failures == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
