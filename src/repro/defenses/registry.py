"""The pluggable defense-strategy registry.

A *defense* is everything a temporal-privacy countermeasure decides
about a run: the per-node artificial delay plan, the buffer discipline,
and (for routing-layer defenses) the per-packet forwarding policy.
:class:`Defense` is the protocol; :class:`DefenseRegistry` maps short
names to parameterized factories so scenario specs -- and the
``repro scenarios`` CLI -- can select defenses declaratively.

The paper's three evaluation cases are registered under ``no-delay``,
``infinite`` and ``rcad`` (plus the §4 loss alternative ``drop-tail``);
a registry-built ``rcad`` entry at the paper's parameters materializes
a configuration bit-identical to
:meth:`repro.sim.config.SimulationConfig.paper_baseline` -- the golden
observable digests pin that equivalence.  Beyond the paper:

* ``phantom`` -- phantom routing (random-walk prefix, then the tree)
  over RCAD buffers: a routing-layer defense in the spirit of the SLP
  literature.  Fastpath-ineligible by construction (it sets a routing
  policy), so it transparently runs on the event engine;
* ``proportional-delay`` -- the Section 3.3 decomposition: more delay
  far from the sink via :class:`~repro.core.planner.SinkWeightedPlanner`
  at an unchanged per-flow privacy budget;
* ``jittered-delay`` -- uniform (bounded-support) per-hop delay at the
  same mean, the low-variance alternative to the exponential sampler.
"""

from __future__ import annotations

import abc
import inspect
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.core.delays import UniformDelay
from repro.core.planner import DelayPlan, SinkWeightedPlanner, UniformPlanner
from repro.core.victim import (
    LongestRemainingDelay,
    NewestArrival,
    OldestArrival,
    RandomVictim,
    ShortestRemainingDelay,
    VictimPolicy,
)
from repro.location.policies import PhantomRoutingPolicy, RoutingPolicy
from repro.net.routing import RoutingTree
from repro.net.topology import Deployment
from repro.sim.config import BufferSpec

__all__ = [
    "DefenseContext",
    "DefenseMaterialization",
    "Defense",
    "UnknownDefenseError",
    "DefenseRegistry",
    "DEFENSES",
]

#: Victim policies a defense spec can name.  ``"shortest-remaining"``
#: maps to None so the materialized BufferSpec is field-for-field equal
#: to the paper baseline's (which leaves the default policy implicit).
_VICTIM_POLICIES: dict[str, Callable[[], VictimPolicy] | None] = {
    ShortestRemainingDelay.name: None,
    LongestRemainingDelay.name: LongestRemainingDelay,
    RandomVictim.name: RandomVictim,
    OldestArrival.name: OldestArrival,
    NewestArrival.name: NewestArrival,
}


def _victim_policy(name: str) -> VictimPolicy | None:
    try:
        factory = _VICTIM_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown victim policy {name!r}; available: "
            f"{sorted(_VICTIM_POLICIES)}"
        )
    return None if factory is None else factory()


@dataclass(frozen=True)
class DefenseContext:
    """What a defense may look at while materializing.

    ``flow_rates`` maps source node id -> mean packet creation rate
    (what the delay planners consume); ``capacity`` / ``per_node_capacity``
    are the scenario's buffer-hardware model, which bounded defenses
    adopt and unbounded ones ignore.
    """

    deployment: Deployment
    tree: RoutingTree
    flow_rates: Mapping[int, float]
    capacity: int = 10
    per_node_capacity: Mapping[int, int] | None = None


@dataclass(frozen=True)
class DefenseMaterialization:
    """A defense's concrete contribution to a SimulationConfig."""

    delay_plan: DelayPlan | None
    buffers: BufferSpec
    routing_policy: RoutingPolicy | None = None


class Defense(abc.ABC):
    """Protocol every registered defense implements."""

    #: registry name; set by each concrete defense.
    name: str = "abstract"

    @abc.abstractmethod
    def materialize(self, context: DefenseContext) -> DefenseMaterialization:
        """Build the delay plan / buffers / routing policy for a run."""

    @property
    def advertised_mean_delay(self) -> float:
        """Per-hop mean delay the adversary is assumed to know (1/mu)."""
        return 0.0

    def advertised_capacity(self, context: DefenseContext) -> int | None:
        """Buffer capacity the adversary is assumed to know (k)."""
        return None


class UnknownDefenseError(KeyError):
    """Lookup of a defense name that is not registered.

    The message lists every available entry, so a typo in a scenario
    spec is a one-glance fix.
    """

    def __init__(self, name: str, available: list[str]) -> None:
        self.name = name
        self.available = available
        super().__init__(
            f"unknown defense {name!r}; available: {', '.join(available)}"
        )

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.args[0]


class DefenseRegistry:
    """Named, parameterized defense factories."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[..., Defense]] = {}
        self._descriptions: dict[str, str] = {}

    def register(
        self, name: str, factory: Callable[..., Defense], description: str
    ) -> None:
        if name in self._factories:
            raise ValueError(f"defense {name!r} is already registered")
        self._factories[name] = factory
        self._descriptions[name] = description

    def names(self) -> list[str]:
        return sorted(self._factories)

    def describe(self) -> dict[str, str]:
        """name -> one-line description, for ``--list-defenses``."""
        return {name: self._descriptions[name] for name in self.names()}

    def signature(self, name: str) -> str:
        """The factory's parameter list, rendered for help output."""
        factory = self._factories.get(name)
        if factory is None:
            raise UnknownDefenseError(name, self.names())
        return str(inspect.signature(factory))

    def create(self, name: str, **params: object) -> Defense:
        try:
            factory = self._factories[name]
        except KeyError:
            raise UnknownDefenseError(name, self.names())
        try:
            return factory(**params)
        except TypeError as exc:
            raise ValueError(
                f"bad parameters for defense {name!r}: {exc}; expected "
                f"signature {name}{self.signature(name)}"
            )


# ----------------------------------------------------------------------
# Built-in defenses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NoDelayDefense(Defense):
    """Evaluation case 1: forward immediately, unbounded buffers."""

    name = "no-delay"

    def materialize(self, context: DefenseContext) -> DefenseMaterialization:
        return DefenseMaterialization(
            delay_plan=None, buffers=BufferSpec(kind="infinite")
        )


@dataclass(frozen=True)
class InfiniteBufferDefense(Defense):
    """Evaluation case 2: Exp(mu) delay at every hop, unbounded buffers."""

    name = "infinite"
    mean_delay: float = 30.0

    def __post_init__(self) -> None:
        if self.mean_delay <= 0:
            raise ValueError(
                f"mean delay must be positive, got {self.mean_delay}"
            )

    def materialize(self, context: DefenseContext) -> DefenseMaterialization:
        plan = UniformPlanner(self.mean_delay).plan(
            context.tree, context.flow_rates
        )
        return DefenseMaterialization(
            delay_plan=plan, buffers=BufferSpec(kind="infinite")
        )

    @property
    def advertised_mean_delay(self) -> float:
        return self.mean_delay


@dataclass(frozen=True)
class _BoundedDelayDefense(Defense):
    """Shared shape of the bounded-buffer exponential-delay defenses."""

    mean_delay: float = 30.0
    victim: str = ShortestRemainingDelay.name

    def __post_init__(self) -> None:
        if self.mean_delay <= 0:
            raise ValueError(
                f"mean delay must be positive, got {self.mean_delay}"
            )
        _victim_policy(self.victim)  # validate the name eagerly

    def _buffers(self, context: DefenseContext, kind: str) -> BufferSpec:
        return BufferSpec(
            kind=kind,
            capacity=context.capacity,
            victim_policy=(
                _victim_policy(self.victim) if kind == "rcad" else None
            ),
            per_node_capacity=context.per_node_capacity,
        )

    @property
    def advertised_mean_delay(self) -> float:
        return self.mean_delay

    def advertised_capacity(self, context: DefenseContext) -> int | None:
        return context.capacity


@dataclass(frozen=True)
class DropTailDefense(_BoundedDelayDefense):
    """Exp(mu) delay over bounded buffers that drop when full (§4)."""

    name = "drop-tail"

    def materialize(self, context: DefenseContext) -> DefenseMaterialization:
        plan = UniformPlanner(self.mean_delay).plan(
            context.tree, context.flow_rates
        )
        return DefenseMaterialization(
            delay_plan=plan, buffers=self._buffers(context, "drop-tail")
        )


@dataclass(frozen=True)
class RcadDefense(_BoundedDelayDefense):
    """Evaluation case 3: RCAD preemptive buffers under Exp(mu) delay."""

    name = "rcad"

    def materialize(self, context: DefenseContext) -> DefenseMaterialization:
        plan = UniformPlanner(self.mean_delay).plan(
            context.tree, context.flow_rates
        )
        return DefenseMaterialization(
            delay_plan=plan, buffers=self._buffers(context, "rcad")
        )


@dataclass(frozen=True)
class PhantomDefense(_BoundedDelayDefense):
    """Phantom routing over RCAD: a routing-layer defense entrant.

    Each packet walks ``walk_length`` random radio hops (avoiding the
    sink) before joining the convergecast tree, on top of the temporal
    defense (Exp(mu) delay, RCAD buffers).  The walk decorrelates the
    observed hop count from the true source depth, attacking the
    adversary's ``h * (tau + 1/mu)`` correction at its root.
    """

    name = "phantom"
    walk_length: int = 4

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.walk_length < 1:
            raise ValueError(
                f"walk length must be at least 1, got {self.walk_length} "
                "(0 is plain rcad)"
            )

    def materialize(self, context: DefenseContext) -> DefenseMaterialization:
        plan = UniformPlanner(self.mean_delay).plan(
            context.tree, context.flow_rates
        )
        return DefenseMaterialization(
            delay_plan=plan,
            buffers=self._buffers(context, "rcad"),
            routing_policy=PhantomRoutingPolicy(
                tree=context.tree,
                deployment=context.deployment,
                walk_length=self.walk_length,
            ),
        )


@dataclass(frozen=True)
class ProportionalDelayDefense(_BoundedDelayDefense):
    """Sink-weighted delay decomposition (Section 3.3) over RCAD.

    Deeper nodes inject proportionally more delay (depth ** exponent),
    normalized so the deepest flow keeps the uniform planner's total
    path-delay budget -- privacy preserved, near-sink congestion
    relieved.
    """

    name = "proportional-delay"
    exponent: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.exponent < 0:
            raise ValueError(
                f"exponent must be non-negative, got {self.exponent}"
            )

    def materialize(self, context: DefenseContext) -> DefenseMaterialization:
        plan = SinkWeightedPlanner(
            reference_mean_delay=self.mean_delay, exponent=self.exponent
        ).plan(context.tree, context.flow_rates)
        return DefenseMaterialization(
            delay_plan=plan, buffers=self._buffers(context, "rcad")
        )


@dataclass(frozen=True)
class JitteredDelayDefense(_BoundedDelayDefense):
    """Uniform[0, 2/mu] per-hop delay over RCAD: same mean, bounded tail.

    The low-variance buffer variant: worst-case latency is capped at
    twice the mean per hop, trading some per-hop entropy for a hard
    delay bound -- the knob a latency-sensitive deployment would turn.
    """

    name = "jittered-delay"

    def materialize(self, context: DefenseContext) -> DefenseMaterialization:
        plan = DelayPlan(
            per_node={}, default=UniformDelay.from_mean(self.mean_delay)
        )
        return DefenseMaterialization(
            delay_plan=plan, buffers=self._buffers(context, "rcad")
        )


#: The process-wide registry with every built-in entry registered.
DEFENSES = DefenseRegistry()
DEFENSES.register(
    "no-delay", NoDelayDefense,
    "no artificial delay, unbounded buffers (paper case 1)",
)
DEFENSES.register(
    "infinite", InfiniteBufferDefense,
    "Exp(mu) per-hop delay, unbounded buffers (paper case 2)",
)
DEFENSES.register(
    "drop-tail", DropTailDefense,
    "Exp(mu) per-hop delay, bounded buffers dropping when full (§4)",
)
DEFENSES.register(
    "rcad", RcadDefense,
    "Exp(mu) per-hop delay, RCAD preemptive buffers (paper case 3)",
)
DEFENSES.register(
    "phantom", PhantomDefense,
    "random-walk routing prefix over RCAD (routing-layer defense)",
)
DEFENSES.register(
    "proportional-delay", ProportionalDelayDefense,
    "sink-weighted delay decomposition over RCAD (Section 3.3)",
)
DEFENSES.register(
    "jittered-delay", JitteredDelayDefense,
    "Uniform[0, 2/mu] per-hop delay over RCAD (bounded-tail variant)",
)
