"""Pluggable defense strategies behind one registry.

``DEFENSES`` holds the named entries (``no-delay`` / ``infinite`` /
``drop-tail`` / ``rcad`` / ``phantom`` / ``proportional-delay`` /
``jittered-delay``); scenario specs select them by name with keyword
parameters.  See :mod:`repro.defenses.registry`.
"""

from repro.defenses.registry import (
    DEFENSES,
    Defense,
    DefenseContext,
    DefenseMaterialization,
    DefenseRegistry,
    DropTailDefense,
    InfiniteBufferDefense,
    JitteredDelayDefense,
    NoDelayDefense,
    PhantomDefense,
    ProportionalDelayDefense,
    RcadDefense,
    UnknownDefenseError,
)

__all__ = [
    "DEFENSES",
    "Defense",
    "DefenseContext",
    "DefenseMaterialization",
    "DefenseRegistry",
    "UnknownDefenseError",
    "NoDelayDefense",
    "InfiniteBufferDefense",
    "DropTailDefense",
    "RcadDefense",
    "PhantomDefense",
    "ProportionalDelayDefense",
    "JitteredDelayDefense",
]
