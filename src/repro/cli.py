"""Command-line interface: ``python -m repro <command>``.

Every paper artifact can be regenerated from the shell without writing
code.  Commands:

* ``fig1`` -- print the Figure 1 topology facts;
* ``fig2`` -- regenerate Figure 2(a) (MSE) and 2(b) (latency) tables;
* ``fig3`` -- regenerate the Figure 3 adversary comparison;
* ``run``  -- one simulation of a chosen case at a chosen load, scored
  by a chosen adversary;
* ``chaos`` -- the fault-injection sweep: delivery, privacy, latency
  and retransmission overhead vs fault intensity, drop-tail vs RCAD;
* ``scenarios`` -- expand a declarative scenario suite (JSON: topology
  family x source placement x traffic mix x buffer model x registry
  defenses x seeds) into a matrix run on the parallel runtime and
  print per-cell privacy/latency/delivery summaries;
  ``--example`` prints a ready-to-run suite, ``--list-defenses`` the
  defense registry;
* ``theory`` -- the Section 3 bound validations;
* ``queueing`` -- the Section 4 closed-form validations;
* ``metrics`` -- summarize a telemetry run manifest (``--series`` /
  ``--chart`` inspect the recorded time series);
* ``cache`` -- inspect and heal the on-disk result cache
  (``stats`` / ``verify`` / ``purge`` / ``prune --max-bytes N
  --compact-journals``);
* ``sweep-fabric`` -- run the Figure 2 grid through the distributed
  sweep fabric: a coordinator shards the cells into leased work units,
  forks ``--workers`` local worker processes (external ``repro
  worker`` processes may join), steals work from crashed workers, and
  merges results bit-identical to a serial ``repro fig2`` run;
  ``--listen HOST:PORT`` additionally serves the fabric over TCP for
  workers without the shared directory mounted;
* ``worker`` -- join a running (or upcoming) ``sweep-fabric``
  coordinator from another shell or host, pointed at its fabric
  directory and/or ``--connect HOST:PORT``; sharing a ``--cache-dir``
  across workers deduplicates simulations between them;
* ``serve`` -- run the streaming temporal-privacy service against a
  closed-loop load generator: sharded delay buffers, the tiered
  degradation ladder, Prometheus ``/metrics`` plus ``/healthz`` and
  ``/readyz`` probes, crash-safe snapshots (SIGTERM persists every
  buffered event; the next ``serve --snapshot`` restores them) and
  clean drain on SIGINT or end of load.  ``serve --bench`` runs the
  two-phase service benchmark instead and prints the
  ``BENCH_service.json`` payload.

Common options: ``--packets`` (default 1000, the paper's size; use a
smaller value for a fast look), ``--seed``, and for ``fig2``/``fig3``
``--interarrivals`` as comma-separated values.

Simulation commands also accept the runtime options ``--jobs N``
(process-pool parallelism; results are bit-identical to serial; 0
means one worker per CPU), ``--cache-dir PATH`` and ``--no-cache``
(the on-disk result cache is on by default; a cache-stats line is
printed after the command), plus the resilience options ``--retries``,
``--item-timeout``, ``--quarantine`` and ``--resume`` (see
EXPERIMENTS.md "Fault-tolerant sweeps").  An interrupted sweep
(SIGINT) flushes its checkpoint journal and prints the ``--resume``
command that skips the already-completed cells.

``--telemetry`` instruments every simulation the command runs (buffer
occupancy series, latency histograms, engine counters) and writes a
run manifest plus a JSONL series file under ``--telemetry-dir``
(default ``<cache-dir>/telemetry``); ``repro metrics`` reads them
back.  Telemetry changes the cached-result identity, so instrumented
and plain runs never collide in the cache.  Cache hits re-publish the
stored run's telemetry; journal-``--resume``d cells bypass the
simulator entirely and are not re-instrumented (the manifest records
0 runs for them).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

__all__ = ["main", "build_parser"]


#: commands that run simulations and therefore take runtime options.
_SIMULATION_COMMANDS = ("fig2", "fig3", "run", "chaos", "scenarios", "sweep-fabric")


def _add_runtime_options(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (default 1 = serial; "
        "0 = one per CPU; results are bit-identical at any N)",
    )
    sub.add_argument(
        "--no-cache", action="store_true",
        help="bypass the on-disk result cache (neither read nor write)",
    )
    sub.add_argument(
        "--cache-dir", type=str, default=None, metavar="PATH",
        help="result cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/results)",
    )
    sub.add_argument(
        "--retries", type=int, default=0, metavar="K",
        help="retry a failing/hung sweep cell up to K extra times with "
        "exponential backoff (default 0 = fail fast)",
    )
    sub.add_argument(
        "--item-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock timeout; a hung worker is killed and "
        "the cell retried/quarantined (parallel runs only)",
    )
    sub.add_argument(
        "--quarantine", action="store_true",
        help="complete the sweep even when cells fail permanently: "
        "failed cells are quarantined and listed in a failure report "
        "instead of aborting the run",
    )
    sub.add_argument(
        "--resume", action="store_true",
        help="resume from the checkpoint journal: cells completed by an "
        "earlier (possibly interrupted) run are not recomputed",
    )
    sub.add_argument(
        "--telemetry", action="store_true",
        help="instrument the simulations (occupancy series, latency "
        "histograms, engine counters) and emit a run manifest + metric "
        "series next to the result cache; inspect with 'repro metrics'",
    )
    sub.add_argument(
        "--telemetry-dir", type=str, default=None, metavar="PATH",
        help="where to write the manifest/series artifacts "
        "(default: <cache-dir>/telemetry)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``repro`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Temporal Privacy in Wireless Sensor Networks' "
            "(ICDCS 2007): regenerate the paper's figures and analyses."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("fig1", help="print the Figure 1 topology facts")

    for name, help_text in (
        ("fig2", "regenerate Figure 2(a) MSE and 2(b) latency tables"),
        ("fig3", "regenerate the Figure 3 adversary comparison"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument(
            "--packets", type=int, default=1000,
            help="packets per source (paper: 1000)",
        )
        sub.add_argument("--seed", type=int, default=0, help="root random seed")
        sub.add_argument(
            "--interarrivals", type=str, default="2,4,6,8,10,12,14,16,18,20",
            help="comma-separated 1/lambda sweep values",
        )
        sub.add_argument(
            "--chart", action="store_true",
            help="also draw ASCII bar charts of the series",
        )
        sub.add_argument(
            "--csv", type=str, default=None, metavar="PATH",
            help="also write the series as CSV to PATH "
                 "(fig2 writes PATH and PATH.latency.csv)",
        )
        sub.add_argument(
            "--json", type=str, default=None, metavar="PATH",
            help="also write the series as JSON to PATH "
                 "(fig2 writes PATH and PATH.latency.json)",
        )
        if name == "fig3":
            sub.add_argument(
                "--path-aware", action="store_true",
                help="include the extension path-aware adversary series",
            )
        _add_runtime_options(sub)

    run = commands.add_parser(
        "run", help="one simulation at one load, scored by one adversary"
    )
    run.add_argument(
        "--case", choices=("no-delay", "unlimited", "rcad"), default="rcad"
    )
    run.add_argument(
        "--adversary", choices=("naive", "baseline", "adaptive"), default="baseline"
    )
    run.add_argument("--interarrival", type=float, default=2.0)
    run.add_argument("--packets", type=int, default=1000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--flow", type=int, default=1, help="flow id to score (1..4)")
    run.add_argument(
        "--traffic", choices=("periodic", "poisson"), default="periodic",
        help="source traffic model (default: the paper's periodic sources; "
        "poisson matches the Section 4 queueing predictions)",
    )
    _add_runtime_options(run)

    chaos = commands.add_parser(
        "chaos",
        help="fault-injection sweep: drop-tail vs RCAD under bursty loss, "
        "jitter, duplication, crashes and ARQ",
    )
    chaos.add_argument(
        "--packets", type=int, default=300,
        help="packets per source (smaller than the paper's 1000: the sweep "
        "runs many cells)",
    )
    chaos.add_argument("--seed", type=int, default=0, help="root random seed")
    chaos.add_argument(
        "--intensities", type=str, default="0,0.25,0.5,1.0",
        help="comma-separated fault intensity values in [0, 1]",
    )
    chaos.add_argument(
        "--interarrival", type=float, default=2.0, help="1/lambda of every source"
    )
    chaos.add_argument(
        "--no-arq", action="store_true",
        help="skip the ARQ-enabled half of the sweep",
    )
    _add_runtime_options(chaos)

    scenarios = commands.add_parser(
        "scenarios",
        help="expand a scenario suite file into a (defense x seed) "
        "matrix run with per-cell privacy/latency/delivery summaries",
    )
    scenarios.add_argument(
        "spec", nargs="?", default=None,
        help="scenario suite JSON file (start from 'repro scenarios "
        "--example > suite.json'); not needed with --example / "
        "--list-defenses",
    )
    scenarios.add_argument(
        "--example", action="store_true",
        help="print the built-in example suite (3 topology families x "
        "5 registry defenses) as JSON and exit",
    )
    scenarios.add_argument(
        "--list-defenses", action="store_true",
        help="list the defense registry entries with their parameter "
        "signatures and exit",
    )
    scenarios.add_argument(
        "--scenario", type=str, default=None, metavar="NAME",
        help="run only the named scenario of the suite",
    )
    scenarios.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the per-cell summaries as JSON to PATH",
    )
    _add_runtime_options(scenarios)

    for name, help_text in (
        ("theory", "Section 3 information-bound validations"),
        ("queueing", "Section 4 queueing validations"),
    ):
        sub = commands.add_parser(name, help=help_text)
        sub.add_argument(
            "--fast", action="store_true",
            help="reduced sample sizes / horizons for a quick look",
        )

    metrics = commands.add_parser(
        "metrics", help="summarize a telemetry run manifest and its series"
    )
    metrics.add_argument(
        "path", nargs="?", default=None,
        help="manifest file or telemetry directory (default: the newest "
        "manifest under the default cache's telemetry directory)",
    )
    metrics.add_argument(
        "--run", type=str, default=None, metavar="KEY",
        help="run fingerprint (prefix accepted) to inspect; default: "
        "the manifest's first run",
    )
    metrics.add_argument(
        "--series", type=str, default=None, metavar="NAME",
        help="print one named time series of the selected run as "
        "'time value' lines",
    )
    metrics.add_argument(
        "--chart", action="store_true",
        help="draw occupancy-vs-time and preemption-rate-vs-time charts "
        "for the selected run",
    )
    metrics.add_argument(
        "--node", type=int, default=None, metavar="N",
        help="restrict --chart occupancy to one node id",
    )

    serve = commands.add_parser(
        "serve",
        help="run the streaming temporal-privacy service with a "
        "closed-loop load generator",
    )
    serve.add_argument(
        "--shards", type=int, default=4, help="independent buffer shards"
    )
    serve.add_argument(
        "--capacity", type=int, default=64, help="buffer slots per shard"
    )
    serve.add_argument(
        "--max-buffered", type=int, default=256,
        help="global bound on buffered events; beyond it arrivals are shed",
    )
    serve.add_argument(
        "--mean-delay", type=float, default=0.05,
        help="mean exponential added delay in seconds",
    )
    serve.add_argument("--seed", type=int, default=0, help="root random seed")
    serve.add_argument(
        "--rate", type=float, default=500.0, help="mean offered events/second"
    )
    serve.add_argument(
        "--flows", type=int, default=8, help="synthetic flow ids to round-robin"
    )
    serve.add_argument(
        "--events", type=int, default=1000,
        help="events to generate (0 = no load: restore a snapshot and drain)",
    )
    serve.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="generate rate*duration events instead of --events",
    )
    serve.add_argument(
        "--burst-factor", type=float, default=1.0,
        help="1 = steady Poisson arrivals; >1 = Markov on/off bursts at "
        "rate*burst-factor during ON periods (same mean rate)",
    )
    serve.add_argument(
        "--port", type=int, default=0,
        help="metrics/health HTTP port (0 = ephemeral, printed at start; "
        "-1 = no HTTP endpoint)",
    )
    serve.add_argument(
        "--snapshot", type=str, default=None, metavar="PATH",
        help="crash-safe snapshot file: SIGTERM persists buffered events "
        "here, the next serve restores them",
    )
    serve.add_argument(
        "--report", type=str, default=None, metavar="PATH",
        help="write a JSON run report (outcomes, releases, stats) to PATH",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=60.0, metavar="SECONDS",
        help="max wall time to wait for buffers to empty on drain",
    )
    serve.add_argument(
        "--bench", action="store_true",
        help="run the two-phase service benchmark (steady + overload) and "
        "print the BENCH_service.json payload",
    )

    fabric = commands.add_parser(
        "sweep-fabric",
        help="run the Figure 2 grid through the distributed sweep "
        "fabric (lease-based coordinator + worker processes)",
    )
    fabric.add_argument(
        "--packets", type=int, default=1000,
        help="packets per source (paper: 1000)",
    )
    fabric.add_argument("--seed", type=int, default=0, help="root random seed")
    fabric.add_argument(
        "--interarrivals", type=str, default="2,4,6,8,10,12,14,16,18,20",
        help="comma-separated 1/lambda sweep values",
    )
    fabric.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="local worker processes the coordinator forks (default 2; "
        "0 = rely on externally joined 'repro worker' processes, with "
        "in-process serial completion as the fallback)",
    )
    fabric.add_argument(
        "--lease-ttl", type=float, default=30.0, metavar="SECONDS",
        help="heartbeat silence after which a worker's leases expire "
        "and its cells are stolen (default 30)",
    )
    fabric.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help="worker heartbeat renewal period (default lease-ttl / 3; "
        "must be below --lease-ttl)",
    )
    fabric.add_argument(
        "--fabric-dir", type=str, default=None, metavar="PATH",
        help="shared fabric state directory (default: "
        "<cache-dir>/fabric/<sweep-id>); external workers point "
        "'repro worker' here",
    )
    fabric.add_argument(
        "--listen", type=str, default=None, metavar="HOST:PORT",
        help="also serve the fabric over TCP on HOST:PORT (port 0 = "
        "ephemeral); remote workers join with "
        "'repro worker --connect HOST:PORT'",
    )
    fabric.add_argument(
        "--chart", action="store_true",
        help="also draw ASCII bar charts of the series",
    )
    fabric.add_argument(
        "--csv", type=str, default=None, metavar="PATH",
        help="also write the series as CSV to PATH "
             "(writes PATH and PATH.latency.csv)",
    )
    fabric.add_argument(
        "--json", type=str, default=None, metavar="PATH",
        help="also write the series as JSON to PATH "
             "(writes PATH and PATH.latency.json)",
    )
    _add_runtime_options(fabric)

    worker = commands.add_parser(
        "worker",
        help="join a sweep-fabric run as an external worker process",
    )
    worker.add_argument(
        "fabric_dir", nargs="?", default=None,
        help="the coordinator's fabric directory (printed by, and "
        "settable with, 'repro sweep-fabric --fabric-dir'); optional "
        "when --connect is given",
    )
    worker.add_argument(
        "--connect", type=str, default=None, metavar="HOST:PORT",
        help="join over TCP instead of (or in addition to) a shared "
        "fabric directory; with both, the directory is the fallback "
        "if the transport is lost",
    )
    worker.add_argument(
        "--worker-id", type=str, default=None, metavar="ID",
        help="unique worker id (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--heartbeat-interval", type=float, default=None, metavar="SECONDS",
        help="heartbeat renewal period (default: the grid's setting)",
    )
    worker.add_argument(
        "--cache-dir", type=str, default=None, metavar="PATH",
        help="result cache to read/write (default: the grid's setting; "
        "sharing one directory across workers deduplicates work)",
    )

    cache = commands.add_parser(
        "cache", help="inspect and heal the on-disk result cache"
    )
    cache.add_argument(
        "--cache-dir", type=str, default=None, metavar="PATH",
        help="cache location (default: $REPRO_CACHE_DIR or "
        "~/.cache/repro/results)",
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_commands.add_parser(
        "stats", help="entry/quarantine/journal counts and byte totals"
    )
    cache_commands.add_parser(
        "verify",
        help="checksum every entry; corrupt files are moved to "
        "<dir>/quarantine, not deleted",
    )
    purge = cache_commands.add_parser(
        "purge", help="delete every entry, quarantined file and journal"
    )
    purge.add_argument(
        "--keep-quarantine", action="store_true",
        help="leave quarantined files in place for inspection",
    )
    prune = cache_commands.add_parser(
        "prune",
        help="evict oldest entries until the store fits a byte budget "
        "and/or compact the checkpoint journals",
    )
    prune.add_argument(
        "--max-bytes", type=int, default=None, metavar="N",
        help="target size of the entry store in bytes",
    )
    prune.add_argument(
        "--compact-journals", action="store_true",
        help="rewrite every sweep/fabric journal keeping only the last "
        "record per cell (drops superseded duplicates, lease/steal "
        "event lines and corrupt lines); do not run against a live "
        "sweep",
    )
    return parser


def _validate_runtime_options(args: argparse.Namespace) -> None:
    """Reject nonsensical runtime options up front.

    A negative ``--jobs`` / ``--retries`` / ``--item-timeout`` used to
    surface as a deep traceback from the executor or supervisor; fail
    fast with the same style of message ``_parse_sweep`` uses.
    """
    if args.jobs < 0:
        raise SystemExit(
            f"--jobs must be non-negative (0 = one per CPU), got {args.jobs}"
        )
    if args.retries < 0:
        raise SystemExit(f"--retries must be non-negative, got {args.retries}")
    if args.item_timeout is not None and args.item_timeout <= 0:
        raise SystemExit(
            f"--item-timeout must be a positive number of seconds, "
            f"got {args.item_timeout:g}"
        )


def _validate_fabric_options(args: argparse.Namespace) -> None:
    """Reject nonsensical fabric options before any process is forked."""
    if args.workers < 0:
        raise SystemExit(
            f"--workers must be non-negative (0 = external workers only), "
            f"got {args.workers}"
        )
    if args.lease_ttl <= 0:
        raise SystemExit(
            f"--lease-ttl must be a positive number of seconds, "
            f"got {args.lease_ttl:g}"
        )
    if args.heartbeat_interval is not None:
        if args.heartbeat_interval <= 0:
            raise SystemExit(
                f"--heartbeat-interval must be a positive number of "
                f"seconds, got {args.heartbeat_interval:g}"
            )
        if args.heartbeat_interval >= args.lease_ttl:
            raise SystemExit(
                f"--heartbeat-interval ({args.heartbeat_interval:g}s) must "
                f"be below --lease-ttl ({args.lease_ttl:g}s), or every "
                f"lease expires between renewals"
            )
    if args.listen is not None:
        from repro.runtime.transport import parse_endpoint

        try:
            parse_endpoint(args.listen, allow_port_zero=True)
        except ValueError as exc:
            raise SystemExit(f"invalid --listen endpoint: {exc}")


def _parse_sweep(raw: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"invalid --interarrivals value: {raw!r}")
    if not values or any(v <= 0 for v in values):
        raise SystemExit("--interarrivals needs positive comma-separated numbers")
    return values


def _cmd_fig1() -> None:
    from repro.experiments.fig1 import topology_summary

    print(topology_summary().render())


def _export(table, path: str | None, kind: str, suffix: str = "") -> None:
    if path is None:
        return
    target = path if not suffix else f"{path}.{suffix}.{kind}"
    text = table.to_csv() if kind == "csv" else table.to_json()
    with open(target, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {target}")


def _cmd_fig2(args: argparse.Namespace) -> None:
    from repro.experiments.fig2 import figure2

    mse, latency = figure2(
        interarrivals=_parse_sweep(args.interarrivals),
        n_packets=args.packets,
        seed=args.seed,
    )
    print(mse.render())
    print()
    print(latency.render())
    if args.chart:
        from repro.analysis.charts import render_chart

        print()
        print(render_chart(mse, log_scale=True))
        print()
        print(render_chart(latency))
    _export(mse, args.csv, "csv")
    _export(latency, args.csv, "csv", suffix="latency")
    _export(mse, args.json, "json")
    _export(latency, args.json, "json", suffix="latency")


def _cmd_fig3(args: argparse.Namespace) -> None:
    from repro.experiments.fig3 import figure3

    table = figure3(
        interarrivals=_parse_sweep(args.interarrivals),
        n_packets=args.packets,
        seed=args.seed,
        include_path_aware=args.path_aware,
    )
    print(table.render())
    if args.chart:
        from repro.analysis.charts import render_chart

        print()
        print(render_chart(table, log_scale=True))
    _export(table, args.csv, "csv")
    _export(table, args.json, "json")


def _cmd_sweep_fabric(args: argparse.Namespace) -> None:
    from repro.experiments.fig2 import fig2_cell, fig2_cells, fig2_tables
    from repro.runtime import FabricConfig, current_runtime
    from repro.runtime.fabric import FabricError, run_fabric

    cells = fig2_cells(
        _parse_sweep(args.interarrivals), n_packets=args.packets, seed=args.seed
    )
    context = current_runtime()
    config = FabricConfig(
        workers=args.workers,
        lease_ttl=args.lease_ttl,
        heartbeat_interval=args.heartbeat_interval,
        fabric_dir=args.fabric_dir,
        listen=args.listen,
    )
    try:
        results, report = run_fabric(
            fig2_cell, cells, config=config, label="fig2", retry=context.retry
        )
    except FabricError as exc:
        raise SystemExit(str(exc))
    if report.failed:
        print(report.render())
        raise SystemExit(
            f"{len(report.failed)} cells failed permanently; see the "
            f"journals under {report.fabric_dir}"
        )
    mse, latency = fig2_tables(cells, results)
    print(mse.render())
    print()
    print(latency.render())
    if args.chart:
        from repro.analysis.charts import render_chart

        print()
        print(render_chart(mse, log_scale=True))
        print()
        print(render_chart(latency))
    _export(mse, args.csv, "csv")
    _export(latency, args.csv, "csv", suffix="latency")
    _export(mse, args.json, "json")
    _export(latency, args.json, "json", suffix="latency")
    print()
    print(f"fabric dir: {report.fabric_dir}")
    print(report.render())


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.runtime.fabric import FabricError, FabricWorker
    from repro.runtime.transport import TransportError, parse_endpoint

    if args.heartbeat_interval is not None and args.heartbeat_interval <= 0:
        raise SystemExit(
            f"--heartbeat-interval must be a positive number of seconds, "
            f"got {args.heartbeat_interval:g}"
        )
    if args.connect is not None:
        try:
            parse_endpoint(args.connect)
        except ValueError as exc:
            raise SystemExit(f"invalid --connect endpoint: {exc}")
    if args.fabric_dir is None and args.connect is None:
        raise SystemExit(
            "worker needs a fabric directory, --connect HOST:PORT, or both"
        )
    try:
        worker = FabricWorker(
            args.fabric_dir,
            worker_id=args.worker_id,
            cache_dir=args.cache_dir,
            heartbeat_interval=args.heartbeat_interval,
            connect=args.connect,
        )
    except (FabricError, TransportError) as exc:
        raise SystemExit(str(exc))
    joined = args.connect if worker.fabric_dir is None else worker.fabric_dir
    print(
        f"worker {worker.worker_id} joined {joined} "
        f"({len(worker.items)} cells, lease ttl {worker.lease_ttl:g}s)",
        flush=True,
    )
    try:
        computed = worker.run()
    except KeyboardInterrupt:
        print(f"worker {worker.worker_id}: interrupted, leases will lapse")
        return 130
    except FabricError as exc:
        print(f"worker {worker.worker_id}: {exc}")
        return 1
    degraded = " (transport lost, finished via shared directory)" if (
        worker.transport_degraded
    ) else ""
    print(
        f"worker {worker.worker_id}: computed {computed} cells "
        f"({worker.steals} stolen from expired leases){degraded}"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> None:
    from repro.experiments.common import build_adversary, run_paper_case, score_flow

    result = run_paper_case(
        interarrival=args.interarrival,
        case=args.case,
        n_packets=args.packets,
        seed=args.seed,
        traffic=args.traffic,
    )
    metrics = score_flow(
        result, build_adversary(args.adversary, args.case), flow_id=args.flow
    )
    print(f"case            : {args.case}")
    print(f"traffic         : {args.traffic}")
    print(f"adversary       : {args.adversary}")
    print(f"1/lambda        : {args.interarrival:g}")
    print(f"flow            : {args.flow} ({metrics.n_packets} packets)")
    print(f"adversary MSE   : {metrics.mse:,.1f}")
    print(f"adversary RMSE  : {metrics.rmse:,.2f}")
    print(f"mean latency    : {metrics.latency.mean:.2f}")
    print(f"p95 latency     : {metrics.latency.p95:.2f}")
    print(f"preemptions     : {result.total_preemptions()}")
    print(f"drops           : {result.drop_count()}")


def _parse_intensities(raw: str) -> tuple[float, ...]:
    try:
        values = tuple(float(part) for part in raw.split(",") if part.strip())
    except ValueError:
        raise SystemExit(f"invalid --intensities value: {raw!r}")
    if not values or any(not 0.0 <= v <= 1.0 for v in values):
        raise SystemExit("--intensities needs comma-separated values in [0, 1]")
    return values


def _cmd_chaos(args: argparse.Namespace) -> None:
    from repro.experiments.chaos import chaos_sweep, render_chaos_rows

    rows = chaos_sweep(
        intensities=_parse_intensities(args.intensities),
        arq_modes=(False,) if args.no_arq else (False, True),
        interarrival=args.interarrival,
        n_packets=args.packets,
        seed=args.seed,
    )
    print(render_chaos_rows(rows))


def _cmd_scenarios_info(args: argparse.Namespace) -> int:
    """--example / --list-defenses: informational, no runtime needed."""
    import json

    if args.example:
        from repro.scenarios import example_suite, suite_to_dict

        print(json.dumps(suite_to_dict(example_suite()), indent=2))
        return 0
    from repro.defenses import DEFENSES

    for name in DEFENSES.names():
        print(f"{name}{DEFENSES.signature(name)}")
        print(f"    {DEFENSES.describe()[name]}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> None:
    import json

    from repro.scenarios import (
        load_suite,
        render_summaries,
        run_suite,
        summaries_to_dict,
    )

    if args.spec is None:
        raise SystemExit(
            "scenarios needs a suite file (generate one with "
            "'repro scenarios --example > suite.json')"
        )
    try:
        specs = load_suite(args.spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc))
    if args.scenario is not None:
        specs = [spec for spec in specs if spec.name == args.scenario]
        if not specs:
            raise SystemExit(
                f"no scenario named {args.scenario!r} in {args.spec}"
            )
    summaries = run_suite(specs)
    print(render_summaries(summaries))
    if args.json is not None:
        payload = summaries_to_dict(summaries)
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")


def _cmd_theory(fast: bool) -> None:
    from repro.experiments.theory import (
        delay_distribution_comparison,
        validate_bits_through_queues,
        validate_epi_bound,
    )

    n_realizations = 1200 if fast else 4000
    n_samples = 2500 if fast else 8000
    print(validate_bits_through_queues(n_realizations=n_realizations).render())
    print()
    print(validate_epi_bound(n_samples=n_samples).render())
    print()
    print("# delay families at equal mean (nats of leakage)")
    for family, value in sorted(
        delay_distribution_comparison(n_samples=n_samples).items(),
        key=lambda kv: kv[1],
    ):
        print(f"  {family:>12}: {value:.3f}")


def _cmd_queueing(fast: bool) -> None:
    from repro.experiments.queueing_validation import (
        erlang_loss_validation,
        mm_infinity_validation,
        tree_occupancy_validation,
    )

    horizon = 10_000.0 if fast else 60_000.0
    n_packets = 800 if fast else 2000
    report = mm_infinity_validation(horizon=horizon)
    print("# M/M/inf validation (lambda=0.5, 1/mu=30)")
    for key, value in report.items():
        print(f"  {key:>18}: {value:10.4f}")
    print()
    print(erlang_loss_validation(horizon=horizon).render())
    print()
    print(tree_occupancy_validation(n_packets=n_packets).render())


def _resolve_manifest(path_arg: str | None):
    from pathlib import Path

    from repro.runtime import default_cache_dir
    from repro.telemetry import latest_manifest

    if path_arg is None:
        path = latest_manifest(Path(default_cache_dir()) / "telemetry")
        if path is None:
            raise SystemExit(
                "no telemetry manifests found; run a simulation command "
                "with --telemetry first (or pass a manifest path)"
            )
        return path
    path = Path(path_arg)
    if path.is_dir():
        found = latest_manifest(path)
        if found is None:
            raise SystemExit(f"no *.manifest.json under {path}")
        return found
    if not path.is_file():
        raise SystemExit(f"no such manifest: {path}")
    return path


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.telemetry import load_manifest, load_series

    manifest_path = _resolve_manifest(args.path)
    manifest = load_manifest(manifest_path)
    print(f"manifest        : {manifest_path}")
    print(f"command         : {manifest['command']}")
    print(f"git describe    : {manifest['git_describe']}")
    print(f"wall time       : {manifest['wall_time_seconds']:.2f}s")
    print(f"simulations     : {manifest['runtime']['simulations']} "
          f"({manifest['runtime']['sim_seconds']:.2f}s simulated wall, "
          f"{manifest['runtime']['jobs']} jobs)")
    print(f"runs            : {len(manifest['runs'])}")
    counters = manifest["metrics"]["counters"]
    if counters:
        print("counters:")
        for name, value in counters.items():
            print(f"  {name:<24} {value}")
    histograms = manifest["metrics"]["histograms"]
    if histograms:
        print("histograms:")
        for name, data in histograms.items():
            if data["count"]:
                print(
                    f"  {name:<24} n={data['count']} "
                    f"mean={data['sum'] / data['count']:.2f} "
                    f"min={data['min']:.2f} max={data['max']:.2f}"
                )
            else:
                print(f"  {name:<24} (empty)")

    wants_series = args.series is not None or args.chart
    if not wants_series:
        return 0
    if not manifest.get("series_file"):
        raise SystemExit("manifest has no series file")
    series_path = manifest_path.parent / manifest["series_file"]
    if not series_path.is_file():
        raise SystemExit(f"series file missing: {series_path}")
    series, run_metrics = load_series(series_path)

    run_key = args.run or (manifest["runs"][0] if manifest["runs"] else None)
    if run_key is None:
        raise SystemExit("manifest records no runs")
    # Resolve against the metrics lines: every run has one, whereas a
    # run may record no series at all (e.g. the no-delay case).
    known = set(run_metrics) | {key for key, _ in series}
    matches = sorted(key for key in known if key.startswith(run_key))
    if not matches:
        raise SystemExit(f"no run matching {run_key!r} in {series_path.name}")
    if len(matches) > 1:
        raise SystemExit(f"run prefix {run_key!r} is ambiguous: {matches}")
    run_key = matches[0]
    print(f"run             : {run_key}")

    if args.series is not None:
        one = series.get((run_key, args.series))
        if one is None:
            available = sorted(n for k, n in series if k == run_key)
            raise SystemExit(
                f"no series {args.series!r} for this run; available: {available}"
            )
        for t, v in zip(one.times, one.values):
            print(f"{t:g} {v:g}")
    if args.chart:
        from repro.analysis.charts import render_event_rate, render_timeseries

        occupancy = sorted(
            (name, s) for (key, name), s in series.items()
            if key == run_key and name.startswith("occupancy/")
        )
        if args.node is not None:
            occupancy = [
                (name, s) for name, s in occupancy
                if name == f"occupancy/node-{args.node}"
            ]
            if not occupancy:
                raise SystemExit(f"no occupancy series for node {args.node}")
        for name, s in occupancy:
            print()
            print(render_timeseries(
                s.times, s.values, title=name, y_label="packets buffered",
            ))
        preempts = series.get((run_key, "events/preempt"))
        if preempts is not None and len(preempts):
            print()
            print(render_event_rate(
                preempts.times, title="preemption rate vs time", window=50.0,
            ))
    return 0


def _validate_serve_options(args: argparse.Namespace) -> None:
    if args.rate <= 0:
        raise SystemExit(f"--rate must be positive, got {args.rate:g}")
    if args.flows < 1:
        raise SystemExit(f"--flows must be at least 1, got {args.flows}")
    if args.events < 0:
        raise SystemExit(f"--events must be non-negative, got {args.events}")
    if args.duration is not None and args.duration <= 0:
        raise SystemExit(f"--duration must be positive, got {args.duration:g}")
    if args.burst_factor < 1.0:
        raise SystemExit(
            f"--burst-factor must be at least 1, got {args.burst_factor:g}"
        )
    if args.port < -1:
        raise SystemExit(f"--port must be -1, 0 or a port number, got {args.port}")
    if args.drain_timeout <= 0:
        raise SystemExit(
            f"--drain-timeout must be positive, got {args.drain_timeout:g}"
        )


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json
    import signal

    from repro.service import (
        MetricsServer,
        ServiceConfig,
        ServiceLoadGenerator,
        TemporalPrivacyService,
    )
    from repro.traffic import MarkovOnOffTraffic, PoissonTraffic

    _validate_serve_options(args)
    if args.bench:
        from repro.service.bench import run_service_bench

        payload = asyncio.run(
            run_service_bench(
                n_events=args.events or 1000,
                mean_delay=args.mean_delay,
                seed=args.seed,
            )
        )
        text = json.dumps(payload, indent=2, sort_keys=True)
        print(text)
        if args.report:
            with open(args.report, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            print(f"wrote {args.report}")
        return 0

    try:
        config = ServiceConfig(
            shards=args.shards,
            shard_capacity=args.capacity,
            max_buffered_total=args.max_buffered,
            mean_delay=args.mean_delay,
            seed=args.seed,
            snapshot_path=args.snapshot,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))

    if args.burst_factor > 1.0:
        # Same mean rate as the Poisson case: ON at rate*factor for a
        # duty cycle of 1/factor.
        mean_on = 0.1
        model = MarkovOnOffTraffic(
            burst_rate=args.rate * args.burst_factor,
            mean_on=mean_on,
            mean_off=mean_on * (args.burst_factor - 1.0),
        )
    else:
        model = PoissonTraffic(rate=args.rate)
    n_events = (
        args.events if args.duration is None
        else max(1, int(args.rate * args.duration))
    )

    async def _run() -> int:
        service = TemporalPrivacyService(config)
        gen = ServiceLoadGenerator(service, model, flows=args.flows, seed=args.seed)
        service.set_on_release(gen.on_release)
        loop = asyncio.get_running_loop()
        sigterm = asyncio.Event()
        sigint = asyncio.Event()
        loop.add_signal_handler(signal.SIGTERM, sigterm.set)
        loop.add_signal_handler(signal.SIGINT, sigint.set)

        restored = await service.start()
        if restored:
            print(f"restored {restored} buffered events from {args.snapshot}")
        http = None
        if args.port >= 0:
            http = MetricsServer(service, port=args.port)
            await http.start()
            print(f"serving metrics on http://127.0.0.1:{http.port}/metrics")
        print(
            f"service up: {config.shards} shards x {config.shard_capacity} "
            f"slots, global bound {config.max_buffered_total}, "
            f"mean delay {config.mean_delay:g}s", flush=True,
        )

        drive = asyncio.create_task(gen.drive(n_events))
        waiters = {
            asyncio.create_task(sigterm.wait()): "sigterm",
            asyncio.create_task(sigint.wait()): "sigint",
        }
        done, _ = await asyncio.wait(
            {drive, *waiters}, return_when=asyncio.FIRST_COMPLETED
        )
        persisted = None
        exit_code = 0
        if any(waiters.get(t) == "sigterm" for t in done):
            drive.cancel()
            persisted = await service.shutdown()
            print(f"SIGTERM: persisted {persisted} buffered events to snapshot")
        else:
            if any(waiters.get(t) == "sigint" for t in done):
                drive.cancel()
                print("SIGINT: draining...")
            drained = await service.drain(timeout=args.drain_timeout)
            if not drained:
                print(
                    f"drain timed out after {args.drain_timeout:g}s with "
                    f"{service.buffered_total} events still buffered"
                )
                exit_code = 1
        for task in (drive, *waiters):
            task.cancel()
        await asyncio.gather(drive, *waiters, return_exceptions=True)
        if http is not None:
            await http.stop()

        report = gen.report
        stats = service.stats()
        counters = stats["counters"]
        print(f"submitted       : {report.submitted}")
        print(f"admitted        : {report.admitted}")
        print(f"released        : {counters.get('service/released', 0)} "
              f"({counters.get('service/released-early', 0)} early)")
        print(f"shed            : {report.shed}")
        print(f"tier transitions: {stats['tier_transitions']}")
        if report.wall_time > 0:
            print(f"events/sec      : {report.submitted / report.wall_time:,.0f}")
        if args.report:
            payload = {
                "submitted": report.submitted,
                "outcomes": {k.value: v for k, v in report.outcomes.items()},
                "restored": [
                    [e.flow_id, e.seq] for e in service.restored_events
                ],
                "persisted": persisted,
                "releases": [
                    {
                        "flow_id": r.event.flow_id,
                        "seq": r.event.seq,
                        "shard": r.shard,
                        "admitted_at": r.admitted_at,
                        "release_time": r.release_time,
                        "released_at": r.released_at,
                        "early": r.early,
                    }
                    for r in report.releases
                ],
                "stats": stats,
            }
            with open(args.report, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.report}")
        return exit_code

    return asyncio.run(_run())


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.runtime import ResultCache, default_cache_dir

    cache = ResultCache(args.cache_dir or default_cache_dir())
    journal_dir = cache.directory / "journal"

    def journal_files() -> list:
        if not journal_dir.is_dir():
            return []
        return sorted(p for p in journal_dir.iterdir() if p.is_file())

    if args.cache_command == "stats":
        print(cache.disk_stats().render())
        files = journal_files()
        total = sum(p.stat().st_size for p in files)
        print(f"journal         : {len(files)} sweeps ({total} bytes)")
    elif args.cache_command == "verify":
        report = cache.verify()
        print(report.render())
        if report.quarantined:
            print(f"(moved to {cache.quarantine_dir})")
    elif args.cache_command == "purge":
        removed, reclaimed = cache.purge(
            include_quarantine=not args.keep_quarantine
        )
        journal_removed = 0
        for path in journal_files():
            reclaimed += path.stat().st_size
            path.unlink()
            journal_removed += 1
        print(
            f"purged {removed} cache files and {journal_removed} journal "
            f"sweeps; reclaimed {reclaimed} bytes"
        )
    elif args.cache_command == "prune":
        if args.max_bytes is None and not args.compact_journals:
            raise SystemExit(
                "prune needs --max-bytes and/or --compact-journals"
            )
        if args.max_bytes is not None:
            if args.max_bytes < 0:
                raise SystemExit(
                    f"--max-bytes must be non-negative, got {args.max_bytes}"
                )
            removed, reclaimed = cache.prune(args.max_bytes)
            remaining = cache.disk_stats()
            print(
                f"pruned {removed} oldest entries; reclaimed {reclaimed} bytes; "
                f"{remaining.entries} entries ({remaining.entry_bytes} bytes) remain"
            )
        if args.compact_journals:
            from repro.runtime import compact_journal

            targets = [p for p in journal_files() if p.suffix == ".jsonl"]
            fabric_root = cache.directory / "fabric"
            if fabric_root.is_dir():
                targets.extend(sorted(fabric_root.glob("*/results/*.jsonl")))
            reclaimed = dropped = 0
            for path in targets:
                stats = compact_journal(path)
                reclaimed += stats.bytes_reclaimed
                dropped += (
                    stats.dropped_superseded
                    + stats.dropped_events
                    + stats.dropped_corrupt
                )
                if stats.bytes_reclaimed or stats.dropped_corrupt:
                    print(f"  {stats.render()}")
            print(
                f"compacted {len(targets)} journals; dropped {dropped} "
                f"lines, reclaimed {reclaimed} bytes"
            )
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown cache command {args.cache_command!r}")
    return 0


def _dispatch(args: argparse.Namespace) -> None:
    if args.command == "fig1":
        _cmd_fig1()
    elif args.command == "fig2":
        _cmd_fig2(args)
    elif args.command == "fig3":
        _cmd_fig3(args)
    elif args.command == "run":
        _cmd_run(args)
    elif args.command == "chaos":
        _cmd_chaos(args)
    elif args.command == "scenarios":
        _cmd_scenarios(args)
    elif args.command == "sweep-fabric":
        _cmd_sweep_fabric(args)
    elif args.command == "theory":
        _cmd_theory(args.fast)
    elif args.command == "queueing":
        _cmd_queueing(args.fast)
    else:  # pragma: no cover - argparse enforces the choices
        raise SystemExit(f"unknown command {args.command!r}")


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an
        # error.  Redirect stdout to devnull so the interpreter's
        # shutdown flush does not print a second traceback.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


def _main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "scenarios" and (args.example or args.list_defenses):
        return _cmd_scenarios_info(args)
    if args.command not in _SIMULATION_COMMANDS:
        _dispatch(args)
        return 0

    import os
    import time

    from repro.runtime import (
        ResultCache,
        RetryPolicy,
        default_cache_dir,
        use_runtime,
    )

    _validate_runtime_options(args)
    if args.command == "sweep-fabric":
        _validate_fabric_options(args)
    jobs = args.jobs if args.jobs else (os.cpu_count() or 1)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or default_cache_dir())
    if args.resume and cache is None:
        raise SystemExit("--resume needs the result cache (drop --no-cache)")
    retry = RetryPolicy(
        max_attempts=args.retries + 1,
        timeout=args.item_timeout,
        on_failure="quarantine" if args.quarantine else "raise",
    )
    journal_dir = cache.directory / "journal" if cache is not None else None
    started_at = time.time()
    started_clock = time.monotonic()
    try:
        with use_runtime(
            jobs=jobs,
            cache=cache,
            retry=retry,
            journal_dir=journal_dir,
            resume=args.resume,
            telemetry=args.telemetry,
        ) as context:
            _dispatch(args)
    except KeyboardInterrupt:
        # The supervisor already flushed the journal and printed the
        # resume hint; exit with the conventional SIGINT code.
        return 130
    if args.telemetry:
        import dataclasses
        from pathlib import Path

        from repro.telemetry import build_manifest, write_run_artifacts

        if args.telemetry_dir is not None:
            telemetry_dir = Path(args.telemetry_dir)
        elif cache is not None:
            telemetry_dir = cache.directory / "telemetry"
        else:
            telemetry_dir = Path(args.cache_dir or default_cache_dir()) / "telemetry"
        manifest = build_manifest(
            command=args.command,
            argv=list(argv) if argv is not None else sys.argv[1:],
            aggregate=context.telemetry,
            wall_time_seconds=time.monotonic() - started_clock,
            seed=getattr(args, "seed", None),
            jobs=jobs,
            simulations=context.stats.simulations,
            sim_seconds=context.stats.sim_seconds,
            cache_stats=dataclasses.asdict(cache.stats) if cache is not None else None,
            started_at=started_at,
        )
        manifest_path, _ = write_run_artifacts(
            telemetry_dir, args.command, manifest, context.telemetry
        )
        print(f"telemetry manifest: {manifest_path}")
    if cache is not None:
        print(cache.stats.render())
    if journal_dir is not None:
        print(context.journal_stats.render())
    for report in context.failure_reports:
        print(report.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
