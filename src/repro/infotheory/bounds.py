"""Bounds on the temporal-privacy mutual information (paper §3).

Two bounds bracket the leakage ``I(X; Z)``:

* **Entropy-power inequality lower bound** (Equation (2)): for any
  independent X, Y with Z = X + Y, ::

      I(X; Z) >= 0.5 * ln(e^{2 h(X)} + e^{2 h(Y)}) - h(Y)

  No delay distribution can push the leakage below this floor.

* **Bits-through-queues upper bound** (Equation (4), from Anantharam &
  Verdu 1996, Theorem 3(d)): for a Poisson(lambda) creation process and
  i.i.d. Exp(mu) delays, the j-th packet leaks at most
  ``ln(1 + j mu / lambda)`` nats, hence ::

      I(X^n; Z^n) <= sum_{j=1..n} ln(1 + j mu / lambda)

  Tuning mu small relative to lambda shrinks the leakage -- the design
  knob of the whole paper.
"""

from __future__ import annotations

import math

__all__ = [
    "entropy_power",
    "epi_lower_bound",
    "bits_through_queues_bound",
    "cumulative_bits_through_queues_bound",
]


def entropy_power(entropy_nats: float) -> float:
    """Entropy power N(X) = e^{2 h(X)} / (2 pi e).

    The variance of the Gaussian with the same differential entropy; the
    EPI states entropy powers are superadditive under convolution.
    """
    return math.exp(2.0 * entropy_nats) / (2.0 * math.pi * math.e)


def epi_lower_bound(h_x: float, h_y: float) -> float:
    """Equation (2): EPI lower bound on I(X; X+Y) in nats.

    Parameters are the differential entropies of X and Y in nats.  The
    bound can be negative for very peaked X (differential entropies can
    be negative), in which case it is vacuous and clamped to 0.
    """
    h_z_lower = 0.5 * math.log(math.exp(2.0 * h_x) + math.exp(2.0 * h_y))
    return max(h_z_lower - h_y, 0.0)


def bits_through_queues_bound(packet_index: int, creation_rate: float, delay_rate: float) -> float:
    """Per-packet leakage bound I(X_j; Z_j) <= ln(1 + j mu / lambda), nats.

    Parameters
    ----------
    packet_index:
        j >= 1, the packet's position in the creation sequence (X_j is
        j-stage Erlangian with mean j/lambda).
    creation_rate:
        lambda of the Poisson creation process.
    delay_rate:
        mu of the exponential delay (mean delay 1/mu).
    """
    if packet_index < 1:
        raise ValueError(f"packet index must be >= 1, got {packet_index}")
    if creation_rate <= 0 or delay_rate <= 0:
        raise ValueError("creation and delay rates must be positive")
    return math.log(1.0 + packet_index * delay_rate / creation_rate)


def cumulative_bits_through_queues_bound(
    n_packets: int, creation_rate: float, delay_rate: float
) -> float:
    """Equation (4): I(X^n; Z^n) <= sum_j ln(1 + j mu / lambda), nats.

    By the data-processing inequality (X^n -> Z^n -> sorted Z^n) this
    also bounds what the adversary learns from the *sorted* arrival
    process it actually observes.
    """
    if n_packets < 0:
        raise ValueError(f"packet count must be non-negative, got {n_packets}")
    return float(
        sum(
            bits_through_queues_bound(j, creation_rate, delay_rate)
            for j in range(1, n_packets + 1)
        )
    )
