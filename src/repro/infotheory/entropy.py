"""Closed-form differential entropies (natural log -> nats).

Temporal privacy trades in a handful of standard laws:

* **exponential** delays -- the paper's central choice, "the well-known
  fact that the exponential distribution yields maximal entropy for
  non-negative distributions" (of a given mean);
* **uniform** and **constant** delays -- the ablation comparators;
* **Erlang** -- the creation time of the j-th packet of a Poisson
  source is j-stage Erlangian (Section 3.2);
* **Gaussian** -- the tractable case where mutual information has a
  closed form, used to validate the empirical estimators.
"""

from __future__ import annotations

import math

from scipy.special import digamma

__all__ = [
    "exponential_entropy",
    "uniform_entropy",
    "gaussian_entropy",
    "erlang_entropy",
    "gaussian_mutual_information",
    "max_entropy_nonnegative_is_exponential",
]


def exponential_entropy(rate: float) -> float:
    """h(Exp(rate)) = 1 - ln(rate) nats.

    For the paper's delay Y ~ Exp(mu) with mean 1/mu this is
    ``1 - ln(mu)`` -- increasing the mean delay increases entropy.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return 1.0 - math.log(rate)


def uniform_entropy(width: float) -> float:
    """h(Uniform over an interval of length ``width``) = ln(width)."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    return math.log(width)


def gaussian_entropy(variance: float) -> float:
    """h(N(m, variance)) = 0.5 ln(2 pi e variance)."""
    if variance <= 0:
        raise ValueError(f"variance must be positive, got {variance}")
    return 0.5 * math.log(2.0 * math.pi * math.e * variance)


def erlang_entropy(shape: int, rate: float) -> float:
    """Entropy of the Erlang(shape, rate) distribution.

    ``h = shape - ln(rate) + ln Gamma(shape) + (1 - shape) psi(shape)``
    where psi is the digamma function.  ``shape = 1`` recovers the
    exponential entropy.
    """
    if shape < 1:
        raise ValueError(f"shape must be a positive integer, got {shape}")
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    return (
        shape
        - math.log(rate)
        + math.lgamma(shape)
        + (1.0 - shape) * float(digamma(shape))
    )


def gaussian_mutual_information(signal_variance: float, noise_variance: float) -> float:
    """I(X; X+Y) for independent Gaussians, in nats.

    ``0.5 ln(1 + signal/noise)`` -- the exactly solvable instance of the
    paper's channel ``Z = X + Y`` (here ``Y`` is the masking delay, so
    *more* "noise" means *less* leaked information).
    """
    if signal_variance < 0 or noise_variance <= 0:
        raise ValueError("variances must be positive (signal may be zero)")
    return 0.5 * math.log(1.0 + signal_variance / noise_variance)


def max_entropy_nonnegative_is_exponential(mean: float, candidates: dict[str, float]) -> bool:
    """Check h(Exp) >= h(candidate) for same-mean non-negative laws.

    ``candidates`` maps a label to the entropy of a non-negative
    distribution with the given mean.  Returns True when the
    exponential dominates all of them -- the paper's motivation for
    exponential delays, used as an executable sanity check in tests.
    """
    if mean <= 0:
        raise ValueError(f"mean must be positive, got {mean}")
    exp_entropy = exponential_entropy(1.0 / mean)
    return all(exp_entropy >= h - 1e-12 for h in candidates.values())
