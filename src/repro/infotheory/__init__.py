"""Information-theoretic formulation of temporal privacy (paper §3).

Temporal privacy is defined as the mutual information
``I(X; Z) = h(Z) - h(Y)`` between packet creation times ``X`` and
arrival times ``Z = X + Y`` observed by the adversary, where ``Y`` is
the artificial buffering delay.  This subpackage implements:

* closed-form differential entropies of the distributions involved
  (:mod:`repro.infotheory.entropy`),
* the entropy-power-inequality lower bound of Equation (2) and the
  Anantharam--Verdu "bits through queues" upper bound of Equation (4)
  (:mod:`repro.infotheory.bounds`),
* empirical mutual-information estimators -- plug-in histogram and
  Kraskov kNN -- for measuring leakage from simulation traces
  (:mod:`repro.infotheory.estimators`),
* the mutual-information / MMSE relationship that justifies using the
  adversary's mean square error as the simulation privacy metric
  (:mod:`repro.infotheory.mmse`).
"""

from repro.infotheory.batch import (
    erlang_entropy_batch,
    exponential_entropy_batch,
    gaussian_entropy_batch,
    gaussian_mutual_information_batch,
    mmse_lower_bound_from_mi_batch,
    uniform_entropy_batch,
)
from repro.infotheory.bounds import (
    bits_through_queues_bound,
    cumulative_bits_through_queues_bound,
    entropy_power,
    epi_lower_bound,
)
from repro.infotheory.entropy import (
    erlang_entropy,
    exponential_entropy,
    gaussian_entropy,
    gaussian_mutual_information,
    uniform_entropy,
)
from repro.infotheory.estimators import (
    binned_mutual_information,
    gaussian_mi_estimate,
    ksg_mutual_information,
)
from repro.infotheory.mmse import (
    mmse_lower_bound_from_mi,
    mse_of_estimator,
)

__all__ = [
    "exponential_entropy",
    "uniform_entropy",
    "gaussian_entropy",
    "erlang_entropy",
    "gaussian_mutual_information",
    "entropy_power",
    "epi_lower_bound",
    "bits_through_queues_bound",
    "cumulative_bits_through_queues_bound",
    "binned_mutual_information",
    "ksg_mutual_information",
    "gaussian_mi_estimate",
    "mmse_lower_bound_from_mi",
    "mse_of_estimator",
    "exponential_entropy_batch",
    "uniform_entropy_batch",
    "gaussian_entropy_batch",
    "erlang_entropy_batch",
    "gaussian_mutual_information_batch",
    "mmse_lower_bound_from_mi_batch",
]
