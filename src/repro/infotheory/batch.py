"""Batch (numpy) forms of the closed-form information quantities.

The bounds notebooks and benchmark harness evaluate the closed-form
entropies and MMSE bounds over whole parameter grids; these kernels
compute a full array per call instead of one float per call.  Each
mirrors its scalar counterpart in :mod:`repro.infotheory.entropy` /
:mod:`repro.infotheory.mmse` -- the scalar functions remain the oracle
for the equivalence tests -- and applies the same domain checks, raised
for the first offending element.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import digamma, gammaln

__all__ = [
    "exponential_entropy_batch",
    "uniform_entropy_batch",
    "gaussian_entropy_batch",
    "erlang_entropy_batch",
    "gaussian_mutual_information_batch",
    "mmse_lower_bound_from_mi_batch",
]


def _positive(values: np.ndarray, name: str) -> None:
    if np.any(values <= 0):
        offender = float(values[values <= 0][0])
        raise ValueError(f"{name} must be positive, got {offender}")


def exponential_entropy_batch(rates: np.ndarray) -> np.ndarray:
    """Vector form of ``h(Exp(rate)) = 1 - ln(rate)``."""
    rates = np.asarray(rates, dtype=np.float64)
    _positive(rates, "rate")
    return 1.0 - np.log(rates)


def uniform_entropy_batch(widths: np.ndarray) -> np.ndarray:
    """Vector form of ``h(Uniform(width)) = ln(width)``."""
    widths = np.asarray(widths, dtype=np.float64)
    _positive(widths, "width")
    return np.log(widths)


def gaussian_entropy_batch(variances: np.ndarray) -> np.ndarray:
    """Vector form of ``h(N(m, v)) = 0.5 ln(2 pi e v)``."""
    variances = np.asarray(variances, dtype=np.float64)
    _positive(variances, "variance")
    return 0.5 * np.log(2.0 * math.pi * math.e * variances)


def erlang_entropy_batch(shapes: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """Vector form of the Erlang(shape, rate) entropy.

    ``shapes`` and ``rates`` broadcast against each other; shapes must
    be positive integers (Erlang, not general Gamma).
    """
    shapes = np.asarray(shapes)
    if np.any(shapes < 1):
        offender = shapes[shapes < 1].ravel()[0]
        raise ValueError(f"shape must be a positive integer, got {offender}")
    shapes = shapes.astype(np.float64)
    rates = np.asarray(rates, dtype=np.float64)
    _positive(rates, "rate")
    return (
        shapes
        - np.log(rates)
        + gammaln(shapes)
        + (1.0 - shapes) * digamma(shapes)
    )


def gaussian_mutual_information_batch(
    signal_variances: np.ndarray, noise_variances: np.ndarray
) -> np.ndarray:
    """Vector form of ``I(X; X+Y) = 0.5 ln(1 + signal/noise)``."""
    signal = np.asarray(signal_variances, dtype=np.float64)
    noise = np.asarray(noise_variances, dtype=np.float64)
    if np.any(signal < 0) or np.any(noise <= 0):
        raise ValueError("variances must be positive (signal may be zero)")
    return 0.5 * np.log(1.0 + signal / noise)


def mmse_lower_bound_from_mi_batch(
    h_x_nats: np.ndarray, mi_nats: np.ndarray
) -> np.ndarray:
    """Vector form of the entropy-power MSE floor.

    ``(1 / 2 pi e) exp(2 (h(X) - I(X; Z)))`` elementwise, broadcasting
    the two arguments against each other.
    """
    h_x = np.asarray(h_x_nats, dtype=np.float64)
    mi = np.asarray(mi_nats, dtype=np.float64)
    if np.any(mi < 0):
        offender = float(mi[mi < 0].ravel()[0])
        raise ValueError(f"mutual information cannot be negative, got {offender}")
    return np.exp(2.0 * (h_x - mi)) / (2.0 * math.pi * math.e)
