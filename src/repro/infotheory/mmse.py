"""Mutual information and estimation error.

The paper measures privacy in simulations by the adversary's **mean
square error** and in theory by **mutual information**, citing Guo,
Shamai & Verdu (2005) for the connection: "large I(X;Z) implies that a
well-designed estimator of X from Z will have small MSE" (Section 3.1).
This module makes the connection quantitative:

* the entropy form of the estimation-counterpart of Fano's inequality:
  for *any* estimator x_hat(Z), ::

      E[(X - x_hat(Z))^2] >= (1 / 2 pi e) e^{2 h(X | Z)}
                           = (1 / 2 pi e) e^{2 (h(X) - I(X; Z))}

  so each nat of leaked information shrinks the error floor by e^2;
* a plain MSE evaluator for the simulated adversaries.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["mmse_lower_bound_from_mi", "mse_of_estimator"]


def mmse_lower_bound_from_mi(h_x_nats: float, mi_nats: float) -> float:
    """Lower bound on achievable MSE given source entropy and leakage.

    Parameters
    ----------
    h_x_nats:
        Differential entropy h(X) of the creation-time prior, in nats.
    mi_nats:
        Information I(X; Z) leaked to the adversary, in nats.

    Returns
    -------
    float
        ``(1 / 2 pi e) * exp(2 * (h_x_nats - mi_nats))``; any estimator
        built from Z has at least this mean square error.
    """
    if mi_nats < 0:
        raise ValueError(f"mutual information cannot be negative, got {mi_nats}")
    return math.exp(2.0 * (h_x_nats - mi_nats)) / (2.0 * math.pi * math.e)


def mse_of_estimator(true_values: Sequence[float], estimates: Sequence[float]) -> float:
    """Mean square error between ground truth and estimates.

    This is exactly the paper's privacy metric:
    ``MSE = sum (x_hat_i - x_i)^2 / m`` (Section 2.1).  Higher MSE means
    better temporal privacy.
    """
    truth = np.asarray(true_values, dtype=float)
    guess = np.asarray(estimates, dtype=float)
    if truth.shape != guess.shape:
        raise ValueError(
            f"length mismatch: {truth.size} true values vs {guess.size} estimates"
        )
    if truth.size == 0:
        raise ValueError("cannot compute MSE of zero packets")
    return float(np.mean((truth - guess) ** 2))
