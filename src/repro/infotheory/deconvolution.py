"""EM reconstruction of the creation-time distribution.

The paper's related work (§6) cites Agrawal & Aggarwal's result that an
Expectation-Maximization procedure converges to the maximum-likelihood
estimate of an original distribution from additively perturbed samples.
Ported to temporal privacy: the adversary observes arrival times
``Z = X + Y`` with a *known* delay density f_Y (Kerckhoff), and wants
the whole *distribution* of creation times f_X -- the temporal pattern
of the phenomenon -- rather than per-packet estimates.

:func:`em_deconvolve` implements the discretized EM (equivalently, a
Richardson-Lucy deconvolution): with f_X represented as masses p_i on
a grid x_i, iterate ::

    w_ij ∝ p_i f_Y(z_j - x_i)          (E step: posterior per sample)
    p_i  = (1/m) sum_j w_ij            (M step)

Each iteration cannot decrease the likelihood; we stop on convergence
or an iteration cap.  The distribution-level experiment in
:mod:`repro.experiments.distribution_adversary` uses this to show that
RCAD corrupts even distribution-level inference: preemption invalidates
the f_Y the adversary deconvolves with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["EmDeconvolutionResult", "em_deconvolve", "total_variation_distance"]


@dataclass(frozen=True)
class EmDeconvolutionResult:
    """Output of :func:`em_deconvolve`.

    ``density`` holds probability *masses* per grid cell (summing to
    1), not continuous densities; divide by the grid step for a
    density.
    """

    grid: np.ndarray
    density: np.ndarray
    iterations: int
    log_likelihood: float
    converged: bool

    def mean(self) -> float:
        """Mean of the reconstructed distribution."""
        return float(np.dot(self.grid, self.density))

    def cdf(self) -> np.ndarray:
        """Cumulative masses along the grid."""
        return np.cumsum(self.density)


def em_deconvolve(
    observations: np.ndarray,
    delay_pdf: Callable[[np.ndarray], np.ndarray],
    grid: np.ndarray,
    max_iterations: int = 300,
    tolerance: float = 1e-9,
) -> EmDeconvolutionResult:
    """Maximum-likelihood reconstruction of f_X from samples of X + Y.

    Parameters
    ----------
    observations:
        Observed arrival times z_1..z_m.
    delay_pdf:
        Vectorized density of the delay Y the adversary *believes* was
        applied (the true density for a correct adversary; the nominal
        pre-preemption density for an adversary fooled by RCAD).
    grid:
        Candidate creation times x_1..x_n (uniformly spaced).
    max_iterations, tolerance:
        EM stops when the per-sample log-likelihood improves by less
        than ``tolerance`` or after ``max_iterations``.

    Returns
    -------
    EmDeconvolutionResult
        Grid masses, iteration count, final log-likelihood.
    """
    z = np.asarray(observations, dtype=float).ravel()
    x = np.asarray(grid, dtype=float).ravel()
    if z.size == 0:
        raise ValueError("need at least one observation")
    if x.size < 2:
        raise ValueError("grid must contain at least two points")
    steps = np.diff(x)
    if np.any(steps <= 0) or not np.allclose(steps, steps[0], rtol=1e-6):
        raise ValueError("grid must be strictly increasing and uniform")

    # Likelihood kernel: K[i, j] = f_Y(z_j - x_i), fixed across iterations.
    kernel = delay_pdf(z[None, :] - x[:, None])
    kernel = np.clip(np.asarray(kernel, dtype=float), 0.0, None)
    reachable = kernel.sum(axis=0) > 0
    if not np.all(reachable):
        # Observations the grid cannot explain at all would zero the
        # likelihood; drop them rather than poison the estimate.
        z = z[reachable]
        kernel = kernel[:, reachable]
        if z.size == 0:
            raise ValueError(
                "no observation is explainable by the grid and delay pdf; "
                "extend the grid"
            )

    masses = np.full(x.size, 1.0 / x.size)
    previous_ll = -np.inf
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        mixture = masses @ kernel  # length m: sum_i p_i K_ij
        mixture = np.maximum(mixture, 1e-300)
        log_likelihood = float(np.mean(np.log(mixture)))
        # E+M fused: p_i <- p_i * mean_j (K_ij / mixture_j).
        masses = masses * ((kernel / mixture[None, :]).mean(axis=1))
        masses = masses / masses.sum()
        if log_likelihood - previous_ll < tolerance and iterations > 1:
            converged = True
            break
        previous_ll = log_likelihood
    mixture = np.maximum(masses @ kernel, 1e-300)
    return EmDeconvolutionResult(
        grid=x,
        density=masses,
        iterations=iterations,
        log_likelihood=float(np.mean(np.log(mixture))),
        converged=converged,
    )


def total_variation_distance(p: np.ndarray, q: np.ndarray) -> float:
    """TV distance between two mass vectors on the same grid."""
    p = np.asarray(p, dtype=float)
    q = np.asarray(q, dtype=float)
    if p.shape != q.shape:
        raise ValueError(f"shape mismatch: {p.shape} vs {q.shape}")
    if p.sum() <= 0 or q.sum() <= 0:
        raise ValueError("mass vectors must have positive total mass")
    return float(0.5 * np.abs(p / p.sum() - q / q.sum()).sum())
