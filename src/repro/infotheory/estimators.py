"""Empirical mutual-information estimators.

The paper's theory speaks in mutual information; its simulations report
mean square error.  These estimators close the loop: given paired
samples of creation times X and observed arrival times Z from the
simulator, they estimate I(X; Z) directly, so the benchmark suite can
show the empirical leakage obeying the analytic bounds of
:mod:`repro.infotheory.bounds`.

Three estimators with different bias/variance trade-offs:

* :func:`binned_mutual_information` -- plug-in histogram estimator with
  Miller--Madow bias correction; simple, robust, biased upward for
  small samples;
* :func:`ksg_mutual_information` -- Kraskov--Stogbauer--Grassberger
  kNN estimator (algorithm 1); low bias for continuous data;
* :func:`gaussian_mi_estimate` -- correlation-based parametric
  estimate, exact when (X, Z) is bivariate Gaussian.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.spatial import cKDTree
from scipy.special import digamma

__all__ = [
    "binned_mutual_information",
    "ksg_mutual_information",
    "gaussian_mi_estimate",
]


def _validate_pairs(x: np.ndarray, z: np.ndarray, minimum: int) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float).ravel()
    z = np.asarray(z, dtype=float).ravel()
    if x.shape != z.shape:
        raise ValueError(f"x and z must have the same length, got {x.size} and {z.size}")
    if x.size < minimum:
        raise ValueError(f"need at least {minimum} samples, got {x.size}")
    return x, z


def binned_mutual_information(
    x: np.ndarray, z: np.ndarray, bins: int = 0, correct_bias: bool = True
) -> float:
    """Histogram plug-in estimate of I(X; Z) in nats.

    Parameters
    ----------
    bins:
        Number of equal-frequency bins per axis; 0 selects
        ``ceil(sqrt(n / 5))``, a standard heuristic keeping ~5 points
        per cell on average.
    correct_bias:
        Apply the Miller--Madow correction
        ``(K_xz - K_x - K_z + 1) / (2 n)`` where K are the counts of
        occupied cells.
    """
    x, z = _validate_pairs(x, z, minimum=4)
    n = x.size
    if bins <= 0:
        bins = max(2, math.ceil(math.sqrt(n / 5)))
    # Equal-frequency (quantile) bin edges are far more robust than
    # equal-width ones for the heavy-tailed delay data we feed in.
    x_edges = np.unique(np.quantile(x, np.linspace(0, 1, bins + 1)))
    z_edges = np.unique(np.quantile(z, np.linspace(0, 1, bins + 1)))
    if x_edges.size < 2 or z_edges.size < 2:
        return 0.0  # a degenerate (constant) marginal carries no information
    joint, _, _ = np.histogram2d(x, z, bins=[x_edges, z_edges])
    p_joint = joint / n
    p_x = p_joint.sum(axis=1, keepdims=True)
    p_z = p_joint.sum(axis=0, keepdims=True)
    mask = p_joint > 0
    mi = float(np.sum(p_joint[mask] * np.log(p_joint[mask] / (p_x @ p_z)[mask])))
    if correct_bias:
        occupied_joint = int(mask.sum())
        occupied_x = int((p_x > 0).sum())
        occupied_z = int((p_z > 0).sum())
        mi -= (occupied_joint - occupied_x - occupied_z + 1) / (2.0 * n)
    return max(mi, 0.0)


def _marginal_neighbor_counts(
    tree: cKDTree, points: np.ndarray, radii: np.ndarray
) -> np.ndarray:
    """Points within each point's radius (vectorized KSG inner loop).

    One batched ``query_ball_point`` call with per-point radii replaces
    the former per-point Python loop -- the KSG hot path.  The scalar
    loop is kept as :func:`_marginal_neighbor_counts_scalar`, the
    oracle for the equivalence tests.
    """
    return (
        tree.query_ball_point(points[:, None], radii, return_length=True) - 1
    )


def _marginal_neighbor_counts_scalar(
    tree: cKDTree, points: np.ndarray, radii: np.ndarray
) -> np.ndarray:
    """Per-point loop form of :func:`_marginal_neighbor_counts`."""
    return np.array(
        [
            len(tree.query_ball_point([point], radius)) - 1
            for point, radius in zip(points, radii)
        ]
    )


def ksg_mutual_information(x: np.ndarray, z: np.ndarray, k: int = 4) -> float:
    """Kraskov--Stogbauer--Grassberger kNN estimate of I(X; Z) in nats.

    Algorithm 1 of Kraskov et al. (2004): for each point, find the
    Chebyshev distance to its k-th neighbour in the joint space, count
    marginal neighbours strictly within that distance, and average ::

        I = psi(k) + psi(n) - <psi(n_x + 1) + psi(n_z + 1)>

    A tiny deterministic jitter breaks ties that arise from discrete
    timestamps without perturbing the estimate.
    """
    x, z = _validate_pairs(x, z, minimum=8)
    if k < 1:
        raise ValueError(f"k must be at least 1, got {k}")
    n = x.size
    if k >= n:
        raise ValueError(f"k={k} must be smaller than the sample size {n}")
    # Deterministic tie-breaking jitter, scaled well below data spacing.
    span_x = np.ptp(x) or 1.0
    span_z = np.ptp(z) or 1.0
    jitter = np.random.Generator(np.random.PCG64(12345))
    x = x + jitter.normal(0.0, 1e-10 * span_x, size=n)
    z = z + jitter.normal(0.0, 1e-10 * span_z, size=n)

    joint = np.column_stack([x, z])
    tree_joint = cKDTree(joint)
    # k+1 because the query point itself is returned at distance 0.
    distances, _ = tree_joint.query(joint, k=k + 1, p=np.inf)
    radii = distances[:, -1]

    tree_x = cKDTree(x[:, None])
    tree_z = cKDTree(z[:, None])
    n_x = _marginal_neighbor_counts(tree_x, x, radii - 1e-12)
    n_z = _marginal_neighbor_counts(tree_z, z, radii - 1e-12)
    mi = (
        float(digamma(k))
        + float(digamma(n))
        - float(np.mean(digamma(n_x + 1) + digamma(n_z + 1)))
    )
    return max(mi, 0.0)


def gaussian_mi_estimate(x: np.ndarray, z: np.ndarray) -> float:
    """Parametric Gaussian estimate: -0.5 ln(1 - corr(X,Z)^2), nats.

    Exact for jointly Gaussian pairs; for other laws it captures only
    the linear dependence and therefore *lower-bounds* the true mutual
    information (up to sampling error).
    """
    x, z = _validate_pairs(x, z, minimum=4)
    if np.std(x) == 0 or np.std(z) == 0:
        return 0.0
    rho = float(np.corrcoef(x, z)[0, 1])
    rho = max(min(rho, 0.999999999), -0.999999999)
    return -0.5 * math.log(1.0 - rho * rho)
