"""Vectorized structure-of-arrays replay of the event-driven simulator.

The paper's fault-free model has a crucial structural property: the
routing tree has **no feedback**.  A node's arrival stream depends only
on its children's departure streams, so instead of interleaving every
node's events through one global scheduler, nodes can be processed one
at a time in topological order (children before parents), each as a
single batch:

* packet state lives in numpy arrays keyed by a global packet index
  (creation times, flow/packet ids, routing sequence, preemption
  counts) instead of per-packet heap objects;
* per-node artificial delays are drawn in one vectorized generator
  call -- numpy streams produce bit-identical values whether drawn
  singly or batched, and the seed engine consumes the per-node
  ``delay/node-X`` stream exactly in arrival order, which is the order
  the batch replays;
* infinite buffers reduce to pure array arithmetic (departures =
  arrivals + delays; occupancy via a cumulative sum over the merged
  admission/release event sequence);
* bounded buffers (drop-tail, RCAD) run a tight per-node loop over a
  small ``(release_time, entry_id)`` heap.  For RCAD with the paper's
  shortest-remaining-delay policy the heap head *is* the victim, so
  preemption is O(log k) with no scan;
* telemetry is recorded into per-node lists and bulk-flushed into the
  run's series after the sweep, instead of per-event closure calls.

**Observable bit-identity.**  The replay reproduces the event-driven
engine's output exactly -- same floats, same orderings, same event
ledger -- relying on two facts.  First, float arithmetic is replayed
operation-for-operation (``created + tau`` per hop, ``now + delay``,
the occupancy integral accumulated in per-node event order via a
cumulative sum, histogram sums in delivery order).  Second, event
*ordering*: ties between distinct packets' events are measure-zero
when every hop adds a delay from a continuous distribution, and the
remaining systematic ties are resolved exactly as the engine's
``(time, seq)`` order would: creation events are scheduled at setup so
they carry the globally smallest sequence numbers (a creation fires
before any same-instant arrival, and creations among themselves fire
in flow-major setup order), and in the no-delay case two deliveries
coincide only when their creations differ by a whole number of hop
delays, in which case the later-created packet's chain holds the
smaller sequence number at every shared instant and lands first.

:func:`fastpath_eligible` gates the replay to configurations whose
every feature the batch model covers; anything else (faults, ARQ,
lossy links, phantom routing, sealed payloads, trace recording,
non-continuous delays, stochastic victim policies) takes the
event-driven engine.  Setting ``REPRO_FASTPATH=0`` in the environment
forces the event-driven engine everywhere -- the A/B lever the
equivalence tests and benchmarks use.
"""

from __future__ import annotations

import heapq
import os
from typing import TYPE_CHECKING

import numpy as np

from repro.core.metrics import PacketRecord
from repro.core.victim import ShortestRemainingDelay
from repro.net.packet import PacketObservation
from repro.sim.results import DroppedPacket, NodeStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SimulationConfig
    from repro.sim.results import SimulationResult
    from repro.sim.simulator import SensorNetworkSimulator

__all__ = ["fastpath_eligible", "fastpath_enabled", "run_fastpath"]


def fastpath_enabled() -> bool:
    """False when ``REPRO_FASTPATH`` is set to ``0``/``off``/``false``."""
    return os.environ.get("REPRO_FASTPATH", "1").strip().lower() not in (
        "0",
        "off",
        "false",
        "no",
    )


def fastpath_eligible(config: "SimulationConfig") -> bool:
    """True if the batch replay covers every feature this run uses."""
    if config.faults is not None and not config.faults.is_noop:
        return False
    if config.routing_policy is not None:
        return False
    if config.link_loss_probability > 0:
        return False
    if config.seal_payloads or config.record_transmissions or config.record_packet_traces:
        return False
    if config.transmission_delay <= 0:
        return False  # zero-tau chains make same-instant ties routine
    if config.buffers.kind == "rcad" and config.buffers.victim_policy is not None:
        if not isinstance(config.buffers.victim_policy, ShortestRemainingDelay):
            return False
    plan = config.delay_plan
    if plan is not None:
        buffering = set()
        for flow in config.flows:
            buffering.update(config.tree.path(flow.source)[:-1])
        for node in buffering:
            try:
                dist = plan.distribution_for(node)
            except KeyError:
                return False
            if not getattr(dist, "continuous", False):
                return False
    return True


# ----------------------------------------------------------------------
def run_fastpath(sim: "SensorNetworkSimulator") -> "SimulationResult":
    """Run ``sim``'s configuration as a batch replay; fills ``sim._result``."""
    config = sim.config
    tree = config.tree
    tau = config.transmission_delay

    # --- creations: flow-major packet arrays ---------------------------
    flow_times = []
    for flow in config.flows:
        stream = sim._rng.stream(f"traffic/flow-{flow.flow_id}")
        flow_times.append(
            np.asarray(
                flow.traffic.creation_times(flow.n_packets, stream), dtype=np.float64
            )
        )
    counts = [len(t) for t in flow_times]
    total = int(sum(counts))
    created = np.concatenate(flow_times)
    flow_of = np.repeat(np.arange(len(config.flows)), counts)
    packet_id = np.concatenate([np.arange(n) for n in counts])

    # routing_seq is assigned as creation events fire: time order, with
    # same-instant creations in flow-major setup (= sequence) order.
    creation_order = np.argsort(created, kind="stable")
    routing_seq = np.empty(total, dtype=np.int64)
    routing_seq[creation_order] = np.arange(total)
    sim._next_routing_seq = total
    sim._counters.created = total

    paths = {flow.source: tree.path(flow.source) for flow in config.flows}
    hops_of_flow = np.array(
        [len(paths[flow.source]) - 1 for flow in config.flows], dtype=np.int64
    )
    prevhop_of_flow = np.array(
        [paths[flow.source][-2] for flow in config.flows], dtype=np.int64
    )

    if config.delay_plan is None:
        _run_nodelay(
            sim, created, flow_of, packet_id, routing_seq,
            hops_of_flow, prevhop_of_flow, tau,
        )
    else:
        _run_delayed(
            sim, created, flow_of, packet_id, routing_seq,
            hops_of_flow, prevhop_of_flow, tau,
        )
    # Resolve the auditor through the simulator module so test
    # instrumentation (and any future swap) applies to both paths.
    from repro.sim import simulator as _simulator

    _simulator.InvariantAuditor(sim._counters).audit(sim._result)
    return sim._result


def _check_horizon(sim: "SensorNetworkSimulator", end: float) -> None:
    if end > sim.config.max_sim_time:
        raise RuntimeError(
            f"simulation exceeded max_sim_time={sim.config.max_sim_time:g}; "
            "events still pending"
        )


def _deliver_all(
    sim: "SensorNetworkSimulator",
    times: np.ndarray,
    pkts: np.ndarray,
    created: np.ndarray,
    flow_of: np.ndarray,
    packet_id: np.ndarray,
    routing_seq: np.ndarray,
    hops_of_flow: np.ndarray,
    prevhop_of_flow: np.ndarray,
    preemptions: np.ndarray | None,
) -> None:
    """Append observations/records (and latency telemetry) in sink order."""
    result = sim._result
    observations = result.observations
    records = result.records
    flow_ids = [flow.flow_id for flow in sim.config.flows]
    telemetry = sim.telemetry
    if telemetry is not None and len(times):
        telemetry.registry.counter("sim/delivered").inc(len(times))
        # Histograms come into existence at a flow's first delivery, so
        # a flow that never delivers must not appear in the snapshot.
        histograms: list = [None] * len(flow_ids)
    else:
        histograms = None
    time_list = times.tolist()
    pkt_list = pkts.tolist()
    for now, p in zip(time_list, pkt_list):
        f = flow_of[p]
        if histograms is not None:
            hist = histograms[f]
            if hist is None:
                hist = histograms[f] = telemetry.registry.histogram(
                    f"latency/flow-{flow_ids[f]}"
                )
            hist.observe(now - created[p])
        observations.append(
            PacketObservation(
                arrival_time=now,
                previous_hop=int(prevhop_of_flow[f]),
                origin=int(sim.config.flows[f].source),
                routing_seq=int(routing_seq[p]),
                hop_count=int(hops_of_flow[f]),
            )
        )
        records.append(
            PacketRecord(
                flow_id=flow_ids[f],
                packet_id=int(packet_id[p]),
                created_at=float(created[p]),
                delivered_at=now,
                hop_count=int(hops_of_flow[f]),
                preemptions_experienced=(
                    int(preemptions[p]) if preemptions is not None else 0
                ),
            )
        )
    sim._counters.delivered = len(time_list)


def _finalize_fast(
    sim: "SensorNetworkSimulator",
    end: float,
    processed: int,
    scheduled: int,
    skipped: int,
) -> None:
    result = sim._result
    result.end_time = end
    result.events_processed = processed
    telemetry = sim.telemetry
    if telemetry is not None:
        registry = telemetry.registry
        registry.counter("des/events-processed").inc(processed)
        registry.counter("des/events-scheduled").inc(scheduled)
        registry.counter("des/events-skipped").inc(skipped)
        registry.counter("sim/lost-in-transit").inc(0)
        registry.gauge("sim/end-time").set(end)
        result.telemetry = telemetry


# ----------------------------------------------------------------------
def _run_nodelay(
    sim, created, flow_of, packet_id, routing_seq,
    hops_of_flow, prevhop_of_flow, tau,
) -> None:
    """Case 1: no artificial delay -- a packet's delivery time is its
    creation time plus one tau per hop, accumulated hop-by-hop so the
    float sums match the engine's successive ``now + tau`` adds."""
    delivered = created.copy()
    for f in range(len(hops_of_flow)):
        mask = flow_of == f
        seg = delivered[mask]
        for _ in range(int(hops_of_flow[f])):
            seg = seg + tau
        delivered[mask] = seg
    end = float(delivered.max())
    _check_horizon(sim, end)
    # Tied deliveries happen only between chains whose creations differ
    # by a multiple of tau; the later-created chain carries the smaller
    # seq from its creation onward and lands first (see module docs).
    order = np.lexsort((np.arange(len(delivered)), -created, delivered))
    _deliver_all(
        sim,
        delivered[order], order,
        created, flow_of, packet_id, routing_seq,
        hops_of_flow, prevhop_of_flow, None,
    )
    hop_events = int(np.sum(hops_of_flow[flow_of]))
    total = len(created)
    _finalize_fast(
        sim, end,
        processed=total + hop_events,
        scheduled=total + hop_events,
        skipped=0,
    )


# ----------------------------------------------------------------------
def _run_delayed(
    sim, created, flow_of, packet_id, routing_seq,
    hops_of_flow, prevhop_of_flow, tau,
) -> None:
    config = sim.config
    tree = config.tree
    sink = config.deployment.sink
    plan = config.delay_plan
    spec = config.buffers
    telemetry = sim.telemetry
    rcad = spec.kind == "rcad"

    # Topological order: deeper nodes (more hops to the sink) first.
    buffering: set[int] = set()
    for flow in config.flows:
        buffering.update(tree.path(flow.source)[:-1])
    node_order = sorted(buffering, key=lambda n: (-tree.hop_count(n), n))

    # Per-node pending input segments: (times, packet indices), each
    # segment internally time-sorted.  Creations are seeded first so a
    # stable sort keeps them ahead of same-instant arrivals (creation
    # events carry the smallest seqs).
    inbox: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
    for f, flow in enumerate(config.flows):
        mask = flow_of == f
        inbox.setdefault(flow.source, []).append(
            (created[mask], np.nonzero(mask)[0])
        )

    preemptions = np.zeros(len(created), dtype=np.int64)
    total_admitted = 0
    total_released = 0
    total_preempted = 0
    drops: list[tuple[float, int, int]] = []  # (time, packet, node)
    drop_times: list[list[float]] = []
    preempt_times: list[list[float]] = []
    end = float(created.max()) if len(created) else 0.0
    any_node = False

    for node in node_order:
        segments = inbox.pop(node, None)
        if not segments:
            continue
        if len(segments) == 1:
            in_t, in_p = segments[0]
        else:
            in_t = np.concatenate([s[0] for s in segments])
            in_p = np.concatenate([s[1] for s in segments])
            order = np.argsort(in_t, kind="stable")
            in_t = in_t[order]
            in_p = in_p[order]
        if not len(in_t):
            continue
        any_node = True
        end = max(end, float(in_t[-1]))
        delays = plan.distribution_for(node).sample_batch(
            sim._rng.stream(f"delay/node-{node}"), len(in_t)
        )
        capacity = spec.capacity_for(node)
        if capacity is None:
            stats, dep_t, dep_p, occ_series = _infinite_node(
                node, in_t, in_p, delays, telemetry is not None
            )
        else:
            stats, dep_t, dep_p, occ_series, node_drops, d_times, p_times = (
                _bounded_node(
                    node, in_t, in_p, delays, capacity, rcad, preemptions,
                    telemetry is not None,
                )
            )
            drops.extend(node_drops)
            if d_times:
                drop_times.append(d_times)
            if p_times:
                preempt_times.append(p_times)
        total_admitted += stats.admitted
        total_preempted += stats.preemptions
        total_released += stats.admitted - stats.preemptions
        sim._result.node_stats[node] = stats
        if telemetry is not None:
            telemetry.series.series(f"occupancy/node-{node}").extend(*occ_series)
        if len(dep_t):
            inbox.setdefault(tree.next_hop(node), []).append((dep_t + tau, dep_p))

    # --- deliver at the sink ------------------------------------------
    segments = inbox.pop(sink, [])
    if segments:
        sink_t = np.concatenate([s[0] for s in segments])
        sink_p = np.concatenate([s[1] for s in segments])
        order = np.argsort(sink_t, kind="stable")
        sink_t = sink_t[order]
        sink_p = sink_p[order]
        end = max(end, float(sink_t[-1]))
    else:
        sink_t = np.empty(0, dtype=np.float64)
        sink_p = np.empty(0, dtype=np.int64)
    _check_horizon(sim, end)

    # --- drop records in global event order ---------------------------
    if drops:
        drops.sort(key=lambda d: d[0])
        for when, p, node in drops:
            sim._result.dropped.append(
                DroppedPacket(
                    flow_id=config.flows[flow_of[p]].flow_id,
                    packet_id=int(packet_id[p]),
                    created_at=float(created[p]),
                    dropped_at=when,
                    dropped_by=node,
                )
            )
        sim._counters.buffer_dropped = len(drops)

    _deliver_all(
        sim, sink_t, sink_p,
        created, flow_of, packet_id, routing_seq,
        hops_of_flow, prevhop_of_flow, preemptions,
    )

    # Per-node stats: the engine stamps observation_time and the final
    # zero-occupancy integral segment at finalize.
    for stats in sim._result.node_stats.values():
        stats.observation_time = end

    if telemetry is not None and any_node:
        # The probe pre-creates these metrics for every instrumented
        # node, so they exist (possibly at zero) whenever any node
        # buffered at all.
        registry = telemetry.registry
        registry.counter("sim/admitted").inc(total_admitted - total_preempted)
        registry.counter("sim/dropped").inc(len(drops))
        registry.counter("sim/preempted").inc(total_preempted)
        registry.counter("sim/released").inc(total_released)
        for name, batches in (
            ("events/drop", drop_times), ("events/preempt", preempt_times),
        ):
            series = telemetry.series.series(name)
            if batches:
                merged = np.sort(np.concatenate(batches), kind="stable")
                series.extend(merged.tolist(), [1.0] * len(merged))

    _finalize_fast(
        sim, end,
        processed=len(created) + total_admitted + total_released,
        scheduled=len(created) + 2 * total_admitted,
        skipped=total_preempted,
    )


# ----------------------------------------------------------------------
def _infinite_node(node, in_t, in_p, delays, want_telemetry):
    """Unbounded buffer: fully vectorized departures and occupancy."""
    releases = in_t + delays
    dep_order = np.argsort(releases, kind="stable")
    dep_t = releases[dep_order]
    dep_p = in_p[dep_order]
    m = len(in_t)
    ev_times = np.concatenate([in_t, releases])
    deltas = np.concatenate([np.ones(m, dtype=np.int64), np.full(m, -1, dtype=np.int64)])
    order = np.argsort(ev_times, kind="stable")
    ev_times = ev_times[order]
    deltas = deltas[order]
    occ_after = np.cumsum(deltas)
    occ_before = occ_after - deltas
    elapsed = np.diff(ev_times, prepend=ev_times[0])
    # Left-fold of per-event occ_before * elapsed, matching the
    # engine's running float accumulation order exactly.
    integral = float(np.cumsum(occ_before * elapsed)[-1]) if m else 0.0
    stats = NodeStats(
        node_id=node,
        admitted=m,
        peak_occupancy=int(occ_after.max()) if m else 0,
        occupancy_time_integral=integral,
    )
    occ_series = (
        (ev_times.tolist(), occ_after.astype(np.float64).tolist())
        if want_telemetry
        else None
    )
    return stats, dep_t, dep_p, occ_series


def _bounded_node(node, in_t, in_p, delays, capacity, rcad, preemptions, want_telemetry):
    """Bounded buffer loop: drop-tail sheds, RCAD preempts the heap head.

    With shortest-remaining-delay the victim is exactly the minimum of
    ``(release_time, entry_id)`` -- the release heap's head -- so the
    buffer needs no victim scan at all.
    """
    heap: list[tuple[float, int, int]] = []  # (release_time, entry_id, packet)
    dep_t: list[float] = []
    dep_p: list[int] = []
    occ_t: list[float] = []
    occ_v: list[float] = []
    drop_times: list[float] = []
    preempt_times: list[float] = []
    node_drops: list[tuple[float, int, int]] = []
    admitted = dropped = preempted = 0
    next_eid = 0
    peak = 0
    integral = 0.0
    last = in_t[0]
    push, pop = heapq.heappush, heapq.heappop
    times = in_t.tolist()
    pkts = in_p.tolist()
    release_times = (in_t + delays).tolist()
    for i in range(len(times)):
        t = times[i]
        while heap and heap[0][0] <= t:
            rel, _, p2 = pop(heap)
            occ = len(heap)
            if rel > last:
                integral += (occ + 1) * (rel - last)
            last = rel
            dep_t.append(rel)
            dep_p.append(p2)
            if want_telemetry:
                occ_t.append(rel)
                occ_v.append(float(occ))
        occ = len(heap)
        if t > last:
            integral += occ * (t - last)
        last = t
        if occ >= capacity:
            if rcad:
                _, _, victim = pop(heap)
                dep_t.append(t)
                dep_p.append(victim)
                preemptions[victim] += 1
                preempted += 1
                admitted += 1
                push(heap, (release_times[i], next_eid, pkts[i]))
                next_eid += 1
                if want_telemetry:
                    occ_t.append(t)
                    occ_v.append(float(len(heap)))
                    preempt_times.append(t)
            else:
                dropped += 1
                node_drops.append((t, pkts[i], node))
                if want_telemetry:
                    occ_t.append(t)
                    occ_v.append(float(occ))
                    drop_times.append(t)
        else:
            admitted += 1
            push(heap, (release_times[i], next_eid, pkts[i]))
            next_eid += 1
            if len(heap) > peak:
                peak = len(heap)
            if want_telemetry:
                occ_t.append(t)
                occ_v.append(float(len(heap)))
    while heap:
        rel, _, p2 = pop(heap)
        occ = len(heap)
        if rel > last:
            integral += (occ + 1) * (rel - last)
        last = rel
        dep_t.append(rel)
        dep_p.append(p2)
        if want_telemetry:
            occ_t.append(rel)
            occ_v.append(float(occ))
    stats = NodeStats(
        node_id=node,
        admitted=admitted,
        dropped=dropped,
        preemptions=preempted,
        peak_occupancy=peak,
        occupancy_time_integral=integral,
    )
    return (
        stats,
        np.asarray(dep_t, dtype=np.float64),
        np.asarray(dep_p, dtype=np.int64),
        (occ_t, occ_v),
        node_drops,
        drop_times,
        preempt_times,
    )
