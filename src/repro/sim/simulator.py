"""The sensor-network simulator: nodes, buffers, links, sink, adversary tap.

Execution model (paper §5):

1. each source's traffic model fixes its packets' creation times; at
   each creation time the source builds a packet (cleartext routing
   header + sealed payload) and offers it to *its own* buffer -- the
   source buffers too (the Y_0j term of Section 3.3);
2. a buffering node draws the packet's artificial delay from the delay
   plan and offers it to its buffer discipline; admitted packets are
   scheduled for release when the delay expires; under RCAD a full
   buffer instead preempts a victim, whose pending release is
   cancelled and which is transmitted immediately;
3. a released packet is transmitted to the node's routing parent,
   arriving one transmission delay (tau) later with the hop count
   incremented;
4. at the sink, the packet is delivered: the adversary tap records the
   cleartext observation, the ground-truth log records the true
   creation time (cross-checked against the decrypted payload when
   sealing is enabled).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.buffers import (
    AdmissionOutcome,
    DropTailBuffer,
    InfiniteBuffer,
    PacketBuffer,
    RcadBuffer,
)
from repro.core.metrics import PacketRecord
from repro.crypto.keys import KeyManager
from repro.crypto.payload import PayloadCodec, SensorReading
from repro.des import RngRegistry, Simulator
from repro.net.link import ConstantDelayLink, LossyLink
from repro.net.packet import Packet, RoutingHeader
from repro.sim.config import SimulationConfig
from repro.sim.results import DroppedPacket, NodeStats, SimulationResult

__all__ = ["SensorNetworkSimulator"]

# Fixed demo master key: simulations are experiments, not secure systems.
_MASTER_KEY = bytes(range(16))


@dataclass
class _TransitPacket:
    """A packet in flight, plus simulator-side bookkeeping."""

    packet: Packet
    preemptions: int = 0


@dataclass
class _NodeState:
    """Runtime state of one buffering node."""

    buffer: PacketBuffer
    stats: NodeStats
    last_occupancy_change: float = 0.0

    def track_occupancy(self, now: float, occupancy_before: int) -> None:
        elapsed = now - self.last_occupancy_change
        if elapsed > 0:
            self.stats.occupancy_time_integral += occupancy_before * elapsed
        self.last_occupancy_change = now


class SensorNetworkSimulator:
    """Runs one :class:`~repro.sim.config.SimulationConfig` to completion.

    Examples
    --------
    >>> from repro.sim import SimulationConfig
    >>> config = SimulationConfig.paper_baseline(
    ...     interarrival=10.0, case="no-delay", n_packets=5)
    >>> result = SensorNetworkSimulator(config).run()
    >>> result.delivered_count()
    20
    """

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._sim = Simulator()
        self._rng = RngRegistry(config.seed)
        self._result = SimulationResult()
        self._nodes: dict[int, _NodeState] = {}
        self._codec = (
            PayloadCodec(KeyManager(_MASTER_KEY)) if config.seal_payloads else None
        )
        if config.link_loss_probability > 0:
            self._link = LossyLink(
                delay=config.transmission_delay,
                loss_probability=config.link_loss_probability,
                rng=self._rng.stream("link-loss"),
            )
        else:
            self._link = ConstantDelayLink(delay=config.transmission_delay)
        if config.routing_policy is not None:
            self._routing = config.routing_policy
        else:
            from repro.location.policies import TreeRoutingPolicy

            self._routing = TreeRoutingPolicy(config.tree)
        self.lost_in_transit = 0
        self._next_routing_seq = 0
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation; idempotent guard against reuse."""
        if self._ran:
            raise RuntimeError("simulator instances are single-use; build a new one")
        self._ran = True
        self._schedule_creations()
        self._sim.run_until(self.config.max_sim_time)
        if self._sim.peek() != float("inf"):
            raise RuntimeError(
                f"simulation exceeded max_sim_time={self.config.max_sim_time:g}; "
                "events still pending"
            )
        self._finalize()
        return self._result

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _schedule_creations(self) -> None:
        for flow in self.config.flows:
            stream = self._rng.stream(f"traffic/flow-{flow.flow_id}")
            times = flow.traffic.creation_times(flow.n_packets, stream)
            for packet_index, created_at in enumerate(times):
                self._sim.schedule(
                    float(created_at), self._on_created, flow, packet_index
                )

    def _node_state(self, node: int) -> _NodeState:
        state = self._nodes.get(node)
        if state is None:
            state = _NodeState(
                buffer=self._make_buffer(),
                stats=NodeStats(node_id=node),
                last_occupancy_change=self._sim.now,
            )
            self._nodes[node] = state
        return state

    def _make_buffer(self) -> PacketBuffer:
        spec = self.config.buffers
        if spec.kind == "infinite":
            return InfiniteBuffer()
        if spec.kind == "drop-tail":
            assert spec.capacity is not None  # validated by BufferSpec
            return DropTailBuffer(capacity=spec.capacity)
        assert spec.capacity is not None  # validated by BufferSpec
        return RcadBuffer(capacity=spec.capacity, victim_policy=spec.victim_policy)

    # ------------------------------------------------------------------
    # packet lifecycle
    # ------------------------------------------------------------------
    def _trace(self, transit: _TransitPacket, kind: str, node: int, detail=None) -> None:
        if not self.config.record_packet_traces:
            return
        from repro.sim.tracing import PacketTrace

        key = (transit.packet.flow_id, transit.packet.packet_id)
        trace = self._result.packet_traces.get(key)
        if trace is None:
            trace = PacketTrace(flow_id=key[0], packet_id=key[1])
            self._result.packet_traces[key] = trace
        trace.add(self._sim.now, kind, node, detail)

    def _on_created(self, flow, packet_index: int) -> None:
        created_at = self._sim.now
        source = flow.source
        if self._codec is not None:
            reading_value = float(
                self._rng.stream(f"readings/flow-{flow.flow_id}").normal()
            )
            payload = self._codec.seal(
                source,
                SensorReading(
                    created_at=created_at, app_seq=packet_index, value=reading_value
                ),
            )
        else:
            payload = None
        header = RoutingHeader(
            previous_hop=source,
            origin=source,
            routing_seq=self._next_routing_seq,
            hop_count=0,
        )
        self._next_routing_seq += 1
        packet = Packet(
            header=header,
            payload=payload,
            flow_id=flow.flow_id,
            created_at=created_at,
            packet_id=packet_index,
        )
        self._routing.first_hop_state((flow.flow_id, packet_index))
        transit = _TransitPacket(packet)
        self._trace(transit, "created", source)
        self._handle_at_node(source, transit)

    def _handle_at_node(self, node: int, transit: _TransitPacket) -> None:
        """A packet materializes at ``node`` (created here or received)."""
        if node == self.config.deployment.sink:
            self._deliver(transit)
            return
        if self.config.delay_plan is None:
            # Case 1, no privacy delays: forward as soon as received.
            self._transmit(node, transit)
            return
        delay = self.config.delay_plan.distribution_for(node).sample(
            self._rng.stream(f"delay/node-{node}")
        )
        self._buffer_packet(node, transit, delay)

    def _buffer_packet(self, node: int, transit: _TransitPacket, delay: float) -> None:
        state = self._node_state(node)
        now = self._sim.now
        occupancy_before = state.buffer.occupancy
        result = state.buffer.offer(
            payload=transit,
            arrival_time=now,
            release_time=now + delay,
            rng=self._rng.stream(f"victim/node-{node}"),
        )
        state.track_occupancy(now, occupancy_before)
        if result.outcome is AdmissionOutcome.DROPPED:
            state.stats.dropped += 1
            self._trace(transit, "dropped", node)
            self._result.dropped.append(
                DroppedPacket(
                    flow_id=transit.packet.flow_id,
                    packet_id=transit.packet.packet_id,
                    created_at=transit.packet.created_at,
                    dropped_at=now,
                    dropped_by=node,
                )
            )
            return
        state.stats.admitted += 1
        assert result.entry is not None  # admitted implies an entry exists
        entry = result.entry
        self._trace(transit, "buffered", node, detail=entry.release_time)
        entry.context = self._sim.schedule(
            entry.release_time, self._on_release, node, entry.entry_id
        )
        if result.victim is not None:
            state.stats.preemptions += 1
            victim = result.victim
            if victim.context is not None:
                victim.context.cancel()
            victim_transit: _TransitPacket = victim.payload
            victim_transit.preemptions += 1
            self._trace(
                victim_transit, "preempted", node, detail=victim.release_time
            )
            # The victim leaves the buffer *now*: it was already removed
            # from the buffer's entry table by the admission; transmit it.
            self._transmit(node, victim_transit)

    def _on_release(self, node: int, entry_id: int) -> None:
        state = self._node_state(node)
        occupancy_before = state.buffer.occupancy
        entry = state.buffer.release(entry_id)
        state.track_occupancy(self._sim.now, occupancy_before)
        self._transmit(node, entry.payload)

    def _transmit(self, node: int, transit: _TransitPacket) -> None:
        packet_key = (transit.packet.flow_id, transit.packet.packet_id)
        next_hop = self._routing.next_hop(
            node, packet_key, self._rng.stream("routing")
        )
        transit.packet.header = transit.packet.header.forwarded(by_node=node)
        if self.config.record_transmissions:
            self._result.transmissions.append((self._sim.now, node, next_hop))
        self._trace(transit, "forwarded", node, detail=next_hop)
        if not self._link.delivers():
            # Lost on the air: the packet vanishes mid-path (no
            # link-layer retransmission in this model).
            self.lost_in_transit += 1
            self._trace(transit, "lost", node)
            return
        self._sim.schedule_after(
            self._link.transmission_delay(), self._handle_at_node, next_hop, transit
        )

    def _deliver(self, transit: _TransitPacket) -> None:
        now = self._sim.now
        packet = transit.packet
        if self._codec is not None:
            reading = self._codec.open(packet.payload)
            if reading.created_at != packet.created_at:
                raise RuntimeError(
                    "payload timestamp does not match simulator ground truth "
                    f"for flow {packet.flow_id} packet {packet.packet_id}"
                )
        self._trace(transit, "delivered", self.config.deployment.sink)
        self._result.observations.append(packet.observe(arrival_time=now))
        self._result.records.append(
            PacketRecord(
                flow_id=packet.flow_id,
                packet_id=packet.packet_id,
                created_at=packet.created_at,
                delivered_at=now,
                hop_count=packet.header.hop_count,
                preemptions_experienced=transit.preemptions,
            )
        )

    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        # Use the last *event* time, not the clock: run_until leaves
        # the clock at the safety horizon, which would dilute every
        # time-averaged statistic.
        end = self._sim.last_event_time
        for node, state in self._nodes.items():
            state.track_occupancy(end, state.buffer.occupancy)
            state.stats.observation_time = end
            state.stats.peak_occupancy = state.buffer.peak_occupancy
            self._result.node_stats[node] = state.stats
        self._result.lost_in_transit = self.lost_in_transit
        self._result.end_time = end
        self._result.events_processed = self._sim.events_processed
