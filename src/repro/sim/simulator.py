"""The sensor-network simulator: nodes, buffers, links, sink, adversary tap.

Execution model (paper §5):

1. each source's traffic model fixes its packets' creation times; at
   each creation time the source builds a packet (cleartext routing
   header + sealed payload) and offers it to *its own* buffer -- the
   source buffers too (the Y_0j term of Section 3.3);
2. a buffering node draws the packet's artificial delay from the delay
   plan and offers it to its buffer discipline; admitted packets are
   scheduled for release when the delay expires; under RCAD a full
   buffer instead preempts a victim, whose pending release is
   cancelled and which is transmitted immediately;
3. a released packet is transmitted to the node's routing parent,
   arriving one transmission delay (tau) later with the hop count
   incremented;
4. at the sink, the packet is delivered: the adversary tap records the
   cleartext observation, the ground-truth log records the true
   creation time (cross-checked against the decrypted payload when
   sealing is enabled).

Fault extension (``config.faults``): a :class:`repro.faults.FaultPlan`
adds Gilbert-Elliott bursty link loss, per-hop delay jitter, packet
duplication, scheduled node crash/recovery windows (with routing
failover to a backup parent), and an optional stop-and-wait link ARQ.
The fault machinery is *strictly disabled* when the plan is absent or
a no-op: the simulator then takes the exact legacy code paths and
produces bit-identical results.  Every run -- faulty or not -- ends
with a packet-conservation and clock audit
(:class:`repro.faults.audit.InvariantAuditor`), raising
:class:`repro.faults.audit.InvariantViolation` on any breach.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.core.buffers import (
    DropTailBuffer,
    InfiniteBuffer,
    PacketBuffer,
    RcadBuffer,
)
from repro.core.metrics import PacketRecord
from repro.core.privacy_core import CoreAction, TemporalPrivacyCore
from repro.crypto.keys import KeyManager
from repro.crypto.payload import PayloadCodec, SensorReading
from repro.des import BackoffTimer, RngRegistry, Simulator
from repro.faults.arq import ArqTransfer
from repro.faults.audit import ConservationCounters, InvariantAuditor
from repro.faults.injector import FaultInjector
from repro.net.link import ConstantDelayLink, LossyLink
from repro.net.packet import Packet, RoutingHeader
from repro.net.routing import backup_parents
from repro.sim.config import SimulationConfig
from repro.sim.results import DroppedPacket, NodeStats, SimulationResult
from repro.telemetry import RunTelemetry

__all__ = ["SensorNetworkSimulator"]

# Fixed demo master key: simulations are experiments, not secure systems.
_MASTER_KEY = bytes(range(16))


@dataclass(slots=True)
class _TransitPacket:
    """A packet in flight, plus simulator-side bookkeeping."""

    packet: Packet
    preemptions: int = 0


@dataclass(slots=True)
class _CopySet:
    """Arriving physical copies of one hop transmission (non-ARQ).

    Tracks how many scheduled arrivals are still in flight and whether
    any copy has been accepted, so a hop whose every copy is swallowed
    by a crashed receiver is counted lost exactly once.
    """

    sender: int
    remaining: int
    dedup_key: tuple[int, int, int]
    accepted: bool = False


@dataclass(slots=True)
class _NodeState:
    """Runtime state of one buffering node.

    The buffering/delay/preemption *policy* lives in the node's
    :class:`~repro.core.privacy_core.TemporalPrivacyCore`; this wrapper
    adds the simulator-side bookkeeping (stats, occupancy integral).
    """

    core: TemporalPrivacyCore
    stats: NodeStats
    last_occupancy_change: float = 0.0

    @property
    def buffer(self) -> PacketBuffer:
        return self.core.buffer

    def track_occupancy(self, now: float, occupancy_before: int) -> None:
        elapsed = now - self.last_occupancy_change
        if elapsed > 0:
            self.stats.occupancy_time_integral += occupancy_before * elapsed
        self.last_occupancy_change = now


class SensorNetworkSimulator:
    """Runs one :class:`~repro.sim.config.SimulationConfig` to completion.

    Examples
    --------
    >>> from repro.sim import SimulationConfig
    >>> config = SimulationConfig.paper_baseline(
    ...     interarrival=10.0, case="no-delay", n_packets=5)
    >>> result = SensorNetworkSimulator(config).run()
    >>> result.delivered_count()
    20
    """

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self._sim = Simulator()
        self._rng = RngRegistry(config.seed)
        self._result = SimulationResult()
        self._nodes: dict[int, _NodeState] = {}
        self._codec = (
            PayloadCodec(KeyManager(_MASTER_KEY)) if config.seal_payloads else None
        )
        if config.link_loss_probability > 0:
            self._link = LossyLink(
                delay=config.transmission_delay,
                loss_probability=config.link_loss_probability,
                rng=self._rng.stream("link-loss"),
            )
        else:
            self._link = ConstantDelayLink(delay=config.transmission_delay)
        if config.routing_policy is not None:
            self._routing = config.routing_policy
        else:
            from repro.location.policies import TreeRoutingPolicy

            self._routing = TreeRoutingPolicy(config.tree)
        # --- fault layer (None == strict legacy behaviour) ---
        if config.faults is not None and not config.faults.is_noop:
            self._faults: FaultInjector | None = FaultInjector(
                config.faults, self._rng
            )
            self._backups = (
                backup_parents(config.deployment, config.tree)
                if config.faults.crashes
                else {}
            )
        else:
            self._faults = None
            self._backups = {}
        self.telemetry: RunTelemetry | None = (
            RunTelemetry() if config.record_telemetry else None
        )
        self._counters = ConservationCounters()
        self._seen: dict[int, set[tuple[int, int, int]]] = {}
        self._transfers: dict[int, ArqTransfer] = {}
        self._transfer_ids = itertools.count()
        self.lost_in_transit = 0
        self._next_routing_seq = 0
        self._ran = False

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Execute the simulation; idempotent guard against reuse."""
        if self._ran:
            raise RuntimeError("simulator instances are single-use; build a new one")
        self._ran = True
        from repro.sim.fastpath import fastpath_eligible, fastpath_enabled, run_fastpath

        if (
            type(self) is SensorNetworkSimulator  # subclasses may override hooks
            and fastpath_enabled()
            and fastpath_eligible(self.config)
        ):
            # Batch replay: observable-bit-identical, order of magnitude
            # faster.  REPRO_FASTPATH=0 forces the event-driven engine.
            return run_fastpath(self)
        if self._faults is not None:
            self._schedule_crash_windows()
        self._schedule_creations()
        self._sim.run_until(self.config.max_sim_time)
        if self._sim.peek() != float("inf"):
            raise RuntimeError(
                f"simulation exceeded max_sim_time={self.config.max_sim_time:g}; "
                "events still pending"
            )
        self._finalize()
        return self._result

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _schedule_creations(self) -> None:
        for flow in self.config.flows:
            stream = self._rng.stream(f"traffic/flow-{flow.flow_id}")
            times = flow.traffic.creation_times(flow.n_packets, stream)
            for packet_index, created_at in enumerate(times):
                self._sim.schedule(
                    float(created_at), self._on_created, flow, packet_index,
                    lane=flow.source,
                )

    def _schedule_crash_windows(self) -> None:
        for window in self.config.faults.crashes:
            self._sim.schedule(window.start, self._on_crash, window.node)
            if window.end != float("inf"):
                self._sim.schedule(window.end, self._on_recover, window.node)

    def _node_state(self, node: int) -> _NodeState:
        state = self._nodes.get(node)
        if state is None:
            delay_plan = self.config.delay_plan
            state = _NodeState(
                core=TemporalPrivacyCore(
                    buffer=self._make_buffer(node),
                    delay=(
                        delay_plan.distribution_for(node)
                        if delay_plan is not None
                        else None
                    ),
                    delay_rng=self._rng.stream(f"delay/node-{node}"),
                    victim_rng=self._rng.stream(f"victim/node-{node}"),
                ),
                stats=NodeStats(node_id=node),
                last_occupancy_change=self._sim.now,
            )
            if self.telemetry is not None:
                self._attach_probe(node, state.buffer)
            self._nodes[node] = state
        return state

    def _attach_probe(self, node: int, buffer: PacketBuffer) -> None:
        """Instrument one node's buffer.

        The closure pre-resolves every metric object so the per-event
        cost is two list appends and a counter bump -- no dictionary
        lookups or allocations on the buffer's hot path.
        """
        telemetry = self.telemetry
        occupancy = telemetry.series.series(f"occupancy/node-{node}")
        registry = telemetry.registry
        counters = {
            "admit": registry.counter("sim/admitted"),
            "drop": registry.counter("sim/dropped"),
            "preempt": registry.counter("sim/preempted"),
            "release": registry.counter("sim/released"),
        }
        event_series = {
            "drop": telemetry.series.series("events/drop"),
            "preempt": telemetry.series.series("events/preempt"),
        }
        sim = self._sim

        def probe(event: str, count: int) -> None:
            now = sim.now
            occupancy.append(now, float(count))
            counters[event].inc()
            events = event_series.get(event)
            if events is not None:
                events.append(now, 1.0)

        buffer.telemetry_probe = probe

    def _make_buffer(self, node: int) -> PacketBuffer:
        spec = self.config.buffers
        capacity = spec.capacity_for(node)
        if capacity is None:
            return InfiniteBuffer()
        if spec.kind == "drop-tail":
            return DropTailBuffer(capacity=capacity)
        return RcadBuffer(capacity=capacity, victim_policy=spec.victim_policy)

    # ------------------------------------------------------------------
    # packet lifecycle
    # ------------------------------------------------------------------
    def _trace(self, transit: _TransitPacket, kind: str, node: int, detail=None) -> None:
        if not self.config.record_packet_traces:
            return
        from repro.sim.tracing import PacketTrace

        key = (transit.packet.flow_id, transit.packet.packet_id)
        trace = self._result.packet_traces.get(key)
        if trace is None:
            trace = PacketTrace(flow_id=key[0], packet_id=key[1])
            self._result.packet_traces[key] = trace
        trace.add(self._sim.now, kind, node, detail)

    def _on_created(self, flow, packet_index: int) -> None:
        created_at = self._sim.now
        source = flow.source
        if self._codec is not None:
            reading_value = float(
                self._rng.stream(f"readings/flow-{flow.flow_id}").normal()
            )
            payload = self._codec.seal(
                source,
                SensorReading(
                    created_at=created_at, app_seq=packet_index, value=reading_value
                ),
            )
        else:
            payload = None
        header = RoutingHeader(
            previous_hop=source,
            origin=source,
            routing_seq=self._next_routing_seq,
            hop_count=0,
        )
        self._next_routing_seq += 1
        packet = Packet(
            header=header,
            payload=payload,
            flow_id=flow.flow_id,
            created_at=created_at,
            packet_id=packet_index,
        )
        self._routing.first_hop_state((flow.flow_id, packet_index))
        transit = _TransitPacket(packet)
        self._counters.created += 1
        self._trace(transit, "created", source)
        self._handle_at_node(source, transit)

    def _handle_at_node(self, node: int, transit: _TransitPacket) -> None:
        """A packet materializes at ``node`` (created here or received)."""
        if node == self.config.deployment.sink:
            self._deliver(transit)
            return
        if self.config.delay_plan is None:
            # Case 1, no privacy delays: forward as soon as received.
            self._transmit(node, transit)
            return
        self._buffer_packet(node, transit)

    def _buffer_packet(self, node: int, transit: _TransitPacket) -> None:
        state = self._node_state(node)
        now = self._sim.now
        occupancy_before = state.buffer.occupancy
        result = state.core.offer(transit, now)
        state.track_occupancy(now, occupancy_before)
        if result.action is CoreAction.SHED:
            state.stats.dropped += 1
            self._counters.buffer_dropped += 1
            self._trace(transit, "dropped", node)
            self._result.dropped.append(
                DroppedPacket(
                    flow_id=transit.packet.flow_id,
                    packet_id=transit.packet.packet_id,
                    created_at=transit.packet.created_at,
                    dropped_at=now,
                    dropped_by=node,
                )
            )
            return
        state.stats.admitted += 1
        assert result.entry is not None  # admitted implies an entry exists
        entry = result.entry
        self._trace(transit, "buffered", node, detail=entry.release_time)
        entry.context = self._sim.schedule(
            entry.release_time, self._on_release, node, entry.entry_id, lane=node
        )
        if result.victim is not None:
            state.stats.preemptions += 1
            victim = result.victim
            if victim.context is not None:
                victim.context.cancel()
            victim_transit: _TransitPacket = victim.payload
            victim_transit.preemptions += 1
            self._trace(
                victim_transit, "preempted", node, detail=victim.release_time
            )
            # The victim leaves the buffer *now*: it was already removed
            # from the buffer's entry table by the admission; transmit it.
            self._transmit(node, victim_transit)

    def _on_release(self, node: int, entry_id: int) -> None:
        if self._faults is not None and self._faults.is_crashed(node):
            # Must be unreachable: crashing cancels every pending
            # release.  Counted (not silently ignored) so the auditor
            # turns any scheduling bug into a loud invariant failure.
            self._counters.crashed_releases += 1
            return
        state = self._node_state(node)
        occupancy_before = state.buffer.occupancy
        entry = state.core.release(entry_id)
        state.track_occupancy(self._sim.now, occupancy_before)
        self._transmit(node, entry.payload)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _transmit(self, node: int, transit: _TransitPacket) -> None:
        packet_key = (transit.packet.flow_id, transit.packet.packet_id)
        next_hop = self._routing.next_hop(
            node, packet_key, self._rng.stream("routing")
        )
        if (
            self._faults is not None
            and self._faults.is_crashed(next_hop)
            and next_hop != self.config.deployment.sink
        ):
            backup = self._backups.get(node)
            if backup is not None and not self._faults.is_crashed(backup):
                self._trace(transit, "failover", node, detail=backup)
                next_hop = backup
        transit.packet.header = transit.packet.header.forwarded(by_node=node)
        if self.config.record_transmissions:
            self._result.transmissions.append((self._sim.now, node, next_hop))
        self._trace(transit, "forwarded", node, detail=next_hop)
        if self._faults is None:
            # Legacy path, bit-for-bit identical to the pre-fault
            # simulator: one copy, constant delay, silent loss.
            if not self._link.delivers():
                # Lost on the air: the packet vanishes mid-path (no
                # link-layer retransmission in this model).
                self._record_unique_loss(node, transit)
                return
            self._sim.schedule_after(
                self._link.transmission_delay(), self._handle_at_node,
                next_hop, transit, lane=next_hop,
            )
            return
        # The duplicate-filter key must be pinned *now*: the header (and
        # its hop count) mutates as the accepted copy travels onward, so
        # a late duplicate would otherwise dodge the filter.
        dedup_key = (
            transit.packet.flow_id,
            transit.packet.packet_id,
            transit.packet.header.hop_count,
        )
        if self.config.faults.arq is not None:
            self._start_arq_transfer(node, next_hop, transit, dedup_key)
        else:
            self._send_copies(node, next_hop, transit, dedup_key)

    def _record_unique_loss(
        self,
        sender: int,
        transit: _TransitPacket,
        *,
        blackholed: bool = False,
        arq_failed: bool = False,
    ) -> None:
        """A unique packet (not a spare copy) vanished on the hop out of
        ``sender``; attribute the loss location to the transmitter."""
        self.lost_in_transit += 1
        self._counters.lost_in_transit += 1
        self._node_state(sender).stats.lost_in_transit += 1
        if blackholed:
            self._result.crash_blackholed += 1
        if arq_failed:
            self._result.arq_failed += 1
        self._trace(transit, "lost", sender)

    def _copy_delivers(self, sender: int) -> bool:
        """One physical copy's survival: i.i.d. link loss *and* the
        sender's Gilbert-Elliott chain must both spare it."""
        return self._link.delivers() and self._faults.link_delivers(sender)

    def _hop_delay(self) -> float:
        return self._link.transmission_delay() + self._faults.sample_jitter()

    # -- non-ARQ fault path --------------------------------------------
    def _send_copies(
        self,
        sender: int,
        receiver: int,
        transit: _TransitPacket,
        dedup_key: tuple[int, int, int],
    ) -> None:
        n_copies = 2 if self._faults.duplicates() else 1
        delays = []
        for _ in range(n_copies):
            if self._copy_delivers(sender):
                delays.append(self._hop_delay())
        if not delays:
            self._record_unique_loss(sender, transit)
            return
        copyset = _CopySet(sender=sender, remaining=len(delays), dedup_key=dedup_key)
        for delay in delays:
            self._sim.schedule_after(
                delay, self._on_copy_arrival, copyset, receiver, transit,
                lane=receiver,
            )

    def _on_copy_arrival(
        self, copyset: _CopySet, receiver: int, transit: _TransitPacket
    ) -> None:
        copyset.remaining -= 1
        if self._faults.is_crashed(receiver):
            if not copyset.accepted and copyset.remaining == 0:
                self._record_unique_loss(copyset.sender, transit, blackholed=True)
            return
        if not self._accept_at(receiver, transit, copyset.dedup_key):
            return
        copyset.accepted = True
        self._handle_at_node(receiver, transit)

    def _accept_at(
        self,
        receiver: int,
        transit: _TransitPacket,
        key: tuple[int, int, int],
    ) -> bool:
        """Duplicate filter: True if this copy is the first the (live)
        receiver hears for this (packet, hop)."""
        seen = self._seen.setdefault(receiver, set())
        if key in seen:
            self._counters.extra_copies_arrived += 1
            self._counters.duplicates_suppressed += 1
            self._result.duplicates_suppressed += 1
            self._trace(transit, "duplicate", receiver)
            return False
        seen.add(key)
        return True

    # -- ARQ fault path ------------------------------------------------
    def _start_arq_transfer(
        self,
        sender: int,
        receiver: int,
        transit: _TransitPacket,
        dedup_key: tuple[int, int, int],
    ) -> None:
        spec = self.config.faults.arq
        transfer = ArqTransfer(
            transfer_id=next(self._transfer_ids),
            sender=sender,
            receiver=receiver,
            payload=transit,
            dedup_key=dedup_key,
        )
        transfer.timer = BackoffTimer(
            self._sim, base_timeout=spec.timeout, backoff=spec.backoff
        )
        self._transfers[transfer.transfer_id] = transfer
        self._send_arq_copy(transfer)

    def _send_arq_copy(self, transfer: ArqTransfer) -> None:
        """One (re)transmission attempt: data copy + timeout timer."""
        n_copies = 2 if self._faults.duplicates() else 1
        for _ in range(n_copies):
            if self._copy_delivers(transfer.sender):
                transfer.copies_in_flight += 1
                self._sim.schedule_after(
                    self._hop_delay(), self._on_arq_data, transfer,
                    lane=transfer.receiver,
                )
        transfer.timer.start(self._on_arq_timeout, transfer)

    def _on_arq_data(self, transfer: ArqTransfer) -> None:
        transfer.copies_in_flight -= 1
        receiver = transfer.receiver
        if self._faults.is_crashed(receiver):
            # The copy dies silently; no ACK, the sender will retry --
            # unless the transfer was already abandoned and this was
            # its last hope, in which case the deferred loss lands now.
            if (
                transfer.abandoned
                and not transfer.received
                and transfer.copies_in_flight == 0
            ):
                self._record_unique_loss(
                    transfer.sender, transfer.payload, blackholed=True
                )
            return
        transit: _TransitPacket = transfer.payload
        if self._accept_at(receiver, transit, transfer.dedup_key):
            transfer.received = True
            self._handle_at_node(receiver, transit)
        # ACK every copy heard -- a duplicate means the previous ACK
        # was lost.  The ACK rides the receiver's own radio, so it
        # faces that link's loss process.
        if self._copy_delivers(receiver):
            self._sim.schedule_after(
                self._hop_delay(), self._on_arq_ack, transfer, lane=transfer.sender
            )

    def _on_arq_ack(self, transfer: ArqTransfer) -> None:
        if transfer.settled:
            return
        if self._faults.is_crashed(transfer.sender):
            return  # the crash already aborted this transfer's timer
        transfer.acked = True
        transfer.timer.cancel()
        del self._transfers[transfer.transfer_id]

    def _on_arq_timeout(self, transfer: ArqTransfer) -> None:
        if transfer.settled:
            return
        spec = self.config.faults.arq
        if transfer.attempt >= spec.max_retries:
            transfer.abandoned = True
            del self._transfers[transfer.transfer_id]
            if not transfer.received and transfer.copies_in_flight == 0:
                # Genuinely gone.  (If it *was* received -- every ACK
                # lost -- the packet lives on downstream and nothing
                # is lost but the sender's patience.  If a copy is
                # still in the air, the last arrival renders the
                # verdict instead.)
                self._record_unique_loss(
                    transfer.sender, transfer.payload, arq_failed=True
                )
            return
        transfer.attempt += 1
        transfer.retransmit_times.append(self._sim.now)
        self._result.retransmissions.append(
            (self._sim.now, transfer.sender, transfer.receiver)
        )
        self._node_state(transfer.sender).stats.retransmissions += 1
        if self.telemetry is not None:
            self.telemetry.registry.counter("sim/retransmissions").inc()
            self.telemetry.series.series("events/retransmit").append(
                self._sim.now, 1.0
            )
        self._trace(transfer.payload, "retransmit", transfer.sender,
                    detail=transfer.receiver)
        self._send_arq_copy(transfer)

    # ------------------------------------------------------------------
    # crash / recovery
    # ------------------------------------------------------------------
    def _on_crash(self, node: int) -> None:
        self._faults.mark_crashed(node)
        state = self._nodes.get(node)
        if state is not None:
            # Freeze the buffer: pending releases are cancelled, the
            # entries stay put until recovery (or strand forever).
            for entry in state.buffer.entries():
                if entry.context is not None and entry.context.pending:
                    entry.context.cancel()
        # Abort this node's outstanding ARQ transfers as a sender: a
        # dead radio can neither retransmit nor hear ACKs.
        for transfer in [
            t for t in self._transfers.values() if t.sender == node
        ]:
            transfer.abandoned = True
            transfer.timer.cancel()
            del self._transfers[transfer.transfer_id]
            if not transfer.received and transfer.copies_in_flight == 0:
                # A copy already on the air outlives its sender's
                # crash; the last arrival renders the verdict.
                self._record_unique_loss(node, transfer.payload)

    def _on_recover(self, node: int) -> None:
        self._faults.mark_recovered(node)
        state = self._nodes.get(node)
        if state is None:
            return
        now = self._sim.now
        for entry in state.buffer.entries():
            if entry.context is None or not entry.context.pending:
                # Overdue releases fire immediately on recovery; the
                # rest resume their original schedule.
                entry.context = self._sim.schedule(
                    max(entry.release_time, now),
                    self._on_release,
                    node,
                    entry.entry_id,
                    lane=node,
                )

    # ------------------------------------------------------------------
    def _deliver(self, transit: _TransitPacket) -> None:
        now = self._sim.now
        packet = transit.packet
        if self._codec is not None:
            reading = self._codec.open(packet.payload)
            if reading.created_at != packet.created_at:
                raise RuntimeError(
                    "payload timestamp does not match simulator ground truth "
                    f"for flow {packet.flow_id} packet {packet.packet_id}"
                )
        self._counters.delivered += 1
        if self.telemetry is not None:
            self.telemetry.registry.counter("sim/delivered").inc()
            self.telemetry.registry.histogram(
                f"latency/flow-{packet.flow_id}"
            ).observe(now - packet.created_at)
        self._trace(transit, "delivered", self.config.deployment.sink)
        self._result.observations.append(packet.observe(arrival_time=now))
        self._result.records.append(
            PacketRecord(
                flow_id=packet.flow_id,
                packet_id=packet.packet_id,
                created_at=packet.created_at,
                delivered_at=now,
                hop_count=packet.header.hop_count,
                preemptions_experienced=transit.preemptions,
            )
        )

    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        # Use the last *event* time, not the clock: run_until leaves
        # the clock at the safety horizon, which would dilute every
        # time-averaged statistic.
        end = self._sim.last_event_time
        for node, state in self._nodes.items():
            state.track_occupancy(end, state.buffer.occupancy)
            state.stats.observation_time = end
            state.stats.peak_occupancy = state.buffer.peak_occupancy
            self._result.node_stats[node] = state.stats
            if state.buffer.occupancy > 0:
                self._counters.stranded_in_buffer += state.buffer.occupancy
                self._counters.stranding_nodes.add(node)
        self._result.lost_in_transit = self.lost_in_transit
        self._result.stranded_in_buffer = self._counters.stranded_in_buffer
        self._result.end_time = end
        self._result.events_processed = self._sim.events_processed
        if self.telemetry is not None:
            registry = self.telemetry.registry
            registry.counter("des/events-processed").inc(self._sim.events_processed)
            registry.counter("des/events-scheduled").inc(self._sim.events_scheduled)
            registry.counter("des/events-skipped").inc(self._sim.events_skipped)
            registry.counter("sim/lost-in-transit").inc(self.lost_in_transit)
            registry.gauge("sim/end-time").set(end)
            if self._faults is not None:
                self._faults.publish_telemetry(registry)
            self._result.telemetry = self.telemetry
        if self.config.faults is not None:
            self._counters.crash_nodes = self.config.faults.crash_nodes()
        InvariantAuditor(self._counters).audit(self._result)
