"""The event-driven sensor-network simulator (paper §5).

Assembles the substrates into the paper's evaluation platform: traffic
models create packets at source nodes; every node on the routing path
buffers each packet under the configured buffer discipline and delay
plan; links impose the constant per-hop transmission delay; the sink
decrypts payloads for ground truth while the adversary tap records only
cleartext observations.

Typical use::

    from repro.sim import FlowSpec, SimulationConfig, SensorNetworkSimulator

    config = SimulationConfig.paper_baseline(interarrival=2.0)
    result = SensorNetworkSimulator(config).run()
    print(result.flow_records(flow_id=1)[:3])
"""

from repro.sim.config import BufferSpec, FlowSpec, SimulationConfig
from repro.sim.results import DroppedPacket, NodeStats, SimulationResult
from repro.sim.simulator import SensorNetworkSimulator

__all__ = [
    "FlowSpec",
    "BufferSpec",
    "SimulationConfig",
    "SensorNetworkSimulator",
    "SimulationResult",
    "NodeStats",
    "DroppedPacket",
]
