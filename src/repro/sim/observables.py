"""Observable fingerprinting: one digest per simulation's visible output.

The DES hot path gets rewritten for speed (calendar-queue engine, the
vectorized fast path of :mod:`repro.sim.fastpath`), and the contract of
every such rewrite is *observable bit-identity*: the same configuration
must produce exactly the same adversary-visible output and statistics,
down to the last float bit, as the reference event-driven engine.

:func:`observable_digest` reduces a :class:`~repro.sim.results.\
SimulationResult` to a canonical SHA-256 via the same stable encoding
the result cache uses.  The digest covers

* the adversary surface: observations, retransmission log, and (when
  recorded) the transmission log;
* ground truth: delivery records and drop records, in arrival order;
* per-node statistics including the float occupancy-time integrals --
  summation *order* matters, so a vectorized integral that accumulates
  in a different order is caught here;
* conservation counters, the end time, and the engine's processed-event
  count (a fast path must account for exactly the events the reference
  engine would have fired);
* the run telemetry (metric snapshot plus every time series), when the
  configuration recorded any.

:func:`reference_configs` pins the workload matrix the golden-digest
test locks down: the three fig2 evaluation cases, poisson traffic with
telemetry, drop-tail, alternate victim policies, constant delays (the
tie-heavy degenerate case), sealed payloads, lossy links, and the chaos
fault plans with and without ARQ.  ``tests/data/golden_observables.json``
holds the digests captured from the seed engine;
``scripts/capture_golden_observables.py`` regenerates it (only ever
legitimate for a deliberate, documented behaviour change).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.runtime.fingerprint import stable_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SimulationConfig
    from repro.sim.results import SimulationResult
    from repro.telemetry import RunTelemetry

__all__ = ["observable_view", "observable_digest", "reference_configs"]


def observable_view(result: "SimulationResult") -> dict:
    """Canonical, order-preserving view of everything a run produced."""
    view: dict = {
        "observations": [
            (o.arrival_time, o.previous_hop, o.origin, o.routing_seq, o.hop_count)
            for o in result.observations
        ],
        "records": [
            (
                r.flow_id,
                r.packet_id,
                r.created_at,
                r.delivered_at,
                r.hop_count,
                r.preemptions_experienced,
            )
            for r in result.records
        ],
        "node_stats": {
            node: (
                stats.admitted,
                stats.dropped,
                stats.preemptions,
                stats.peak_occupancy,
                stats.occupancy_time_integral,
                stats.observation_time,
                stats.lost_in_transit,
                stats.retransmissions,
            )
            for node, stats in sorted(result.node_stats.items())
        },
        "dropped": [
            (d.flow_id, d.packet_id, d.created_at, d.dropped_at, d.dropped_by)
            for d in result.dropped
        ],
        "transmissions": list(result.transmissions),
        "retransmissions": list(result.retransmissions),
        "lost_in_transit": result.lost_in_transit,
        "stranded_in_buffer": result.stranded_in_buffer,
        "duplicates_suppressed": result.duplicates_suppressed,
        "crash_blackholed": result.crash_blackholed,
        "arq_failed": result.arq_failed,
        "end_time": result.end_time,
        "events_processed": result.events_processed,
    }
    if result.telemetry is not None:
        view["telemetry"] = _telemetry_view(result.telemetry)
    return view


def _telemetry_view(telemetry: "RunTelemetry") -> dict:
    return {
        "metrics": telemetry.registry.snapshot(),
        "series": {
            series.name: (list(series.times), list(series.values))
            for series in telemetry.series
        },
    }


def observable_digest(result: "SimulationResult") -> str:
    """SHA-256 digest of :func:`observable_view`."""
    return stable_fingerprint(observable_view(result))


def reference_configs() -> dict[str, "SimulationConfig"]:
    """The pinned workload matrix for golden-digest testing.

    Small packet counts keep the whole matrix under a few seconds while
    still driving every code path: heavy RCAD preemption (interarrival
    2), light traffic, unlimited buffers, the tie-rich no-delay and
    constant-delay cases, drops, faults, ARQ, loss, and telemetry.
    """
    from dataclasses import replace

    from repro.core.delays import ConstantDelay
    from repro.core.planner import DelayPlan
    from repro.core.victim import NewestArrival, OldestArrival
    from repro.experiments.chaos import chaos_plan
    from repro.sim.config import BufferSpec, SimulationConfig

    configs: dict[str, SimulationConfig] = {}
    for case in ("no-delay", "unlimited", "rcad"):
        for interarrival in (2.0, 10.0):
            configs[f"fig2-{case}-ia{interarrival:g}"] = (
                SimulationConfig.paper_baseline(
                    interarrival=interarrival, case=case, n_packets=150
                )
            )
    configs["rcad-seed7"] = SimulationConfig.paper_baseline(
        interarrival=3.0, case="rcad", n_packets=150, seed=7
    )
    configs["poisson-rcad-telemetry"] = replace(
        SimulationConfig.paper_baseline(
            interarrival=3.0, case="rcad", n_packets=150, traffic="poisson"
        ),
        record_telemetry=True,
    )
    configs["poisson-unlimited"] = SimulationConfig.paper_baseline(
        interarrival=4.0, case="unlimited", n_packets=150, traffic="poisson"
    )
    configs["droptail"] = replace(
        SimulationConfig.paper_baseline(interarrival=2.0, case="rcad", n_packets=150),
        buffers=BufferSpec(kind="drop-tail", capacity=5),
    )
    configs["rcad-newest-victim"] = SimulationConfig.paper_baseline(
        interarrival=2.0, case="rcad", n_packets=120,
        victim_policy=NewestArrival(),
    )
    configs["rcad-oldest-victim"] = SimulationConfig.paper_baseline(
        interarrival=2.0, case="rcad", n_packets=120,
        victim_policy=OldestArrival(),
    )
    base = SimulationConfig.paper_baseline(
        interarrival=2.0, case="rcad", n_packets=120, buffer_capacity=4
    )
    configs["constant-delay"] = replace(
        base, delay_plan=DelayPlan(per_node={}, default=ConstantDelay(7.0))
    )
    configs["sealed"] = SimulationConfig.paper_baseline(
        interarrival=5.0, case="rcad", n_packets=80, seal_payloads=True
    )
    configs["lossy"] = replace(
        SimulationConfig.paper_baseline(interarrival=5.0, case="rcad", n_packets=120),
        link_loss_probability=0.2,
    )
    configs["recorded"] = replace(
        SimulationConfig.paper_baseline(interarrival=6.0, case="rcad", n_packets=100),
        record_transmissions=True,
        record_packet_traces=True,
    )
    chaos_base = SimulationConfig.paper_baseline(
        interarrival=4.0, case="rcad", n_packets=100
    )
    configs["chaos"] = chaos_base.with_faults(chaos_plan(0.8, chaos_base))
    configs["chaos-arq"] = chaos_base.with_faults(
        chaos_plan(0.5, chaos_base, arq=True)
    )
    return configs
