"""Simulation outputs: delivery logs, node statistics, drop records."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.metrics import PacketRecord
from repro.net.packet import PacketObservation
from repro.sim.tracing import PacketTrace

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import RunTelemetry

__all__ = ["NodeStats", "DroppedPacket", "SimulationResult"]


@dataclass(slots=True)
class NodeStats:
    """Per-node buffer statistics over one run."""

    node_id: int
    admitted: int = 0
    dropped: int = 0
    preemptions: int = 0
    peak_occupancy: int = 0
    occupancy_time_integral: float = 0.0
    observation_time: float = 0.0
    lost_in_transit: int = 0
    """Packets this node transmitted that never reached the next hop
    (link loss, crashed receiver, or ARQ retry exhaustion)."""
    retransmissions: int = 0
    """ARQ retransmissions this node performed as a sender."""

    @property
    def mean_occupancy(self) -> float:
        """Time-averaged buffer occupancy (packets)."""
        if self.observation_time <= 0:
            return 0.0
        return self.occupancy_time_integral / self.observation_time


@dataclass(frozen=True)
class DroppedPacket:
    """A packet lost to a full drop-tail buffer."""

    flow_id: int
    packet_id: int
    created_at: float
    dropped_at: float
    dropped_by: int


@dataclass
class SimulationResult:
    """Everything a run produced.

    ``observations`` and ``records`` are aligned index-by-index and
    sorted by arrival time: ``observations[i]`` is the adversary's view
    of the packet whose ground truth is ``records[i]``.  Keeping both
    in the interleaved arrival order preserves exactly what a stateful
    (adaptive) adversary gets to see.
    """

    observations: list[PacketObservation] = field(default_factory=list)
    records: list[PacketRecord] = field(default_factory=list)
    node_stats: dict[int, NodeStats] = field(default_factory=dict)
    dropped: list[DroppedPacket] = field(default_factory=list)
    transmissions: list[tuple[float, int, int]] = field(default_factory=list)
    """Per-hop transmission log as (time, sender, receiver), recorded
    only when the configuration sets ``record_transmissions=True``."""
    packet_traces: dict[tuple[int, int], "PacketTrace"] = field(default_factory=dict)
    """(flow_id, packet_id) -> lifecycle trace, recorded only when the
    configuration sets ``record_packet_traces=True``."""
    lost_in_transit: int = 0
    end_time: float = 0.0
    events_processed: int = 0
    retransmissions: list[tuple[float, int, int]] = field(default_factory=list)
    """ARQ retransmission log as (time, sender, receiver).  Part of the
    adversary-visible surface: a retry is a physical emission whose
    timing correlates with the original send, so adversary models may
    legitimately consume this log (unlike ``packet_traces``, which are
    god-view only)."""
    duplicates_suppressed: int = 0
    """Extra physical copies (duplication faults, ARQ re-sends of
    already-received data) discarded by receivers' duplicate filters."""
    stranded_in_buffer: int = 0
    """Packets still frozen inside crashed nodes' buffers when the
    simulation horizon closed."""
    crash_blackholed: int = 0
    """Packets that vanished because their receiver was down (subset of
    ``lost_in_transit``)."""
    arq_failed: int = 0
    """Hop transfers abandoned after exhausting ARQ retries with no
    copy ever received (subset of ``lost_in_transit``)."""
    telemetry: "RunTelemetry | None" = None
    """Instrumentation recorded during the run (occupancy series,
    latency histograms, engine counters), present only when the
    configuration sets ``record_telemetry=True``.  Derived purely from
    simulated time, so it caches and pickles with the result."""

    # ------------------------------------------------------------------
    def flow_ids(self) -> list[int]:
        """Distinct flow ids present in the delivery log."""
        return sorted({record.flow_id for record in self.records})

    def flow_indices(self, flow_id: int) -> list[int]:
        """Positions of one flow's packets within the arrival order."""
        return [i for i, record in enumerate(self.records) if record.flow_id == flow_id]

    def flow_records(self, flow_id: int) -> list[PacketRecord]:
        """One flow's delivered packets, in arrival order."""
        return [r for r in self.records if r.flow_id == flow_id]

    def flow_observations(self, flow_id: int) -> list[PacketObservation]:
        """One flow's observations, in arrival order."""
        return [
            self.observations[i] for i in self.flow_indices(flow_id)
        ]

    def delivered_count(self, flow_id: int | None = None) -> int:
        """Packets delivered (optionally restricted to one flow)."""
        if flow_id is None:
            return len(self.records)
        return len(self.flow_records(flow_id))

    def drop_count(self, flow_id: int | None = None) -> int:
        """Packets dropped (optionally restricted to one flow)."""
        if flow_id is None:
            return len(self.dropped)
        return sum(1 for d in self.dropped if d.flow_id == flow_id)

    def total_preemptions(self) -> int:
        """Preemption events across all nodes."""
        return sum(stats.preemptions for stats in self.node_stats.values())

    def total_retransmissions(self) -> int:
        """ARQ retransmission events across all nodes."""
        return len(self.retransmissions)

    def loss_by_node(self) -> dict[int, int]:
        """Per-hop loss locations: transmitting node -> packets lost.

        Sums to :attr:`lost_in_transit` (the per-node counts partition
        the global counter by the node whose outbound hop failed).
        """
        return {
            node: stats.lost_in_transit
            for node, stats in sorted(self.node_stats.items())
            if stats.lost_in_transit
        }

    def mean_latency(self, flow_id: int | None = None) -> float:
        """Average end-to-end latency, over all or one flow's packets."""
        records = self.records if flow_id is None else self.flow_records(flow_id)
        if not records:
            raise ValueError(f"no delivered packets for flow {flow_id!r}")
        return float(sum(r.latency for r in records) / len(records))
