"""Simulation configuration.

:class:`SimulationConfig` pins down everything a run needs; the
:meth:`SimulationConfig.paper_baseline` constructor reproduces the
exact Section 5.2 setup (Figure 1 topology, four periodic sources of
1000 packets, tau = 1, 1/mu = 30, k = 10) with the evaluation case --
no-delay / unlimited / RCAD -- selected by :class:`BufferSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal, Mapping

from repro.core.planner import DelayPlan, UniformPlanner
from repro.core.victim import VictimPolicy
from repro.faults.plan import FaultPlan
from repro.net.routing import RoutingTree, greedy_grid_tree
from repro.net.topology import Deployment, paper_topology
from repro.traffic.generators import PeriodicTraffic, PoissonTraffic, TrafficModel

__all__ = ["FlowSpec", "BufferSpec", "SimulationConfig"]

#: The four flows of the paper's evaluation and their hop counts.
PAPER_FLOW_LABELS = ("S1", "S2", "S3", "S4")


@dataclass(frozen=True)
class FlowSpec:
    """One source-to-sink flow."""

    flow_id: int
    source: int
    traffic: TrafficModel
    n_packets: int

    def __post_init__(self) -> None:
        if self.n_packets < 1:
            raise ValueError(f"flow needs at least 1 packet, got {self.n_packets}")


@dataclass(frozen=True)
class BufferSpec:
    """Which buffer discipline the nodes run.

    ``kind``:

    * ``"infinite"`` -- unlimited buffers (evaluation case 2);
    * ``"drop-tail"`` -- bounded, drop on full (the §4 loss model);
    * ``"rcad"`` -- bounded, preempt on full (evaluation case 3).

    ``capacity`` is required for the bounded kinds; ``victim_policy``
    (RCAD only) defaults to the paper's shortest-remaining-delay.

    ``per_node_capacity`` (bounded kinds only) overrides ``capacity``
    for the listed node ids, modelling heterogeneous hardware: nodes
    absent from the mapping keep the default ``capacity`` slots.  The
    paper's homogeneous model is the ``None`` default and takes
    identical code paths.
    """

    kind: Literal["infinite", "drop-tail", "rcad"] = "infinite"
    capacity: int | None = None
    victim_policy: VictimPolicy | None = None
    per_node_capacity: Mapping[int, int] | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("infinite", "drop-tail", "rcad"):
            raise ValueError(f"unknown buffer kind {self.kind!r}")
        if self.kind in ("drop-tail", "rcad"):
            if self.capacity is None or self.capacity < 1:
                raise ValueError(f"{self.kind} buffers need capacity >= 1")
        if self.kind != "rcad" and self.victim_policy is not None:
            raise ValueError("victim policies only apply to RCAD buffers")
        if self.per_node_capacity is not None:
            if self.kind == "infinite":
                raise ValueError(
                    "per-node capacities only apply to bounded buffers"
                )
            for node, slots in self.per_node_capacity.items():
                if slots < 1:
                    raise ValueError(
                        f"per-node capacity for node {node} must be >= 1, "
                        f"got {slots}"
                    )

    def capacity_for(self, node: int) -> int | None:
        """Buffer slots at ``node``, or None for unbounded buffers."""
        if self.kind == "infinite":
            return None
        if self.per_node_capacity is not None:
            override = self.per_node_capacity.get(node)
            if override is not None:
                return override
        return self.capacity


@dataclass
class SimulationConfig:
    """Everything one simulation run needs.

    Attributes
    ----------
    deployment, tree:
        The network and its routing tree.
    flows:
        The source flows to simulate.
    delay_plan:
        Per-node artificial delay distributions, or None for the
        no-delay baseline (nodes forward immediately; case 1).
    buffers:
        Buffer discipline for every buffering node.
    transmission_delay:
        tau, the constant per-hop transmission time.
    link_loss_probability:
        Probability that any single hop transmission is lost (0 in the
        paper's model; exposed for the robustness extensions -- lossy
        links perturb the adversary's timing picture too).  1.0 is the
        crash-equivalent link (nothing ever arrives).
    faults:
        Declarative fault plan (bursty loss, jitter, duplication, node
        crashes, link ARQ), or None for the paper's fault-free model.
        A plan whose every knob is zero is treated exactly like None:
        the simulator takes identical code paths and produces
        bit-identical results.
    routing_policy:
        Per-packet forwarding policy; None (default) follows ``tree``
        for every packet (the paper's model).  Supply a
        :class:`repro.location.policies.PhantomRoutingPolicy` for the
        source-location-privacy extension.
    record_transmissions:
        If True, every individual transmission (time, sender,
        receiver) is logged -- required by the backtracing adversary
        of :mod:`repro.location`.
    record_packet_traces:
        If True, every packet's full lifecycle (created / buffered /
        preempted / forwarded / delivered / ...) is recorded as a
        :class:`repro.sim.tracing.PacketTrace` -- the debugging view.
    record_telemetry:
        If True, the run carries a :class:`repro.telemetry.RunTelemetry`
        on its result: per-node occupancy time series, per-flow latency
        histograms, event-rate series, and engine counters.  Off by
        default; the runtime flips it on when a telemetry-enabled
        context is active (the flag participates in cache fingerprints,
        so instrumented and plain results never alias).
    seed:
        Root seed for all random streams (traffic, delays, victim
        tie-breaks): same seed, same run.
    seal_payloads:
        If True, sources encrypt payloads and the sink decrypts and
        cross-checks them (slower; exercises the full crypto path).
        Timing behaviour is identical either way.
    max_sim_time:
        Safety horizon: a run that exceeds it raises instead of
        spinning forever.
    """

    deployment: Deployment
    tree: RoutingTree
    flows: list[FlowSpec]
    delay_plan: DelayPlan | None
    buffers: BufferSpec = field(default_factory=BufferSpec)
    transmission_delay: float = 1.0
    link_loss_probability: float = 0.0
    faults: FaultPlan | None = None
    routing_policy: object | None = None
    record_transmissions: bool = False
    record_packet_traces: bool = False
    record_telemetry: bool = False
    seed: int = 0
    seal_payloads: bool = False
    max_sim_time: float = 10_000_000.0

    def __post_init__(self) -> None:
        if not self.flows:
            raise ValueError("need at least one flow")
        flow_ids = [flow.flow_id for flow in self.flows]
        if len(set(flow_ids)) != len(flow_ids):
            raise ValueError(f"duplicate flow ids: {flow_ids}")
        for flow in self.flows:
            if flow.source not in self.deployment.positions:
                raise ValueError(f"flow {flow.flow_id} source {flow.source} not deployed")
            if flow.source == self.deployment.sink:
                raise ValueError("the sink cannot be a traffic source")
        if self.transmission_delay < 0:
            raise ValueError("transmission delay must be non-negative")
        if not 0.0 <= self.link_loss_probability <= 1.0:
            raise ValueError("link loss probability must be in [0, 1]")
        if self.faults is not None:
            for window in self.faults.crashes:
                if window.node not in self.deployment.positions:
                    raise ValueError(
                        f"crash window targets undeployed node {window.node}"
                    )
                if window.node == self.deployment.sink:
                    raise ValueError("the sink cannot crash (it is the observer)")
            arq = self.faults.arq
            if arq is not None and arq.timeout <= 2 * self.transmission_delay:
                raise ValueError(
                    f"ARQ timeout {arq.timeout:g} must exceed one round trip "
                    f"(2 * tau = {2 * self.transmission_delay:g}); every "
                    "transmission would spuriously retransmit"
                )

    # ------------------------------------------------------------------
    @classmethod
    def paper_baseline(
        cls,
        interarrival: float,
        case: Literal["no-delay", "unlimited", "rcad"] = "rcad",
        n_packets: int = 1000,
        mean_delay: float = 30.0,
        buffer_capacity: int = 10,
        victim_policy: VictimPolicy | None = None,
        seed: int = 0,
        seal_payloads: bool = False,
        traffic: Literal["periodic", "poisson"] = "periodic",
    ) -> "SimulationConfig":
        """The Section 5.2 configuration.

        Parameters
        ----------
        interarrival:
            1/lambda, swept from 2 (highest load) to 20 in the paper.
        case:
            Which of the three evaluation situations to build:
            ``"no-delay"`` (case 1), ``"unlimited"`` (case 2) or
            ``"rcad"`` (case 3).
        n_packets:
            Packets per source (1000 in the paper).
        mean_delay:
            1/mu (30 in the paper).
        buffer_capacity:
            k (10 in the paper, approximating Mica-2 motes).
        traffic:
            ``"periodic"`` (the paper's sources) or ``"poisson"`` at
            the same mean rate.  Poisson arrivals put the source buffer
            in exactly the regime the §4 queueing predictions
            (M/M/infinity, M/M/k/k) speak about, which is what the
            telemetry acceptance tests compare against.
        """
        if interarrival <= 0:
            raise ValueError(f"interarrival must be positive, got {interarrival}")
        if traffic not in ("periodic", "poisson"):
            raise ValueError(f"unknown traffic model {traffic!r}")
        deployment = paper_topology()
        tree = greedy_grid_tree(deployment, width=12)

        def _traffic(index: int) -> TrafficModel:
            if traffic == "poisson":
                return PoissonTraffic(rate=1.0 / interarrival)
            # Stagger phases slightly so the four periodic sources do
            # not fire in lockstep (the paper's sources are independent
            # sensors, not synchronized clocks).
            return PeriodicTraffic(
                interval=interarrival,
                phase=interarrival * (index + 1) / len(PAPER_FLOW_LABELS),
            )

        flows = [
            FlowSpec(
                flow_id=index + 1,
                source=deployment.node_for_label(label),
                traffic=_traffic(index),
                n_packets=n_packets,
            )
            for index, label in enumerate(PAPER_FLOW_LABELS)
        ]
        if case == "no-delay":
            delay_plan = None
            buffers = BufferSpec(kind="infinite")
        elif case == "unlimited":
            delay_plan = UniformPlanner(mean_delay).plan(
                tree, {flow.source: flow.traffic.mean_rate() for flow in flows}
            )
            buffers = BufferSpec(kind="infinite")
        elif case == "rcad":
            delay_plan = UniformPlanner(mean_delay).plan(
                tree, {flow.source: flow.traffic.mean_rate() for flow in flows}
            )
            buffers = BufferSpec(
                kind="rcad", capacity=buffer_capacity, victim_policy=victim_policy
            )
        else:
            raise ValueError(f"unknown case {case!r}")
        return cls(
            deployment=deployment,
            tree=tree,
            flows=flows,
            delay_plan=delay_plan,
            buffers=buffers,
            transmission_delay=1.0,
            seed=seed,
            seal_payloads=seal_payloads,
        )

    def with_seed(self, seed: int) -> "SimulationConfig":
        """A copy of this configuration under a different seed."""
        return replace(self, seed=seed)

    def with_faults(self, faults: FaultPlan | None) -> "SimulationConfig":
        """A copy of this configuration under a different fault plan."""
        return replace(self, faults=faults)
