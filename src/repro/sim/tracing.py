"""Per-packet lifecycle tracing.

Debugging a privacy mechanism means asking "what exactly happened to
*this* packet?" -- where it was buffered, for how long, whether it was
preempted, and when each hop forwarded it.  With
``record_packet_traces=True`` in the configuration, the simulator
appends one :class:`TraceEvent` per lifecycle step to a
:class:`PacketTrace` per packet:

* ``created`` -- at the source, at the creation time;
* ``buffered`` -- admitted to a node's buffer (detail = scheduled
  release time);
* ``preempted`` -- forced out early as an RCAD victim (detail = the
  release time it would have had);
* ``dropped`` -- rejected by a full drop-tail buffer;
* ``forwarded`` -- transmitted toward the next hop (detail = receiver);
* ``lost`` -- transmission lost on the air (lossy links), swallowed by
  a crashed receiver, or abandoned after ARQ retry exhaustion;
* ``retransmit`` -- ARQ retransmission of an unacknowledged copy
  (detail = receiver);
* ``duplicate`` -- an extra physical copy suppressed by the receiving
  node's duplicate filter;
* ``failover`` -- rerouted around a crashed primary parent (detail =
  the backup parent used);
* ``delivered`` -- handed to the sink.

Traces are ground truth (the simulator's god view); they are never
exposed to adversary code.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceEvent", "PacketTrace"]

#: the legal lifecycle step names, in no particular order
EVENT_KINDS = (
    "created",
    "buffered",
    "preempted",
    "dropped",
    "forwarded",
    "lost",
    "retransmit",
    "duplicate",
    "failover",
    "delivered",
)

#: frozenset mirror of :data:`EVENT_KINDS` for O(1) membership checks
#: on the per-event validation path.
_EVENT_KIND_SET = frozenset(EVENT_KINDS)


@dataclass(frozen=True)
class TraceEvent:
    """One step in a packet's life."""

    time: float
    kind: str
    node: int
    detail: float | int | None = None

    def __post_init__(self) -> None:
        if self.kind not in _EVENT_KIND_SET:
            raise ValueError(
                f"unknown trace event kind {self.kind!r}; expected one of "
                f"{EVENT_KINDS}"
            )


@dataclass
class PacketTrace:
    """The full lifecycle of one packet."""

    flow_id: int
    packet_id: int
    events: list[TraceEvent] = field(default_factory=list)

    def add(self, time: float, kind: str, node: int, detail=None) -> None:
        """Append a lifecycle event (times must be non-decreasing)."""
        if self.events and time < self.events[-1].time - 1e-12:
            raise ValueError(
                f"trace events must be time-ordered; {time:g} after "
                f"{self.events[-1].time:g}"
            )
        self.events.append(TraceEvent(time=time, kind=kind, node=node, detail=detail))

    # ------------------------------------------------------------------
    @property
    def delivered(self) -> bool:
        """True if the packet reached the sink."""
        return any(e.kind == "delivered" for e in self.events)

    @property
    def preemption_count(self) -> int:
        """Number of times this packet was an RCAD victim."""
        return sum(1 for e in self.events if e.kind == "preempted")

    def buffering_delays(self) -> list[tuple[int, float]]:
        """(node, realized buffering delay) for every buffering stop.

        The realized delay is the gap between the ``buffered`` event
        and the following ``preempted``-or-``forwarded`` event at the
        same node.
        """
        delays = []
        pending: tuple[int, float] | None = None
        for event in self.events:
            if event.kind == "buffered":
                pending = (event.node, event.time)
            elif event.kind in ("preempted", "forwarded") and pending is not None:
                node, entered = pending
                if event.node == node:
                    delays.append((node, event.time - entered))
                    pending = None
        return delays

    def path(self) -> list[int]:
        """The node sequence the packet traversed (source first)."""
        nodes: list[int] = []
        for event in self.events:
            if event.kind in ("created", "forwarded") and (
                not nodes or nodes[-1] != event.node
            ):
                nodes.append(event.node)
            elif event.kind == "delivered":
                nodes.append(event.node)
        return nodes

    def end_to_end_latency(self) -> float:
        """Delivery time minus creation time.

        Raises
        ------
        ValueError
            If the packet was not delivered (dropped or lost).
        """
        created = next(e for e in self.events if e.kind == "created")
        for event in self.events:
            if event.kind == "delivered":
                return event.time - created.time
        raise ValueError(
            f"packet ({self.flow_id}, {self.packet_id}) was never delivered"
        )

    def render(self) -> str:
        """Human-readable one-line-per-event rendering."""
        lines = [f"packet flow={self.flow_id} id={self.packet_id}"]
        for event in self.events:
            detail = f" ({event.detail:g})" if event.detail is not None else ""
            lines.append(
                f"  t={event.time:10.3f}  {event.kind:<9} @ node {event.node}{detail}"
            )
        return "\n".join(lines)
