"""Run scenario matrices on the supervised parallel runtime.

:func:`run_suite` flattens a list of :class:`ScenarioSpec` into
self-contained cells -- one per (scenario, defense, seed) -- and maps
:func:`scenario_cell` over them with :func:`repro.analysis.sweep.sweep`,
so the ambient runtime supplies parallelism, the result cache, retries
and journal resume exactly as it does for the figure drivers.  Each
cell carries the *serialized* spec and recompiles its own combination:
cells stay pure JSON (the fabric's grid files round-trip them) and
``scenario_cell`` is a module-level importable, so external ``repro
worker`` processes can join a scenario sweep too.

Scoring follows the paper's evaluation: the defense advertises its mean
per-hop delay and buffer capacity, the matching baseline adversary
estimates every delivered packet's creation time from its arrival time
and hop count, and the scenario's privacy is the MSE of those estimates
over all flows.  Latency/delivery come from the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.analysis.sweep import sweep
from repro.core.adversary import BaselineAdversary, FlowKnowledge, NaiveAdversary
from repro.core.metrics import LatencyStats
from repro.infotheory.mmse import mse_of_estimator
from repro.runtime.context import current_runtime, run_simulation
from repro.scenarios.spec import CompiledScenario, ScenarioSpec

__all__ = [
    "ScenarioSummary",
    "scenario_cells",
    "scenario_cell",
    "run_suite",
    "render_summaries",
    "summaries_to_dict",
]


@dataclass(frozen=True)
class ScenarioSummary:
    """Per-(scenario, defense, seed) outcome of a matrix run."""

    scenario: str
    family: str
    n_nodes: int
    defense: str
    seed: int
    mse: float
    rmse: float
    mean_latency: float
    p95_latency: float
    delivery_rate: float
    delivered: int
    expected: int
    drops: int
    preemptions: int

    def to_dict(self) -> dict:
        return {
            "scenario": self.scenario,
            "family": self.family,
            "n_nodes": self.n_nodes,
            "defense": self.defense,
            "seed": self.seed,
            "mse": self.mse,
            "rmse": self.rmse,
            "mean_latency": self.mean_latency,
            "p95_latency": self.p95_latency,
            "delivery_rate": self.delivery_rate,
            "delivered": self.delivered,
            "expected": self.expected,
            "drops": self.drops,
            "preemptions": self.preemptions,
        }


def scenario_cells(specs: Sequence[ScenarioSpec]) -> list[dict]:
    """The flattened (scenario x defense x seed) matrix, as JSON cells.

    Every cell embeds the whole serialized spec plus the indices of its
    own combination, so :func:`scenario_cell` can recompile it from the
    cell alone -- the property that makes cells journal-, cache- and
    fabric-portable.
    """
    cells: list[dict] = []
    for spec in specs:
        data = spec.to_dict()
        for defense_index in range(len(spec.defenses)):
            for seed in spec.seeds:
                cells.append(
                    {
                        "spec": data,
                        "defense_index": int(defense_index),
                        "seed": int(seed),
                    }
                )
    return cells


def scenario_cell(cell: Mapping) -> dict:
    """Run and score one matrix cell; returns a JSON summary dict."""
    spec = ScenarioSpec.from_dict(cell["spec"])
    (compiled,) = spec.compile(
        defense_indices=[int(cell["defense_index"])],
        seeds=[int(cell["seed"])],
    )
    return _run_compiled(compiled)


def _score(compiled: CompiledScenario, result) -> tuple[float, float, float]:
    """(mse, mean latency, p95 latency) over all delivered packets.

    The adversary gets exactly what the defense advertises: with no
    advertised delay it falls back to the naive arrival-time estimator,
    as in the paper's case-1 evaluation.
    """
    knowledge = FlowKnowledge(
        transmission_delay=compiled.config.transmission_delay,
        mean_delay_per_hop=compiled.advertised_mean_delay,
        buffer_capacity=compiled.advertised_capacity,
        n_sources=len(compiled.config.flows),
    )
    adversary = (
        BaselineAdversary(knowledge)
        if compiled.advertised_mean_delay > 0
        else NaiveAdversary(knowledge)
    )
    estimates = adversary.estimate_all(result.observations)
    # Score over *all* flows jointly (summarize_flow is single-flow):
    # the scenario-level privacy figure is the adversary's MSE over
    # every delivered packet in the network.
    truths = [record.created_at for record in result.records]
    mse = mse_of_estimator(truths, list(estimates))
    latency = LatencyStats.from_samples(
        [record.latency for record in result.records]
    )
    return mse, latency.mean, latency.p95


def _run_compiled(compiled: CompiledScenario) -> dict:
    result = run_simulation(compiled.config)
    expected = sum(flow.n_packets for flow in compiled.config.flows)
    delivered = len(result.records)
    if delivered:
        mse, mean_latency, p95_latency = _score(compiled, result)
    else:  # a defense that drops everything still yields a summary row
        mse = mean_latency = p95_latency = float("nan")
    summary = {
        "scenario": compiled.scenario,
        "family": compiled.family,
        "n_nodes": int(compiled.n_nodes),
        "defense": compiled.defense,
        "seed": int(compiled.seed),
        "mse": float(mse),
        "rmse": float(mse) ** 0.5 if delivered else float("nan"),
        "mean_latency": float(mean_latency),
        "p95_latency": float(p95_latency),
        "delivery_rate": delivered / expected if expected else 0.0,
        "delivered": int(delivered),
        "expected": int(expected),
        "drops": int(result.drop_count()),
        "preemptions": int(result.total_preemptions()),
    }
    _publish_summary_telemetry(compiled, summary)
    return summary


def _publish_summary_telemetry(compiled: CompiledScenario, summary: dict) -> None:
    """Publish the scored summary as gauges under ``scenario/<id>``.

    Runs *after* ``run_simulation`` published the underlying run's own
    telemetry, inside the same capture, so the manifest's run order is
    identical between serial and ``--jobs N`` executions.
    """
    context = current_runtime()
    if context.telemetry is None:
        return
    from repro.telemetry import RunTelemetry

    run = RunTelemetry()
    registry = run.registry
    for name in ("mse", "mean_latency", "p95_latency", "delivery_rate"):
        registry.gauge(f"scenario/{name}").set(summary[name])
    registry.counter("scenario/delivered").inc(summary["delivered"])
    registry.counter("scenario/drops").inc(summary["drops"])
    registry.counter("scenario/preemptions").inc(summary["preemptions"])
    context.telemetry.add_run(f"scenario/{compiled.scenario_id}", run)


def run_suite(specs: Sequence[ScenarioSpec]) -> list[ScenarioSummary]:
    """Run every (scenario, defense, seed) cell through the runtime."""
    cells = scenario_cells(specs)
    values = sweep(cells, scenario_cell)
    summaries: list[ScenarioSummary] = []
    for value in values:
        if value is None:  # quarantined cell under --quarantine
            continue
        summaries.append(ScenarioSummary(**value))
    return summaries


def summaries_to_dict(summaries: Sequence[ScenarioSummary]) -> dict:
    """JSON export payload for ``repro scenarios --json``."""
    return {"summaries": [s.to_dict() for s in summaries]}


def render_summaries(summaries: Sequence[ScenarioSummary]) -> str:
    """One fixed-width table per scenario, defenses as rows."""
    if not summaries:
        return "(no scenario cells completed)"
    lines: list[str] = []
    header = (
        f"{'defense':<22} {'seed':>4} {'mse':>12} {'latency':>9} "
        f"{'p95':>9} {'delivery':>8} {'drops':>6} {'preempt':>8}"
    )
    seen: list[str] = []
    for summary in summaries:
        if summary.scenario not in seen:
            seen.append(summary.scenario)
    for scenario in seen:
        rows = [s for s in summaries if s.scenario == scenario]
        first = rows[0]
        if lines:
            lines.append("")
        lines.append(
            f"# scenario {scenario} ({first.family}, {first.n_nodes} nodes)"
        )
        lines.append(header)
        for row in rows:
            lines.append(
                f"{row.defense:<22} {row.seed:>4} {row.mse:>12,.1f} "
                f"{row.mean_latency:>9.2f} {row.p95_latency:>9.2f} "
                f"{row.delivery_rate:>7.1%} {row.drops:>6} "
                f"{row.preemptions:>8}"
            )
    return "\n".join(lines)
