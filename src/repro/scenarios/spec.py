"""Declarative, seed-deterministic scenario specifications.

A :class:`ScenarioSpec` names everything one scenario varies -- the
topology family and size, source placement, the traffic mix, the buffer
hardware model, and the list of defenses to pit against it -- and
compiles, deterministically, into concrete
:class:`~repro.sim.config.SimulationConfig` objects (one per defense x
seed).  Specs round-trip through JSON exactly: ``spec -> to_dict ->
json -> from_dict -> compile`` yields configurations whose stable
fingerprints are identical to compiling the original spec, which is
what lets the result cache, the checkpoint journal and the sweep
fabric treat spec files as the unit of reproducibility.

Three topology families:

* ``line``  -- the tandem of the paper's Sections 3-4 (``n_nodes``);
* ``grid``  -- row-major lattice with corner sink (``width x height``),
  routed by the deterministic staircase of
  :func:`~repro.net.routing.greedy_grid_tree`;
* ``random-geometric`` -- uniform placement over a square, resampled
  until connected (``n_nodes``, ``area_side``, ``radio_range``,
  ``seed``), routed by shortest paths.  Practical from 10^2 up to 10^4
  nodes -- connectivity uses the spatial-hash graph builder.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.defenses import DEFENSES, DefenseContext
from repro.net.routing import RoutingTree, greedy_grid_tree, shortest_path_tree
from repro.net.topology import (
    Deployment,
    grid_deployment,
    line_deployment,
    random_geometric_deployment,
)
from repro.sim.config import FlowSpec, SimulationConfig
from repro.traffic.generators import (
    JitteredPeriodicTraffic,
    OnOffTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    TrafficModel,
)

__all__ = [
    "TopologySpec",
    "SourceSpec",
    "TrafficSpec",
    "CapacitySpec",
    "DefenseSpec",
    "CompiledScenario",
    "ScenarioSpec",
    "load_suite",
    "parse_suite",
    "suite_to_dict",
    "example_suite",
]

TOPOLOGY_FAMILIES = ("line", "grid", "random-geometric")
PLACEMENTS = ("far", "spread", "random", "explicit")
TRAFFIC_MODELS = ("periodic", "poisson", "jittered", "onoff")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


@dataclass(frozen=True)
class TopologySpec:
    """Which network to build.

    ``family`` selects the builder; the other fields are per-family
    (``n_nodes`` for line / random-geometric, ``width``/``height`` for
    grid, ``area_side``/``radio_range``/``seed`` for random-geometric).
    """

    family: str = "grid"
    n_nodes: int | None = None
    width: int | None = None
    height: int | None = None
    area_side: float | None = None
    radio_range: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        _require(
            self.family in TOPOLOGY_FAMILIES,
            f"unknown topology family {self.family!r}; "
            f"available: {', '.join(TOPOLOGY_FAMILIES)}",
        )
        if self.family == "line":
            _require(
                self.n_nodes is not None and self.n_nodes >= 2,
                f"line topology needs n_nodes >= 2, got {self.n_nodes}",
            )
        elif self.family == "grid":
            _require(
                self.width is not None and self.width >= 1
                and self.height is not None and self.height >= 1,
                "grid topology needs width >= 1 and height >= 1, got "
                f"width={self.width} height={self.height}",
            )
            _require(
                (self.width or 0) * (self.height or 0) >= 2,
                "grid topology needs at least 2 nodes",
            )
        else:  # random-geometric
            _require(
                self.n_nodes is not None and self.n_nodes >= 2,
                f"random-geometric topology needs n_nodes >= 2, "
                f"got {self.n_nodes}",
            )
            _require(
                self.area_side is not None and self.area_side > 0,
                f"random-geometric topology needs area_side > 0, "
                f"got {self.area_side}",
            )
            _require(
                self.radio_range is not None and self.radio_range > 0,
                f"random-geometric topology needs radio_range > 0, "
                f"got {self.radio_range}",
            )

    @property
    def size(self) -> int:
        """Total node count (sink included)."""
        if self.family == "grid":
            return int(self.width * self.height)  # type: ignore[operator]
        return int(self.n_nodes)  # type: ignore[arg-type]

    def build(self) -> tuple[Deployment, RoutingTree]:
        """Deterministically build the deployment and its routing tree."""
        if self.family == "line":
            deployment = line_deployment(hops=self.n_nodes - 1)  # type: ignore[operator]
            return deployment, shortest_path_tree(deployment)
        if self.family == "grid":
            deployment = grid_deployment(width=self.width, height=self.height)  # type: ignore[arg-type]
            return deployment, greedy_grid_tree(deployment, width=self.width)  # type: ignore[arg-type]
        deployment = random_geometric_deployment(
            n_nodes=self.n_nodes,  # type: ignore[arg-type]
            area_side=self.area_side,  # type: ignore[arg-type]
            radio_range=self.radio_range,  # type: ignore[arg-type]
            rng=self.seed,
        )
        return deployment, shortest_path_tree(deployment)


@dataclass(frozen=True)
class SourceSpec:
    """How many sources to place and where.

    ``placement``:

    * ``"far"``    -- the ``count`` deepest nodes (largest hop count;
      ties toward the smaller id): the adversary's hardest case and the
      paper's flavour of long flows;
    * ``"spread"`` -- ``count`` nodes evenly spaced through the
      depth-sorted node list: a mix of near and far sources;
    * ``"random"`` -- a seeded uniform draw without replacement;
    * ``"explicit"`` -- exactly the listed ``nodes``.
    """

    count: int = 1
    placement: str = "far"
    nodes: tuple[int, ...] | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        _require(
            self.placement in PLACEMENTS,
            f"unknown placement {self.placement!r}; "
            f"available: {', '.join(PLACEMENTS)}",
        )
        if self.placement == "explicit":
            _require(
                bool(self.nodes),
                "explicit placement needs a non-empty nodes list",
            )
        else:
            _require(self.count >= 1, f"need at least 1 source, got {self.count}")
            _require(
                self.nodes is None,
                "a nodes list implies placement='explicit'",
            )

    def place(self, deployment: Deployment, tree: RoutingTree) -> list[int]:
        """The source node ids, deterministic for a given spec."""
        if self.placement == "explicit":
            for node in self.nodes:  # type: ignore[union-attr]
                _require(
                    node in deployment.positions,
                    f"explicit source {node} is not deployed",
                )
                _require(
                    node != deployment.sink,
                    f"explicit source {node} is the sink",
                )
            _require(
                len(set(self.nodes)) == len(self.nodes),  # type: ignore[arg-type]
                f"explicit sources repeat a node: {list(self.nodes)}",  # type: ignore[arg-type]
            )
            return list(self.nodes)  # type: ignore[arg-type]
        depth = tree.depths()
        candidates = [n for n in deployment.node_ids if n != deployment.sink]
        _require(
            self.count <= len(candidates),
            f"cannot place {self.count} sources on {len(candidates)} "
            "non-sink nodes",
        )
        if self.placement == "far":
            ranked = sorted(candidates, key=lambda n: (-depth[n], n))
            return sorted(ranked[: self.count])
        if self.placement == "spread":
            ranked = sorted(candidates, key=lambda n: (depth[n], n))
            if self.count == 1:
                return [ranked[len(ranked) // 2]]
            picks = np.linspace(0, len(ranked) - 1, self.count)
            return sorted({ranked[int(round(p))] for p in picks})
        rng = np.random.default_rng(self.seed)
        draw = rng.choice(len(candidates), size=self.count, replace=False)
        return sorted(candidates[i] for i in draw)


@dataclass(frozen=True)
class TrafficSpec:
    """One traffic generator of the scenario's mix.

    Sources take generators round-robin from the scenario's ``traffic``
    list, so a two-entry mix on four sources alternates models.  All
    models are normalized to the same mean rate ``1/interarrival``.
    """

    model: str = "periodic"
    interarrival: float = 8.0
    jitter: float | None = None
    burst_factor: float = 4.0

    def __post_init__(self) -> None:
        _require(
            self.model in TRAFFIC_MODELS,
            f"unknown traffic model {self.model!r}; "
            f"available: {', '.join(TRAFFIC_MODELS)}",
        )
        _require(
            self.interarrival > 0,
            f"interarrival must be positive, got {self.interarrival}",
        )
        if self.jitter is not None:
            _require(
                0 <= self.jitter < self.interarrival / 2,
                f"jitter must be in [0, interarrival/2), got {self.jitter}",
            )
            _require(
                self.model == "jittered",
                "jitter only applies to the 'jittered' model",
            )
        _require(
            self.burst_factor >= 1.0,
            f"burst factor must be at least 1, got {self.burst_factor}",
        )

    def build(self, index: int, n_sources: int) -> TrafficModel:
        """The generator for source ``index`` of ``n_sources``.

        Periodic-family phases are staggered by source index (as the
        paper's independent sensors are), so sources sharing a model
        never fire in lockstep.
        """
        phase = self.interarrival * (index + 1) / max(n_sources, 1)
        if self.model == "periodic":
            return PeriodicTraffic(interval=self.interarrival, phase=phase)
        if self.model == "poisson":
            return PoissonTraffic(rate=1.0 / self.interarrival)
        if self.model == "jittered":
            jitter = (
                self.jitter if self.jitter is not None
                else self.interarrival / 4
            )
            return JitteredPeriodicTraffic(
                interval=self.interarrival, jitter=jitter, phase=phase
            )
        # onoff: bursts at burst_factor times the mean rate with a
        # 1/burst_factor duty cycle -- same mean rate as the others.
        mean_on = 5.0 * self.interarrival
        return OnOffTraffic(
            burst_rate=self.burst_factor / self.interarrival,
            mean_on=mean_on,
            mean_off=mean_on * (self.burst_factor - 1.0),
        )


@dataclass(frozen=True)
class CapacitySpec:
    """The buffer hardware model: homogeneous or heterogeneous slots.

    ``base`` is every node's default capacity (the paper's k = 10).
    ``spread > 0`` draws a per-node offset uniformly from
    ``[-spread, +spread]`` (seeded, over node ids in sorted order, so
    the same spec always produces the same hardware), clipped to at
    least 1 slot.
    """

    base: int = 10
    spread: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        _require(self.base >= 1, f"base capacity must be >= 1, got {self.base}")
        _require(self.spread >= 0, f"spread must be >= 0, got {self.spread}")

    def per_node(self, deployment: Deployment) -> dict[int, int] | None:
        """Per-node capacities, or None for the homogeneous model."""
        if self.spread == 0:
            return None
        rng = np.random.default_rng(self.seed)
        nodes = [n for n in deployment.node_ids if n != deployment.sink]
        offsets = rng.integers(-self.spread, self.spread + 1, size=len(nodes))
        return {
            node: max(1, self.base + int(offset))
            for node, offset in zip(nodes, offsets)
        }


@dataclass(frozen=True)
class DefenseSpec:
    """A registry entry plus its parameters, as named by a spec file."""

    name: str
    params: Mapping[str, object] = field(default_factory=dict)
    label: str | None = None

    def __post_init__(self) -> None:
        _require(bool(self.name), "defense spec needs a name")
        for key in self.params:
            _require(
                isinstance(key, str),
                f"defense parameter names must be strings, got {key!r}",
            )

    @property
    def display(self) -> str:
        return self.label if self.label is not None else self.name

    def create(self):
        """Instantiate through the registry (validates name and params)."""
        return DEFENSES.create(self.name, **dict(self.params))


@dataclass(frozen=True)
class CompiledScenario:
    """One concrete runnable cell: a config plus its provenance."""

    scenario: str
    family: str
    n_nodes: int
    defense: str
    seed: int
    config: SimulationConfig
    advertised_mean_delay: float
    advertised_capacity: int | None

    @property
    def scenario_id(self) -> str:
        return f"{self.scenario}/{self.defense}/s{self.seed}"


@dataclass(frozen=True)
class ScenarioSpec:
    """One named scenario: topology x sources x traffic x defenses x seeds."""

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    sources: SourceSpec = field(default_factory=SourceSpec)
    traffic: tuple[TrafficSpec, ...] = (TrafficSpec(),)
    capacity: CapacitySpec = field(default_factory=CapacitySpec)
    defenses: tuple[DefenseSpec, ...] = (DefenseSpec(name="rcad"),)
    n_packets: int = 100
    seeds: tuple[int, ...] = (0,)
    transmission_delay: float = 1.0

    def __post_init__(self) -> None:
        _require(bool(self.name), "scenario needs a name")
        _require("/" not in self.name, "scenario names must not contain '/'")
        _require(bool(self.traffic), "scenario needs at least one traffic entry")
        _require(bool(self.defenses), "scenario needs at least one defense")
        _require(bool(self.seeds), "scenario needs at least one seed")
        _require(
            self.n_packets >= 1,
            f"n_packets must be at least 1, got {self.n_packets}",
        )
        _require(
            self.transmission_delay > 0,
            f"transmission delay must be positive, "
            f"got {self.transmission_delay}",
        )
        labels = [d.display for d in self.defenses]
        _require(
            len(set(labels)) == len(labels),
            f"defense labels repeat: {labels}; disambiguate with 'label'",
        )
        for defense in self.defenses:
            defense.create()  # fail at spec time, not mid-matrix

    # ------------------------------------------------------------------
    def compile(
        self,
        defense_indices: Sequence[int] | None = None,
        seeds: Sequence[int] | None = None,
    ) -> list[CompiledScenario]:
        """Materialize the (defense x seed) matrix into configs.

        ``defense_indices`` / ``seeds`` restrict the matrix -- that is
        how one fabric cell recompiles exactly its own combination.
        Every config gets a *fresh* defense materialization, so configs
        never share mutable routing-policy state.
        """
        deployment, tree = self.topology.build()
        source_nodes = self.sources.place(deployment, tree)
        labels = dict(deployment.labels)
        for index, node in enumerate(source_nodes):
            labels[f"S{index + 1}"] = node
        deployment.labels = labels
        flows = [
            FlowSpec(
                flow_id=index + 1,
                source=node,
                traffic=self.traffic[index % len(self.traffic)].build(
                    index, len(source_nodes)
                ),
                n_packets=self.n_packets,
            )
            for index, node in enumerate(source_nodes)
        ]
        context = DefenseContext(
            deployment=deployment,
            tree=tree,
            flow_rates={
                flow.source: flow.traffic.mean_rate() for flow in flows
            },
            capacity=self.capacity.base,
            per_node_capacity=self.capacity.per_node(deployment),
        )
        picked_defenses = (
            range(len(self.defenses))
            if defense_indices is None
            else defense_indices
        )
        picked_seeds = self.seeds if seeds is None else tuple(seeds)
        compiled: list[CompiledScenario] = []
        for defense_index in picked_defenses:
            spec = self.defenses[defense_index]
            for seed in picked_seeds:
                defense = spec.create()
                materialized = defense.materialize(context)
                config = SimulationConfig(
                    deployment=deployment,
                    tree=tree,
                    flows=flows,
                    delay_plan=materialized.delay_plan,
                    buffers=materialized.buffers,
                    routing_policy=materialized.routing_policy,
                    transmission_delay=self.transmission_delay,
                    seed=seed,
                )
                compiled.append(
                    CompiledScenario(
                        scenario=self.name,
                        family=self.topology.family,
                        n_nodes=self.topology.size,
                        defense=spec.display,
                        seed=seed,
                        config=config,
                        advertised_mean_delay=defense.advertised_mean_delay,
                        advertised_capacity=defense.advertised_capacity(
                            context
                        ),
                    )
                )
        return compiled

    # ------------------------------------------------------------------
    # JSON round-trip
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible view; ``from_dict`` inverts it exactly."""
        return {
            "name": self.name,
            "topology": _dataclass_dict(self.topology),
            "sources": _dataclass_dict(self.sources),
            "traffic": [_dataclass_dict(t) for t in self.traffic],
            "capacity": _dataclass_dict(self.capacity),
            "defenses": [_dataclass_dict(d) for d in self.defenses],
            "n_packets": self.n_packets,
            "seeds": list(self.seeds),
            "transmission_delay": self.transmission_delay,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        _require(
            not unknown,
            f"unknown scenario fields {unknown}; known: {sorted(known)}",
        )
        _require("name" in data, "scenario needs a name")
        kwargs: dict = {"name": data["name"]}
        if "topology" in data:
            kwargs["topology"] = _from_mapping(TopologySpec, data["topology"])
        if "sources" in data:
            sources = dict(data["sources"])
            if sources.get("nodes") is not None:
                sources["nodes"] = tuple(int(n) for n in sources["nodes"])
                sources.setdefault("placement", "explicit")
                sources.setdefault("count", len(sources["nodes"]))
            kwargs["sources"] = _from_mapping(SourceSpec, sources)
        if "traffic" in data:
            kwargs["traffic"] = tuple(
                _from_mapping(TrafficSpec, entry) for entry in data["traffic"]
            )
        if "capacity" in data:
            kwargs["capacity"] = _from_mapping(CapacitySpec, data["capacity"])
        if "defenses" in data:
            kwargs["defenses"] = tuple(
                _from_mapping(DefenseSpec, entry) for entry in data["defenses"]
            )
        for key in ("n_packets", "transmission_delay"):
            if key in data:
                kwargs[key] = data[key]
        if "seeds" in data:
            kwargs["seeds"] = tuple(int(s) for s in data["seeds"])
        return cls(**kwargs)


def _dataclass_dict(spec) -> dict:
    """Non-default fields of a frozen spec dataclass, JSON-ready."""
    out: dict = {}
    for f in fields(spec):
        value = getattr(spec, f.name)
        if value is None:
            continue
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, Mapping):
            value = dict(value)
        out[f.name] = value
    return out


def _from_mapping(cls, data: Mapping):
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(data) - known)
    _require(
        not unknown,
        f"unknown {cls.__name__} fields {unknown}; known: {sorted(known)}",
    )
    return cls(**dict(data))


# ----------------------------------------------------------------------
# Suite files
# ----------------------------------------------------------------------
def parse_suite(data: Mapping) -> list[ScenarioSpec]:
    """Parse a suite dict (``{"scenarios": [...]}``) into specs."""
    _require(
        isinstance(data, Mapping) and "scenarios" in data,
        "a scenario suite is an object with a 'scenarios' list",
    )
    scenarios = data["scenarios"]
    _require(
        isinstance(scenarios, Sequence) and len(scenarios) > 0,
        "'scenarios' must be a non-empty list",
    )
    specs = [ScenarioSpec.from_dict(entry) for entry in scenarios]
    names = [spec.name for spec in specs]
    _require(
        len(set(names)) == len(names),
        f"scenario names repeat: {names}",
    )
    return specs


def load_suite(path: str | Path) -> list[ScenarioSpec]:
    """Load and validate a scenario suite JSON file."""
    text = Path(path).read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"{path} is not valid JSON: {exc}")
    try:
        return parse_suite(data)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}")


def suite_to_dict(specs: Sequence[ScenarioSpec]) -> dict:
    """The inverse of :func:`parse_suite`."""
    return {"scenarios": [spec.to_dict() for spec in specs]}


def example_suite() -> list[ScenarioSpec]:
    """A small ready-to-run suite covering all three topology families.

    Used by ``repro scenarios --example`` and the CI smoke script: four
    registered defenses over a line, a grid and a random-geometric
    deployment, sized to finish in seconds.
    """
    rcad = DefenseSpec(name="rcad")
    drop_tail = DefenseSpec(name="drop-tail")
    return [
        ScenarioSpec(
            name="line-12",
            topology=TopologySpec(family="line", n_nodes=13),
            sources=SourceSpec(count=1, placement="far"),
            traffic=(TrafficSpec(model="periodic", interarrival=6.0),),
            capacity=CapacitySpec(base=8),
            defenses=(
                DefenseSpec(name="no-delay"),
                rcad,
                DefenseSpec(name="jittered-delay"),
            ),
            n_packets=40,
        ),
        ScenarioSpec(
            name="grid-8x8",
            topology=TopologySpec(family="grid", width=8, height=8),
            sources=SourceSpec(count=3, placement="far"),
            traffic=(
                TrafficSpec(model="periodic", interarrival=6.0),
                TrafficSpec(model="poisson", interarrival=8.0),
            ),
            capacity=CapacitySpec(base=10),
            defenses=(
                rcad,
                drop_tail,
                DefenseSpec(name="proportional-delay"),
            ),
            n_packets=40,
        ),
        ScenarioSpec(
            name="rg-120",
            topology=TopologySpec(
                family="random-geometric",
                n_nodes=120,
                area_side=12.0,
                radio_range=2.2,
                seed=3,
            ),
            sources=SourceSpec(count=4, placement="spread"),
            traffic=(
                TrafficSpec(model="jittered", interarrival=8.0),
                TrafficSpec(model="onoff", interarrival=10.0),
            ),
            capacity=CapacitySpec(base=10, spread=4, seed=1),
            defenses=(
                rcad,
                drop_tail,
                DefenseSpec(name="phantom", params={"walk_length": 3}),
            ),
            n_packets=30,
            seeds=(0, 1),
        ),
    ]
