"""Declarative scenario specs and the matrix runner.

A scenario names a topology family (line / grid / random-geometric),
source placement, a traffic mix, a buffer hardware model and a list of
registry defenses; :func:`run_suite` expands suites of them into
(defense x seed) matrices on the supervised parallel runtime.  See
DESIGN.md §14 and ``repro scenarios --help``.
"""

from repro.scenarios.runner import (
    ScenarioSummary,
    render_summaries,
    run_suite,
    scenario_cell,
    scenario_cells,
    summaries_to_dict,
)
from repro.scenarios.spec import (
    CapacitySpec,
    CompiledScenario,
    DefenseSpec,
    ScenarioSpec,
    SourceSpec,
    TopologySpec,
    TrafficSpec,
    example_suite,
    load_suite,
    parse_suite,
    suite_to_dict,
)

__all__ = [
    "TopologySpec",
    "SourceSpec",
    "TrafficSpec",
    "CapacitySpec",
    "DefenseSpec",
    "ScenarioSpec",
    "CompiledScenario",
    "load_suite",
    "parse_suite",
    "suite_to_dict",
    "example_suite",
    "ScenarioSummary",
    "scenario_cells",
    "scenario_cell",
    "run_suite",
    "render_summaries",
    "summaries_to_dict",
]
