"""The asyncio streaming anonymization service.

:class:`TemporalPrivacyService` applies the paper's temporal-privacy
mechanism -- exponential artificial delay with RCAD preemption under
buffer pressure -- to a *live* event stream instead of a simulated one.
Each of its shards owns a :class:`~repro.core.privacy_core.TemporalPrivacyCore`
(the exact state machine the DES simulator drives), polled by an
asyncio pump against the wall clock.

Robustness machinery, which is the point of this layer:

* a **degradation ladder** (:mod:`repro.service.ladder`): normal
  delaying -> RCAD preemption backpressure when a shard fills ->
  admission-control shedding when the global memory bound is hit, every
  transition published through telemetry;
* a **watchdog** that restarts shard pumps that died or stopped
  heartbeating;
* **crash-safe snapshots** (:mod:`repro.service.snapshot`): SIGTERM
  mid-stream persists every admitted-but-unreleased event atomically,
  and a restart restores them with original release times and
  replay-stable preemption order -- zero admitted-event loss;
* **clean drain**: shutdown stops intake (readiness flips) and lets
  every buffered event release at its scheduled time before exiting.
"""

from __future__ import annotations

import asyncio
import os
import time
import zlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable

import numpy as np

from repro.core.buffers import RcadBuffer
from repro.core.delays import ExponentialDelay
from repro.core.privacy_core import CoreAction, TemporalPrivacyCore
from repro.core.victim import ShortestRemainingDelay
from repro.service.config import ServiceConfig
from repro.service.ladder import DegradationLadder, Tier
from repro.service.snapshot import SnapshotEntry, load_snapshot, write_snapshot
from repro.telemetry import MetricsRegistry

__all__ = [
    "StreamEvent",
    "SubmitOutcome",
    "ReleaseRecord",
    "TemporalPrivacyService",
]


@dataclass(frozen=True)
class StreamEvent:
    """One event offered to the service by a client."""

    flow_id: int
    seq: int
    payload: Any = None


class SubmitOutcome(Enum):
    """What the service did with a submitted event."""

    ADMITTED = "admitted"
    ADMITTED_PREEMPT = "admitted-preempt"  # admitted by evicting a victim
    SHED = "shed"  # tier-3 admission control refused it
    REJECTED = "rejected"  # service not accepting (draining / stopped)


@dataclass(frozen=True)
class ReleaseRecord:
    """One event leaving the service (delay served, or preempted)."""

    event: StreamEvent
    shard: int
    admitted_at: float
    release_time: float
    released_at: float
    early: bool  # True for preemption victims released ahead of schedule


@dataclass
class _Admitted:
    """Buffer payload: the client event plus service bookkeeping."""

    event: StreamEvent
    admit_seq: int


@dataclass
class _Shard:
    """One shard: a privacy core plus its pump's runtime state."""

    index: int
    core: TemporalPrivacyCore
    wake: asyncio.Event = field(default_factory=asyncio.Event)
    task: asyncio.Task | None = None
    heartbeat: float = 0.0
    restarts: int = 0


class TemporalPrivacyService:
    """Long-running temporal-privacy delay service.

    Parameters
    ----------
    config:
        Static sizing/timing parameters.
    clock:
        Time source; ``time.time`` by default.  The wall clock (not the
        monotonic clock) is deliberate: scheduled release times must
        stay meaningful across a crash/restart cycle.
    on_release:
        Optional callback invoked synchronously with every
        :class:`ReleaseRecord` as it leaves the service.
    """

    def __init__(
        self,
        config: ServiceConfig,
        clock: Callable[[], float] = time.time,
        on_release: Callable[[ReleaseRecord], None] | None = None,
    ) -> None:
        self.config = config
        self._clock = clock
        self._on_release = on_release
        self.registry = MetricsRegistry()
        self.ladder = DegradationLadder(self.registry, clock)
        edges = tuple(
            config.mean_delay * f for f in (0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)
        )
        self._delay_hist = self.registry.histogram("service/added-delay", edges=edges)
        self._shards = [
            _Shard(
                index=i,
                core=TemporalPrivacyCore(
                    buffer=RcadBuffer(
                        capacity=config.shard_capacity,
                        victim_policy=ShortestRemainingDelay(),
                    ),
                    delay=ExponentialDelay.from_mean(config.mean_delay),
                    delay_rng=np.random.default_rng(
                        np.random.SeedSequence(
                            entropy=config.seed, spawn_key=(i,)
                        )
                    ),
                ),
            )
            for i in range(config.shards)
        ]
        self._buffered = 0
        self._admit_seq = 0
        self._accepting = False
        self._ready = False
        self._started = False
        self._stopping = False
        self._stopped = False
        self._watchdog_task: asyncio.Task | None = None
        #: events re-admitted from the snapshot on the last start().
        self.restored_events: list[StreamEvent] = []

    # ------------------------------------------------------------------
    # state probes (health/readiness endpoints read these)
    # ------------------------------------------------------------------
    def set_on_release(self, callback: Callable[[ReleaseRecord], None] | None) -> None:
        """Install (or clear) the release callback after construction --
        lets a load generator wire itself to a service built first."""
        self._on_release = callback

    @property
    def ready(self) -> bool:
        """True while the service accepts new events."""
        return self._ready

    @property
    def healthy(self) -> bool:
        """Liveness: started and not yet stopped (draining is healthy)."""
        return self._started and not self._stopped

    @property
    def buffered_total(self) -> int:
        """Events currently delayed across all shards."""
        return self._buffered

    @property
    def shards(self) -> tuple[_Shard, ...]:
        return tuple(self._shards)

    def _shard_index(self, flow_id: int) -> int:
        # crc32, not hash(): stable across processes (PYTHONHASHSEED)
        # so a restored event lands on the shard its snapshot came from.
        return zlib.crc32(str(flow_id).encode("utf-8")) % len(self._shards)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Restore any snapshot, start pumps and watchdog; returns the
        number of restored events."""
        if self._started:
            raise RuntimeError("service instances are single-use; build a new one")
        self._started = True
        restored = self._restore_snapshot()
        for shard in self._shards:
            shard.heartbeat = self._clock()
            shard.task = asyncio.create_task(self._pump(shard))
        self._watchdog_task = asyncio.create_task(self._watchdog())
        self._accepting = True
        self._ready = True
        self.registry.gauge("service/ready").set(1.0)
        return restored

    def _restore_snapshot(self) -> int:
        path = self.config.snapshot_path
        if path is None:
            return 0
        entries, corrupt = load_snapshot(path)
        if corrupt:
            self.registry.counter("service/snapshot-corrupt-lines").inc(corrupt)
        if not entries:
            return 0
        for snap in entries:  # already sorted by admit_seq
            event = StreamEvent(
                flow_id=snap.flow_id, seq=snap.seq, payload=snap.payload
            )
            shard = self._shards[self._shard_index(snap.flow_id)]
            shard.core.restore(
                [(_Admitted(event, snap.admit_seq), snap.arrival_time, snap.release_time)]
            )
            self._buffered += 1
            self._admit_seq = max(self._admit_seq, snap.admit_seq + 1)
            self.restored_events.append(event)
        self.registry.counter("service/snapshot-restored").inc(len(entries))
        self.registry.gauge("service/buffered").set(self._buffered)
        # The snapshot is now live state again; a stale file must never
        # be restored twice.
        os.unlink(path)
        return len(entries)

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop intake (readiness flips) and wait for every buffered
        event to release at its scheduled time; then stop.

        Returns True if the buffers emptied, False on timeout (the
        service still stops; remaining entries are snapshot on request
        via :meth:`shutdown`).
        """
        self._accepting = False
        self._ready = False
        self.registry.gauge("service/ready").set(0.0)
        deadline = None if timeout is None else self._clock() + timeout
        drained = True
        while self._buffered > 0:
            if deadline is not None and self._clock() > deadline:
                drained = False
                break
            await asyncio.sleep(self.config.drain_poll)
        await self.stop()
        return drained

    async def shutdown(self) -> int:
        """SIGTERM path: stop immediately and snapshot every buffered
        entry.  Returns the number of entries persisted."""
        self._accepting = False
        self._ready = False
        self.registry.gauge("service/ready").set(0.0)
        await self.stop()
        if self.config.snapshot_path is None:
            return 0
        return self.snapshot_now()

    def snapshot_now(self) -> int:
        """Write the crash snapshot synchronously (idempotent)."""
        entries: list[SnapshotEntry] = []
        for shard in self._shards:
            for entry in shard.core.entries():
                admitted: _Admitted = entry.payload
                entries.append(
                    SnapshotEntry(
                        flow_id=admitted.event.flow_id,
                        seq=admitted.event.seq,
                        payload=admitted.event.payload,
                        arrival_time=entry.arrival_time,
                        release_time=entry.release_time,
                        admit_seq=admitted.admit_seq,
                    )
                )
        entries.sort(key=lambda e: e.admit_seq)
        write_snapshot(self.config.snapshot_path, entries)
        self.registry.counter("service/snapshot-written").inc()
        return len(entries)

    async def stop(self) -> None:
        """Cancel pumps and watchdog; buffered entries stay in place."""
        if self._stopped:
            return
        self._stopping = True
        tasks = [s.task for s in self._shards if s.task is not None]
        if self._watchdog_task is not None:
            tasks.append(self._watchdog_task)
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)
        self._stopped = True
        self._ready = False
        self.registry.gauge("service/ready").set(0.0)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def submit(self, event: StreamEvent) -> SubmitOutcome:
        """Offer one event; returns what happened to it."""
        registry = self.registry
        registry.counter("service/submitted").inc()
        if not self._accepting:
            registry.counter("service/rejected").inc()
            return SubmitOutcome.REJECTED
        shard = self._shards[self._shard_index(event.flow_id)]
        tier = self.ladder.classify(
            shard_full=shard.core.is_full,
            global_full=self._buffered >= self.config.max_buffered_total,
        )
        self.ladder.note(tier)
        if tier is Tier.SHED:
            registry.counter("service/shed").inc()
            return SubmitOutcome.SHED
        now = self._clock()
        decision = shard.core.offer(_Admitted(event, self._admit_seq), now)
        self._admit_seq += 1
        self._buffered += 1
        registry.counter("service/admitted").inc()
        outcome = SubmitOutcome.ADMITTED
        if decision.action is CoreAction.PREEMPT:
            registry.counter("service/preempt-admits").inc()
            outcome = SubmitOutcome.ADMITTED_PREEMPT
            self._emit_release(shard, decision.victim, early=True)
        registry.gauge("service/buffered").set(self._buffered)
        shard.wake.set()
        return outcome

    def _emit_release(self, shard: _Shard, entry, early: bool) -> None:
        now = self._clock()
        admitted: _Admitted = entry.payload
        self._buffered -= 1
        self.registry.counter("service/released").inc()
        if early:
            self.registry.counter("service/released-early").inc()
        self._delay_hist.observe(now - entry.arrival_time)
        self.registry.gauge("service/buffered").set(self._buffered)
        record = ReleaseRecord(
            event=admitted.event,
            shard=shard.index,
            admitted_at=entry.arrival_time,
            release_time=entry.release_time,
            released_at=now,
            early=early,
        )
        if self._on_release is not None:
            self._on_release(record)

    # ------------------------------------------------------------------
    # pumps & watchdog
    # ------------------------------------------------------------------
    async def _pump(self, shard: _Shard) -> None:
        """Release loop of one shard: emit due entries, sleep until the
        next release or a new arrival, heartbeat every iteration.

        The loop condition (not just task cancellation) ends the pump:
        ``wait_for`` swallows a cancellation that races with a
        ``wake.set()`` from a concurrent submit, so a pump relying on
        cancellation alone can survive ``stop()`` and hang the gather.
        """
        while not self._stopping:
            shard.heartbeat = self._clock()
            for entry in shard.core.poll_due(self._clock()):
                self._emit_release(shard, entry, early=False)
            next_due = shard.core.next_release_time()
            timeout = self.config.watchdog_interval
            if next_due is not None:
                timeout = min(timeout, max(0.0, next_due - self._clock()))
            try:
                await asyncio.wait_for(shard.wake.wait(), timeout=timeout)
            except asyncio.TimeoutError:
                pass
            shard.wake.clear()

    async def _watchdog(self) -> None:
        """Restart shard pumps that died or stopped heartbeating."""
        while not self._stopping:
            await asyncio.sleep(self.config.watchdog_interval)
            if self._stopping:
                break
            now = self._clock()
            for shard in self._shards:
                task = shard.task
                died = task is None or task.done()
                stalled = (now - shard.heartbeat) > self.config.stall_timeout
                if died or stalled:
                    if task is not None and not task.done():
                        task.cancel()
                    shard.heartbeat = now  # fresh grace period
                    shard.task = asyncio.create_task(self._pump(shard))
                    shard.restarts += 1
                    self.registry.counter("service/watchdog-restarts").inc()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot for reports and the CLI summary."""
        snapshot = self.registry.snapshot()
        return {
            "counters": snapshot["counters"],
            "buffered": self._buffered,
            "tier": int(self.ladder.tier),
            "tier_transitions": len(self.ladder.transitions),
            "shard_restarts": [s.restarts for s in self._shards],
        }
