"""Observability endpoints: Prometheus text exposition plus probes.

The container image has no HTTP framework, so this is a deliberately
tiny HTTP/1.0-style server on raw asyncio streams.  It serves exactly
three read-only paths:

* ``/metrics``  -- Prometheus text exposition (version 0.0.4) of the
  service's :class:`~repro.telemetry.MetricsRegistry`;
* ``/healthz``  -- liveness: 200 while the event loop and shard pumps
  are up (draining is still healthy), 503 after stop;
* ``/readyz``   -- readiness: 200 only while the service accepts new
  events; flips to 503 the moment a drain or shutdown begins, so a
  load balancer stops routing before intake actually closes.

Metric names are sanitized for Prometheus (``service/tier`` ->
``repro_service_tier``); histograms expose cumulative ``_bucket``
series with ``le`` labels plus ``_sum`` and ``_count``, exactly the
shape ``prometheus_client`` would emit.
"""

from __future__ import annotations

import asyncio
import re

from repro.telemetry import MetricsRegistry

__all__ = ["render_prometheus", "MetricsServer"]

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value)) if value != int(value) else str(int(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry snapshot as Prometheus text exposition."""
    snapshot = registry.snapshot()
    lines: list[str] = []
    for name, value in snapshot["counters"].items():
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snapshot["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_fmt(value)}")
    for name, data in snapshot["histograms"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for edge, count in zip(data["edges"], data["counts"]):
            cumulative += count
            lines.append(f'{prom}_bucket{{le="{_fmt(edge)}"}} {cumulative}')
        cumulative += data["counts"][-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {_fmt(data['sum'])}")
        lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + "\n"


class MetricsServer:
    """Serves /metrics, /healthz, and /readyz for one service instance."""

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0) -> None:
        self._service = service
        self._host = host
        self._port = port
        self._server: asyncio.Server | None = None

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port=0)."""
        if self._server is None:
            raise RuntimeError("server not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, host=self._host, port=self._port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _respond(self, path: str) -> tuple[int, str, str]:
        service = self._service
        if path == "/metrics":
            return 200, "text/plain; version=0.0.4", render_prometheus(service.registry)
        if path == "/healthz":
            if service.healthy:
                return 200, "text/plain", "ok\n"
            return 503, "text/plain", "stopped\n"
        if path == "/readyz":
            if service.ready:
                return 200, "text/plain", "ready\n"
            return 503, "text/plain", "draining\n"
        return 404, "text/plain", "not found\n"

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            parts = request_line.decode("latin-1").split()
            path = parts[1] if len(parts) >= 2 else "/"
            # Drain headers so well-behaved clients are not reset.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            status, content_type, body = self._respond(path)
            reason = {200: "OK", 404: "Not Found", 503: "Service Unavailable"}[status]
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass
