"""Service benchmark: sustained throughput, added-delay percentiles,
and per-tier shed rates.

Produces the dict committed as ``benchmarks/results/BENCH_service.json``
and printed by ``repro serve --bench``.  Two phases run back to back on
fresh service instances:

* **steady**: Poisson arrivals sized so the global bound is never hit
  -- measures the happy-path event rate and the added-delay
  distribution (p50/p99 should track the configured exponential);
* **overload**: Markov-modulated bursts with per-burst rate far above
  the drain rate -- exercises tiers 2 and 3 and reports the shed and
  preemption fractions.
"""

from __future__ import annotations

import time

import numpy as np

from repro.service.config import ServiceConfig
from repro.service.loadgen import ServiceLoadGenerator
from repro.service.server import TemporalPrivacyService
from repro.traffic import MarkovOnOffTraffic, PoissonTraffic

__all__ = ["run_service_bench"]


def _percentiles(values: list[float]) -> dict:
    if not values:
        return {"p50": None, "p99": None, "mean": None}
    arr = np.asarray(values)
    return {
        "p50": float(np.percentile(arr, 50)),
        "p99": float(np.percentile(arr, 99)),
        "mean": float(arr.mean()),
    }


async def _run_phase(
    config: ServiceConfig, model, n_events: int, seed: int
) -> dict:
    service = TemporalPrivacyService(config)
    # 8 flows cover both bench shard counts under the crc32 shard hash
    # (small consecutive ids are NOT uniform mod shards).
    gen = ServiceLoadGenerator(service, model, flows=8, seed=seed)
    service.set_on_release(gen.on_release)
    await service.start()
    start = time.perf_counter()
    report = await gen.drive(n_events)
    await service.drain(timeout=60.0)
    elapsed = time.perf_counter() - start
    counters = service.registry.snapshot()["counters"]
    submitted = report.submitted
    return {
        "events": submitted,
        "wall_seconds": round(elapsed, 4),
        "events_per_sec": round(submitted / report.wall_time, 1)
        if report.wall_time > 0
        else None,
        "added_delay": {
            "scheduled": _percentiles(report.added_delays(early=False)),
            "preempted": _percentiles(report.added_delays(early=True)),
        },
        "admitted": report.admitted,
        "released": len(report.releases),
        "shed": report.shed,
        "shed_rate": round(report.shed / submitted, 4) if submitted else 0.0,
        "preempt_rate": round(
            counters.get("service/preempt-admits", 0) / submitted, 4
        )
        if submitted
        else 0.0,
        "tier_events": {
            tier: counters.get(f"service/tier-{tier}-events", 0)
            for tier in ("normal", "preempt", "shed")
        },
        "tier_transitions": counters.get("service/tier-transitions", 0),
    }


async def run_service_bench(
    n_events: int = 2000, mean_delay: float = 0.05, seed: int = 0
) -> dict:
    """Run both phases; returns the BENCH_service.json payload."""
    steady_cfg = ServiceConfig(
        shards=4, shard_capacity=256, max_buffered_total=1024, mean_delay=mean_delay,
        seed=seed,
    )
    # Steady phase: offered rate well inside the memory budget.
    steady_model = PoissonTraffic(rate=2000.0)
    steady = await _run_phase(steady_cfg, steady_model, n_events, seed)

    # Overload phase: tiny shards + hot bursts.  The global bound sits
    # between the per-shard capacity and the summed slots (8 < 15 < 16)
    # so both degradation tiers trigger: a momentarily hotter shard
    # fills and preempts (tier 2) while total occupancy is still legal,
    # and the global bound sheds (tier 3) when both shards are loaded.
    overload_cfg = ServiceConfig(
        shards=2, shard_capacity=8, max_buffered_total=15, mean_delay=mean_delay * 4,
        seed=seed,
    )
    overload_model = MarkovOnOffTraffic(
        burst_rate=5000.0, mean_on=0.02, mean_off=0.01, base_rate=50.0
    )
    overload = await _run_phase(overload_cfg, overload_model, n_events, seed + 1)

    return {
        "bench": "service",
        "config": {
            "n_events_per_phase": n_events,
            "steady": {
                "shards": steady_cfg.shards,
                "shard_capacity": steady_cfg.shard_capacity,
                "max_buffered_total": steady_cfg.max_buffered_total,
                "mean_delay": steady_cfg.mean_delay,
                "arrival": "poisson(2000/s)",
            },
            "overload": {
                "shards": overload_cfg.shards,
                "shard_capacity": overload_cfg.shard_capacity,
                "max_buffered_total": overload_cfg.max_buffered_total,
                "mean_delay": overload_cfg.mean_delay,
                "arrival": "markov-on-off(burst=5000/s, on=20ms, off=10ms, base=50/s)",
            },
        },
        "steady": steady,
        "overload": overload,
    }
