"""Closed-loop load generator for the streaming service.

Reuses :mod:`repro.traffic` to shape arrivals: any
:class:`~repro.traffic.TrafficModel` (Poisson for steady load, the
Markov-modulated on/off model for bursts) supplies inter-arrival gaps,
which the generator plays back against the wall clock with asyncio
pacing.  Events round-robin over a set of synthetic flows so every
shard sees traffic.

The loop is *closed*: the generator tracks every submit outcome and
every release callback, so a run report can assert conservation
(admitted == released + still buffered) rather than infer it from
counters alone.
"""

from __future__ import annotations

import asyncio
from collections import Counter as TallyCounter
from dataclasses import dataclass, field

import numpy as np

from repro.service.server import (
    ReleaseRecord,
    StreamEvent,
    SubmitOutcome,
    TemporalPrivacyService,
)
from repro.traffic import TrafficModel

__all__ = ["LoadReport", "ServiceLoadGenerator"]


@dataclass
class LoadReport:
    """What one load-generation run observed."""

    submitted: int = 0
    outcomes: TallyCounter = field(default_factory=TallyCounter)
    releases: list[ReleaseRecord] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def admitted(self) -> int:
        return self.outcomes.get(SubmitOutcome.ADMITTED, 0) + self.outcomes.get(
            SubmitOutcome.ADMITTED_PREEMPT, 0
        )

    @property
    def shed(self) -> int:
        return self.outcomes.get(SubmitOutcome.SHED, 0)

    def added_delays(self, early: bool | None = None) -> list[float]:
        """Observed added delay per release; filter by ``early`` if given."""
        return [
            r.released_at - r.admitted_at
            for r in self.releases
            if early is None or r.early is early
        ]


class ServiceLoadGenerator:
    """Streams a traffic model's arrival process into a service.

    Parameters
    ----------
    service:
        The target service.  Its ``on_release`` callback must be this
        generator's :meth:`on_release` for the loop to close; the
        :meth:`run` helper wires that up for you when it builds the
        service itself.
    model:
        Inter-arrival shape; gaps are divided by ``speedup`` so a
        simulation-time model can be replayed faster in wall time.
    flows:
        Number of synthetic flow ids to round-robin over.
    speedup:
        Wall-clock acceleration factor (2.0 = twice as fast).
    """

    def __init__(
        self,
        service: TemporalPrivacyService,
        model: TrafficModel,
        flows: int = 8,
        speedup: float = 1.0,
        seed: int = 0,
    ) -> None:
        if flows < 1:
            raise ValueError(f"flows must be at least 1, got {flows}")
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        self._service = service
        self._model = model
        self._flows = flows
        self._speedup = speedup
        self._seed = seed
        self.report = LoadReport()

    def on_release(self, record: ReleaseRecord) -> None:
        self.report.releases.append(record)

    async def drive(self, n_events: int, clock=None) -> LoadReport:
        """Submit ``n_events`` paced by the traffic model; returns the
        report (which keeps accumulating release callbacks afterwards,
        until the service drains)."""
        clock = clock if clock is not None else asyncio.get_event_loop().time
        rng = np.random.default_rng(self._seed)
        times = self._model.creation_times(n_events, rng) / self._speedup
        start = clock()
        seqs = [0] * self._flows
        for i, due in enumerate(times):
            delay = start + float(due) - clock()
            if delay > 0:
                await asyncio.sleep(delay)
            flow = i % self._flows
            event = StreamEvent(flow_id=flow, seq=seqs[flow])
            seqs[flow] += 1
            outcome = self._service.submit(event)
            self.report.submitted += 1
            self.report.outcomes[outcome] += 1
            # Closed loop: yield so pumps run even under a zero-gap burst.
            if delay <= 0:
                await asyncio.sleep(0)
        self.report.wall_time = clock() - start
        return self.report
