"""Configuration for the streaming anonymization service."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Static parameters of one :class:`~repro.service.server.TemporalPrivacyService`.

    Attributes
    ----------
    shards:
        Number of independent buffer shards; flows are hashed onto
        shards, so per-flow ordering is preserved while unrelated flows
        never contend.
    shard_capacity:
        RCAD buffer slots per shard.  A full shard preempts (tier 2 of
        the degradation ladder) instead of dropping.
    max_buffered_total:
        Global bound on buffered events across all shards -- the
        service's memory budget expressed in entries.  At or above the
        bound new arrivals are shed with explicit accounting (tier 3).
    mean_delay:
        Mean of the exponential artificial delay, in seconds (the
        service's wall-clock analogue of the paper's 1/mu).
    seed:
        Root seed for the per-shard delay streams.
    snapshot_path:
        Where the crash-safe snapshot of buffered entries is written on
        SIGTERM and restored from on start; ``None`` disables
        snapshotting.
    watchdog_interval:
        Period of the stalled-shard watchdog, and the maximum time a
        shard pump sleeps between heartbeats.
    stall_timeout:
        A shard whose pump has not heartbeat for this long is declared
        stalled and restarted.
    drain_poll:
        Polling period while waiting for buffers to empty during a
        clean drain.
    """

    shards: int = 4
    shard_capacity: int = 128
    max_buffered_total: int = 512
    mean_delay: float = 0.5
    seed: int = 0
    snapshot_path: str | Path | None = None
    watchdog_interval: float = 0.25
    stall_timeout: float = 2.0
    drain_poll: float = 0.02

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be at least 1, got {self.shards}")
        if self.shard_capacity < 1:
            raise ValueError(
                f"shard_capacity must be at least 1, got {self.shard_capacity}"
            )
        if self.max_buffered_total < 1:
            raise ValueError(
                f"max_buffered_total must be at least 1, got {self.max_buffered_total}"
            )
        if self.mean_delay <= 0:
            raise ValueError(f"mean_delay must be positive, got {self.mean_delay}")
        if self.watchdog_interval <= 0 or self.stall_timeout <= 0:
            raise ValueError("watchdog_interval and stall_timeout must be positive")
        if self.stall_timeout <= self.watchdog_interval:
            raise ValueError(
                "stall_timeout must exceed watchdog_interval "
                f"({self.stall_timeout} <= {self.watchdog_interval})"
            )
        if self.drain_poll <= 0:
            raise ValueError(f"drain_poll must be positive, got {self.drain_poll}")
