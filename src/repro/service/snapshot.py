"""Crash-safe snapshot of buffered (not-yet-released) entries.

On SIGTERM the service writes every admitted-but-unreleased entry to a
single snapshot file; on the next start it restores them, so a restart
loses **zero admitted events** and every restored entry keeps its
original scheduled release time (a packet is never released early
because of a crash).

The file reuses the checkpoint journal's framing
(:mod:`repro.runtime.journal`): JSON lines, one header plus one line
per entry, each entry's pickled body guarded by a SHA-256 checksum.
Unlike the journal, the snapshot is written *atomically*: the lines go
to a temp file that is fsynced and then ``os.replace``\\ d over the
target, so a crash during snapshotting leaves the previous snapshot
(or none) -- never a torn file.  Corrupt lines on load are counted and
skipped, mirroring the journal's failure policy.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Sequence

__all__ = ["SNAPSHOT_VERSION", "SnapshotEntry", "write_snapshot", "load_snapshot"]

#: Bump to orphan existing snapshot files on format changes.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class SnapshotEntry:
    """One buffered event as persisted across a restart.

    ``admit_seq`` is the service-wide admission sequence number; restore
    re-admits entries in ascending ``admit_seq`` so per-shard entry ids
    are renumbered in original admission order and preemption
    tie-breaking replays identically.
    """

    flow_id: int
    seq: int
    payload: Any
    arrival_time: float
    release_time: float
    admit_seq: int


def write_snapshot(
    path: str | Path, entries: Sequence[SnapshotEntry]
) -> Path:
    """Atomically persist ``entries``; returns the snapshot path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        header = {
            "kind": "header",
            "version": SNAPSHOT_VERSION,
            "n_entries": len(entries),
        }
        handle.write(json.dumps(header) + "\n")
        for entry in entries:
            data = pickle.dumps(
                (
                    entry.flow_id,
                    entry.seq,
                    entry.payload,
                    entry.arrival_time,
                    entry.release_time,
                    entry.admit_seq,
                ),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            record = {
                "kind": "entry",
                "sha": hashlib.sha256(data).hexdigest(),
                "data": base64.b64encode(data).decode("ascii"),
            }
            handle.write(json.dumps(record) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_snapshot(path: str | Path) -> tuple[list[SnapshotEntry], int]:
    """Load and verify a snapshot.

    Returns ``(entries, corrupt_lines)`` with entries sorted by
    ``admit_seq``.  A missing file yields ``([], 0)``.  Lines failing
    JSON parsing, checksum verification, or unpickling are counted and
    skipped rather than raised -- the atomic write makes them
    improbable, but a snapshot must never be a new crash loop.
    """
    path = Path(path)
    if not path.is_file():
        return [], 0
    entries: list[SnapshotEntry] = []
    corrupt = 0
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return [], 1
    for line in lines:
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            if record.get("kind") != "entry":
                continue  # header / future record kinds
            data = base64.b64decode(record["data"], validate=True)
            if hashlib.sha256(data).hexdigest() != record["sha"]:
                raise ValueError("checksum mismatch")
            flow_id, seq, payload, arrival_time, release_time, admit_seq = (
                pickle.loads(data)
            )
            entries.append(
                SnapshotEntry(
                    flow_id=flow_id,
                    seq=seq,
                    payload=payload,
                    arrival_time=float(arrival_time),
                    release_time=float(release_time),
                    admit_seq=int(admit_seq),
                )
            )
        except Exception:
            corrupt += 1
    entries.sort(key=lambda e: e.admit_seq)
    return entries, corrupt
