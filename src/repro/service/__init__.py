"""Streaming temporal-privacy service.

Wraps the clock-agnostic :class:`~repro.core.privacy_core.TemporalPrivacyCore`
(the same state machine the DES simulator drives) in a long-running
asyncio service: sharded per-flow buffers, a tiered degradation ladder
(delay -> preempt -> shed), Prometheus metrics with health/readiness
probes, a stalled-shard watchdog, and crash-safe snapshot/restore so a
SIGTERM mid-stream loses no admitted event.  See DESIGN.md section 10.
"""

from repro.service.config import ServiceConfig
from repro.service.http import MetricsServer, render_prometheus
from repro.service.ladder import DegradationLadder, Tier
from repro.service.loadgen import LoadReport, ServiceLoadGenerator
from repro.service.server import (
    ReleaseRecord,
    StreamEvent,
    SubmitOutcome,
    TemporalPrivacyService,
)
from repro.service.snapshot import SnapshotEntry, load_snapshot, write_snapshot

__all__ = [
    "ServiceConfig",
    "Tier",
    "DegradationLadder",
    "StreamEvent",
    "SubmitOutcome",
    "ReleaseRecord",
    "TemporalPrivacyService",
    "MetricsServer",
    "render_prometheus",
    "ServiceLoadGenerator",
    "LoadReport",
    "SnapshotEntry",
    "write_snapshot",
    "load_snapshot",
]
