"""The tiered degradation ladder.

Under overload the service does not fail abruptly; it walks down a
ladder of explicitly accounted degradation tiers:

1. **NORMAL** -- free slot available: the arrival gets its full sampled
   exponential delay (the paper's baseline mechanism).
2. **PREEMPT** -- the target shard is full: RCAD preemption acts as
   backpressure.  The arrival is still admitted, but a victim (shortest
   remaining delay, deterministic tie-break) is released early.  The
   effective delay rate adapts exactly as Section 5 of the paper
   prescribes for resource-limited buffers.
3. **SHED** -- the global memory bound is hit: the arrival is refused
   outright, with explicit shed accounting.  Admission control is the
   last rung because a shed event loses data, whereas preemption only
   loses delay (and therefore privacy margin).

Every decision notes its tier; transitions between tiers are counted,
timestamped, and published through the metrics registry, so overload
behaviour is observable rather than inferred -- shedding and preemption
are themselves a timing side channel, and operators need to see when
the service enters the regimes that leak.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Callable

from repro.telemetry import MetricsRegistry

__all__ = ["Tier", "DegradationLadder"]


class Tier(IntEnum):
    """Degradation tiers, ordered from healthy to load-shedding."""

    NORMAL = 1
    PREEMPT = 2
    SHED = 3


class DegradationLadder:
    """Tracks the current tier and publishes transitions.

    The tier is a pure function of buffer state at each admission
    (global bound hit -> SHED, shard full -> PREEMPT, else NORMAL);
    the ladder records when consecutive decisions land on different
    rungs.
    """

    def __init__(self, registry: MetricsRegistry, clock: Callable[[], float]) -> None:
        self._registry = registry
        self._clock = clock
        self.tier = Tier.NORMAL
        #: (time, from_tier, to_tier) history of transitions.
        self.transitions: list[tuple[float, Tier, Tier]] = []
        registry.gauge("service/tier").set(int(self.tier))

    @staticmethod
    def classify(shard_full: bool, global_full: bool) -> Tier:
        """Tier implied by buffer state *before* the admission."""
        if global_full:
            return Tier.SHED
        if shard_full:
            return Tier.PREEMPT
        return Tier.NORMAL

    def note(self, tier: Tier) -> None:
        """Record one admission decision's tier; publish a transition
        if the rung changed."""
        self._registry.counter(f"service/tier-{tier.name.lower()}-events").inc()
        if tier is not self.tier:
            self.transitions.append((self._clock(), self.tier, tier))
            self._registry.counter("service/tier-transitions").inc()
            self._registry.counter(
                f"service/tier-enter-{tier.name.lower()}"
            ).inc()
            self._registry.gauge("service/tier").set(int(tier))
            self.tier = tier
