"""Time-series recording and analysis for instrumented simulations.

A :class:`TimeSeries` is a pair of parallel float lists -- sample times
and values -- appended on every instrumented event (buffer admissions,
releases, preemptions).  The series semantics are *step functions*: a
sampled value holds from its sample time until the next sample, which is
exactly how buffer occupancy behaves between events.

Analysis helpers work on that step interpretation:

* :func:`time_average` -- the time-weighted mean over a window, the
  quantity the M/M/k/k and M/M/infinity occupancy predictions speak
  about (Section 4 of the paper);
* :func:`windowed_rate` -- events-per-time over a sliding window, for
  drop / preemption / retransmission rate curves;
* :func:`resample_step` -- step-function values at evenly spaced probe
  times, the charting backend.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Sequence

__all__ = [
    "TimeSeries",
    "TimeSeriesStore",
    "time_average",
    "windowed_rate",
    "resample_step",
]


@dataclass
class TimeSeries:
    """One named series of (time, value) samples, appended in time order."""

    name: str
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def append(self, time: float, value: float) -> None:
        self.times.append(time)
        self.values.append(value)

    def extend(self, times: Sequence[float], values: Sequence[float]) -> None:
        """Bulk-append already-time-ordered samples.

        The batched simulator fast path records whole runs at once;
        the result is indistinguishable from per-event :meth:`append`
        calls in the same order.
        """
        if len(times) != len(values):
            raise ValueError("times and values must be the same length")
        self.times.extend(times)
        self.values.extend(values)

    def __len__(self) -> int:
        return len(self.times)

    def time_average(
        self, start: float = 0.0, end: float | None = None, initial: float = 0.0
    ) -> float:
        """Step-weighted mean of this series over ``[start, end]``."""
        if end is None:
            end = self.times[-1] if self.times else start
        return time_average(self.times, self.values, start, end, initial=initial)

    def to_dict(self) -> dict:
        return {"name": self.name, "times": list(self.times), "values": list(self.values)}

    @classmethod
    def from_dict(cls, data: dict) -> "TimeSeries":
        return cls(
            name=str(data["name"]),
            times=[float(t) for t in data["times"]],
            values=[float(v) for v in data["values"]],
        )


class TimeSeriesStore:
    """Named time series with get-or-create access (one per run)."""

    def __init__(self) -> None:
        self._series: dict[str, TimeSeries] = {}

    def series(self, name: str) -> TimeSeries:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = TimeSeries(name)
        return series

    def get(self, name: str) -> TimeSeries | None:
        return self._series.get(name)

    def names(self) -> list[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self):
        for name in self.names():
            yield self._series[name]

    def __getstate__(self) -> dict:
        return {"series": {k: v.to_dict() for k, v in self._series.items()}}

    def __setstate__(self, state: dict) -> None:
        self._series = {
            k: TimeSeries.from_dict(v) for k, v in state["series"].items()
        }


# ----------------------------------------------------------------------
def time_average(
    times: Sequence[float],
    values: Sequence[float],
    start: float,
    end: float,
    initial: float = 0.0,
) -> float:
    """Time-weighted mean of a step function over ``[start, end]``.

    ``values[i]`` holds on ``[times[i], times[i+1])``; before the first
    sample the value is ``initial`` (a simulation starts with empty
    buffers).  Samples outside the window contribute only the portion
    inside it.
    """
    if len(times) != len(values):
        raise ValueError("times and values must be the same length")
    if end < start:
        raise ValueError(f"window end {end:g} precedes start {start:g}")
    if end == start:
        return float(initial)
    integral = 0.0
    current = float(initial)
    cursor = start
    for t, v in zip(times, values):
        if t <= start:
            current = float(v)
            continue
        if t >= end:
            break
        integral += current * (t - cursor)
        cursor = t
        current = float(v)
    integral += current * (end - cursor)
    return integral / (end - start)


def windowed_rate(
    event_times: Sequence[float],
    window: float,
    t_end: float,
    n_points: int = 64,
) -> TimeSeries:
    """Sliding-window event rate: events in ``(t - window, t]`` / window.

    Probes ``n_points`` evenly spaced times over ``[window, t_end]``
    (or ``[t_end, t_end]`` when the horizon is shorter than the window).
    ``event_times`` must be sorted ascending, which is how the
    simulator records them.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if n_points < 1:
        raise ValueError(f"need at least one probe point, got {n_points}")
    series = TimeSeries(name=f"rate[w={window:g}]")
    lo = min(window, t_end)
    span = t_end - lo
    for i in range(n_points):
        t = lo + span * i / max(1, n_points - 1)
        n = bisect_right(event_times, t) - bisect_right(event_times, t - window)
        series.append(t, n / window)
    return series


def resample_step(
    times: Sequence[float],
    values: Sequence[float],
    probe_times: Sequence[float],
    initial: float = 0.0,
) -> list[float]:
    """Step-function values at each probe time (probes sorted ascending)."""
    out: list[float] = []
    index = 0
    current = float(initial)
    for t in probe_times:
        while index < len(times) and times[index] <= t:
            current = float(values[index])
            index += 1
        out.append(current)
    return out
