"""Minimal JSON-schema validation for run manifests.

CI validates every emitted manifest against the checked-in
``run_manifest.schema.json``.  The container ships no ``jsonschema``
package, so this module implements the small subset of JSON Schema the
manifest schema actually uses: ``type``, ``required``, ``properties``,
``additionalProperties``, ``items``, ``enum``, ``minimum``, and the
list-of-types form of ``type`` (for nullable fields).

Errors are collected (not raised one at a time) so a CI failure shows
every violation at once.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["load_manifest_schema", "validate", "SchemaError"]

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class SchemaError(ValueError):
    """Raised by :func:`validate` with every violation found."""

    def __init__(self, errors: list[str]) -> None:
        self.errors = errors
        super().__init__("; ".join(errors))


def load_manifest_schema() -> dict:
    """The checked-in run-manifest schema, as a dict."""
    path = Path(__file__).with_name("run_manifest.schema.json")
    return json.loads(path.read_text(encoding="utf-8"))


def _check(value, schema: dict, path: str, errors: list[str]) -> None:
    expected = schema.get("type")
    if expected is not None:
        types = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](value) for t in types):
            errors.append(
                f"{path}: expected {' or '.join(types)}, "
                f"got {type(value).__name__}"
            )
            return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if not isinstance(value, bool) and value < schema["minimum"]:
            errors.append(f"{path}: {value} below minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required property {key!r}")
        properties = schema.get("properties", {})
        for key, sub in properties.items():
            if key in value:
                _check(value[key], sub, f"{path}.{key}", errors)
        if schema.get("additionalProperties") is False:
            for key in value:
                if key not in properties:
                    errors.append(f"{path}: unexpected property {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            _check(item, schema["items"], f"{path}[{i}]", errors)


def validate(document, schema: dict | None = None) -> None:
    """Validate ``document``; raises :class:`SchemaError` listing every
    violation.  With no explicit schema, the run-manifest schema is used.
    """
    if schema is None:
        schema = load_manifest_schema()
    errors: list[str] = []
    _check(document, schema, "$", errors)
    if errors:
        raise SchemaError(errors)
