"""Structured run manifests: what ran, with what code, measuring what.

Every telemetry-enabled CLI invocation emits two artifacts next to the
result cache (``<cache_dir>/telemetry/`` by default):

* ``<stamp>-<command>.manifest.json`` -- one JSON document with the
  command line, a fingerprint over every simulated configuration, the
  root seed, ``git describe`` of the working tree, wall time, the
  aggregated metric snapshot, and runtime/cache counters;
* ``<stamp>-<command>.series.jsonl`` -- one line per recorded time
  series (and one metric-snapshot line per run), keyed by the run's
  configuration fingerprint.

The manifest format is pinned by the checked-in JSON schema
(``run_manifest.schema.json`` in this package) and validated in CI;
:data:`MANIFEST_SCHEMA_VERSION` is bumped on breaking changes.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.telemetry.timeseries import TimeSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.collect import TelemetryAggregate

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "git_describe",
    "build_manifest",
    "write_run_artifacts",
    "load_manifest",
    "load_series",
    "latest_manifest",
]

MANIFEST_SCHEMA_VERSION = 1


def git_describe() -> str:
    """``git describe --always --dirty`` of the source tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except Exception:
        return "unknown"
    described = out.stdout.strip()
    return described if out.returncode == 0 and described else "unknown"


def _fingerprint_runs(run_keys: list[str]) -> str:
    """One stable fingerprint over every simulated configuration.

    Run keys are already stable config fingerprints; hashing them in
    sorted order makes the combined fingerprint independent of sweep
    ordering.
    """
    digest = hashlib.sha256()
    for key in sorted(run_keys):
        digest.update(key.encode("ascii"))
        digest.update(b"\0")
    return digest.hexdigest()


def build_manifest(
    *,
    command: str,
    argv: list[str],
    aggregate: "TelemetryAggregate",
    wall_time_seconds: float,
    seed: int | None = None,
    jobs: int = 1,
    simulations: int = 0,
    sim_seconds: float = 0.0,
    cache_stats: dict | None = None,
    started_at: float | None = None,
    series_file: str | None = None,
) -> dict:
    """Assemble the manifest document (pure data; nothing is written)."""
    run_keys = [key for key, _ in aggregate.runs]
    return {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "command": command,
        "argv": list(argv),
        "config_fingerprint": _fingerprint_runs(run_keys),
        "seed": seed,
        "git_describe": git_describe(),
        "started_at": time.time() if started_at is None else float(started_at),
        "wall_time_seconds": float(wall_time_seconds),
        "runs": run_keys,
        "metrics": aggregate.snapshot(),
        "runtime": {
            "jobs": int(jobs),
            "simulations": int(simulations),
            "sim_seconds": float(sim_seconds),
        },
        "cache": cache_stats,
        "series_file": series_file,
    }


def write_run_artifacts(
    directory: str | Path,
    command: str,
    manifest: dict,
    aggregate: "TelemetryAggregate",
) -> tuple[Path, Path]:
    """Write ``manifest.json`` + ``series.jsonl``; returns both paths.

    The stamp embeds wall time and pid so concurrent invocations never
    collide; the manifest's ``series_file`` field is filled in with the
    series file's basename.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = time.strftime("%Y%m%d-%H%M%S") + f"-{os.getpid()}"
    manifest_path = directory / f"{stamp}-{command}.manifest.json"
    series_path = directory / f"{stamp}-{command}.series.jsonl"
    with series_path.open("w", encoding="utf-8") as handle:
        for key, telemetry in aggregate.runs:
            line = {
                "kind": "metrics",
                "run": key,
                "metrics": telemetry.registry.snapshot(),
            }
            handle.write(json.dumps(line) + "\n")
            for series in telemetry.series:
                line = {"kind": "series", "run": key, **series.to_dict()}
                handle.write(json.dumps(line) + "\n")
    manifest = dict(manifest)
    manifest["series_file"] = series_path.name
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return manifest_path, series_path


# ----------------------------------------------------------------------
def load_manifest(path: str | Path) -> dict:
    """Read one manifest document back."""
    return json.loads(Path(path).read_text(encoding="utf-8"))


def load_series(
    path: str | Path,
) -> tuple[dict[tuple[str, str], TimeSeries], dict[str, dict]]:
    """Read a series JSONL back: ``((run, name) -> series, run -> metrics)``.

    Torn trailing lines (a killed process) are skipped, mirroring the
    journal's failure policy.
    """
    series: dict[tuple[str, str], TimeSeries] = {}
    metrics: dict[str, dict] = {}
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue
            if entry.get("kind") == "series":
                series[(entry["run"], entry["name"])] = TimeSeries.from_dict(entry)
            elif entry.get("kind") == "metrics":
                metrics[entry["run"]] = entry["metrics"]
    return series, metrics


def latest_manifest(directory: str | Path) -> Path | None:
    """The newest ``*.manifest.json`` under ``directory``, if any."""
    directory = Path(directory)
    if not directory.is_dir():
        return None
    candidates = sorted(directory.glob("*.manifest.json"))
    return candidates[-1] if candidates else None
