"""Telemetry: metrics registry, time-series recording, run manifests.

Off by default; enabled per runtime context via ``use_runtime(...,
telemetry=True)`` or the ``--telemetry`` CLI flag.  See DESIGN.md §9.
"""

from repro.telemetry.collect import CaptureSink, RunTelemetry, TelemetryAggregate
from repro.telemetry.manifest import (
    MANIFEST_SCHEMA_VERSION,
    build_manifest,
    git_describe,
    latest_manifest,
    load_manifest,
    load_series,
    write_run_artifacts,
)
from repro.telemetry.registry import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.schema import SchemaError, load_manifest_schema, validate
from repro.telemetry.timeseries import (
    TimeSeries,
    TimeSeriesStore,
    resample_step,
    time_average,
    windowed_rate,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_EDGES",
    "TimeSeries",
    "TimeSeriesStore",
    "time_average",
    "windowed_rate",
    "resample_step",
    "RunTelemetry",
    "TelemetryAggregate",
    "CaptureSink",
    "MANIFEST_SCHEMA_VERSION",
    "build_manifest",
    "write_run_artifacts",
    "load_manifest",
    "load_series",
    "latest_manifest",
    "git_describe",
    "SchemaError",
    "load_manifest_schema",
    "validate",
]
