"""A lightweight metrics registry: counters, gauges, fixed-bucket histograms.

Telemetry must never distort what it measures, so the design favors
allocation-light primitives: a metric is created once (``counter()`` /
``gauge()`` / ``histogram()`` are get-or-create) and hot paths hold the
returned object and bump plain attributes.  With telemetry disabled the
rest of the system keeps a single ``None`` check per instrumented
operation -- see the ``BENCH_telemetry_baseline.json`` guard in CI.

Snapshots are plain JSON-compatible dicts; merging two snapshots (or a
snapshot into a registry) is the worker-to-parent aggregation seam the
runtime uses, exactly like :class:`repro.runtime.cache.CacheStats`.
Merge order is significant for float sums (addition is not
associative), so every aggregation path in the runtime folds run
telemetry in *item order* -- that is what makes ``--jobs N`` output
bit-identical to serial.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_EDGES",
]

#: Fixed bucket edges (in simulation time units) for end-to-end latency
#: histograms.  Fixed -- not adapted per run -- so histograms from any
#: two runs merge bucket-by-bucket.
DEFAULT_LATENCY_EDGES: tuple[float, ...] = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0,
)


@dataclass
class Counter:
    """A monotonically increasing integer."""

    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


@dataclass
class Gauge:
    """A last-value-wins float (merge keeps the merged-in value)."""

    value: float = 0.0
    set_count: int = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.set_count += 1


class Histogram:
    """Fixed-bucket-edge histogram.

    ``edges`` must be strictly increasing; bucket ``i`` counts values in
    ``(edges[i-1], edges[i]]`` with bucket 0 catching ``(-inf, edges[0]]``
    and a final overflow bucket catching ``(edges[-1], inf)``.  Two
    histograms merge iff their edges are identical.
    """

    __slots__ = ("edges", "counts", "count", "sum", "min", "max")

    def __init__(self, edges: tuple[float, ...]) -> None:
        if len(edges) < 1:
            raise ValueError("histogram needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"bucket edges must be strictly increasing, got {edges}")
        self.edges = tuple(float(e) for e in edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_dict(self, data: dict) -> None:
        if list(self.edges) != [float(e) for e in data["edges"]]:
            raise ValueError(
                f"cannot merge histograms with different edges: "
                f"{list(self.edges)} vs {data['edges']}"
            )
        for i, c in enumerate(data["counts"]):
            self.counts[i] += int(c)
        self.count += int(data["count"])
        self.sum += float(data["sum"])
        if data["min"] is not None and data["min"] < self.min:
            self.min = float(data["min"])
        if data["max"] is not None and data["max"] > self.max:
            self.max = float(data["max"])


class MetricsRegistry:
    """Named counters/gauges/histograms with get-or-create access.

    Examples
    --------
    >>> reg = MetricsRegistry()
    >>> reg.counter("sim/drops").inc()
    >>> reg.histogram("latency", edges=(1.0, 10.0)).observe(3.0)
    >>> reg.snapshot()["counters"]["sim/drops"]
    1
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(
        self, name: str, edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES
    ) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(edges)
        elif metric.edges != tuple(float(e) for e in edges):
            raise ValueError(
                f"histogram {name!r} already registered with edges {metric.edges}"
            )
        return metric

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-compatible snapshot, deterministically key-ordered."""
        return {
            "counters": {k: self._counters[k].value for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k].value for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].to_dict() for k in sorted(self._histograms)
            },
        }

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a snapshot into this registry (counters/histograms add,
        gauges take the merged-in value)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name, edges=tuple(data["edges"])).merge_dict(data)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms)"
        )


# Dataclass-style pickling support: registries travel from pool workers
# to the parent inside SimulationResult objects.
def _registry_getstate(self: MetricsRegistry) -> dict:
    return {
        "counters": {k: v.value for k, v in self._counters.items()},
        "gauges": {k: (v.value, v.set_count) for k, v in self._gauges.items()},
        "histograms": {k: v.to_dict() for k, v in self._histograms.items()},
    }


def _registry_setstate(self: MetricsRegistry, state: dict) -> None:
    self._counters = {k: Counter(v) for k, v in state["counters"].items()}
    self._gauges = {
        k: Gauge(value, count) for k, (value, count) in state["gauges"].items()
    }
    self._histograms = {}
    for k, data in state["histograms"].items():
        hist = Histogram(tuple(data["edges"]))
        hist.merge_dict(data)
        self._histograms[k] = hist


MetricsRegistry.__getstate__ = _registry_getstate  # type: ignore[attr-defined]
MetricsRegistry.__setstate__ = _registry_setstate  # type: ignore[attr-defined]
