"""Per-run telemetry containers and the context-level aggregator.

Two layers:

* :class:`RunTelemetry` -- what one simulation records: a
  :class:`~repro.telemetry.registry.MetricsRegistry` of counters and
  histograms plus a :class:`~repro.telemetry.timeseries.TimeSeriesStore`
  of sampled series.  It lives on
  :attr:`repro.sim.results.SimulationResult.telemetry`, so it is cached
  and shipped across process boundaries together with the result it
  instruments;
* :class:`TelemetryAggregate` -- what one runtime context accumulates:
  the ordered list of run telemetries published by
  :func:`repro.runtime.context.run_simulation`.  All registry merging
  is deferred to :meth:`TelemetryAggregate.merged_registry`, which folds
  runs strictly in publication order.  The executors guarantee that
  publication order equals *item order* under any worker count (workers
  capture, the parent replays captures in index order), which is what
  makes the aggregate bit-identical between ``--jobs N`` and serial.

Everything here is derived from simulated time, never wall clocks, so
aggregates are fully deterministic for a given configuration and seed.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.timeseries import TimeSeriesStore

__all__ = ["RunTelemetry", "TelemetryAggregate", "CaptureSink"]


class RunTelemetry:
    """Everything one instrumented simulation run recorded."""

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        self.series = TimeSeriesStore()

    def snapshot(self) -> dict:
        """JSON-compatible view: metric snapshot + series names."""
        return {
            "metrics": self.registry.snapshot(),
            "series": self.series.names(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunTelemetry({len(self.series)} series)"


class CaptureSink:
    """Ordered run telemetries captured during one sweep item."""

    def __init__(self) -> None:
        self.runs: list[tuple[str, RunTelemetry]] = []

    def add(self, key: str, telemetry: RunTelemetry) -> None:
        self.runs.append((key, telemetry))


class TelemetryAggregate:
    """Context-level collection of run telemetries, in publication order.

    ``add_run`` publishes into the innermost active capture (or the root
    list when no capture is active); :meth:`capture` is the worker /
    supervisor seam that isolates one sweep item's publications so the
    parent can replay them in item order.
    """

    def __init__(self) -> None:
        self._runs: list[tuple[str, RunTelemetry]] = []
        self._captures: list[CaptureSink] = []

    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return True

    def add_run(self, key: str, telemetry: RunTelemetry) -> None:
        """Publish one run's telemetry under its config fingerprint."""
        if self._captures:
            self._captures[-1].add(key, telemetry)
        else:
            self._runs.append((key, telemetry))

    @contextmanager
    def capture(self) -> Iterator[CaptureSink]:
        """Divert publications into a fresh sink for one sweep item."""
        sink = CaptureSink()
        self._captures.append(sink)
        try:
            yield sink
        finally:
            self._captures.pop()

    def replay(self, runs: list[tuple[str, RunTelemetry]]) -> None:
        """Re-publish captured runs (parent side, in item order)."""
        for key, telemetry in runs:
            self.add_run(key, telemetry)

    # ------------------------------------------------------------------
    @property
    def runs(self) -> list[tuple[str, RunTelemetry]]:
        return list(self._runs)

    @property
    def n_runs(self) -> int:
        return len(self._runs)

    def merged_registry(self) -> MetricsRegistry:
        """All run registries folded together, in publication order."""
        merged = MetricsRegistry()
        for _, telemetry in self._runs:
            merged.merge(telemetry.registry)
        return merged

    def snapshot(self) -> dict:
        """Deterministic aggregate view (the manifest's ``metrics``)."""
        return self.merged_registry().snapshot()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TelemetryAggregate({len(self._runs)} runs)"
