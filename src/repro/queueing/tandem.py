"""Tandem paths and routing-tree networks of privacy-delay queues.

Section 4 of the paper composes single-node results into networks:

* **Tandem path** -- packets leaving an M/M/infinity node form a
  Poisson process at the input rate (Burke's theorem), so an N-hop
  path is N independent M/M/infinity queues; the end-to-end artificial
  delay is the sum of independent exponentials (hypoexponential, or
  Erlang when the rates are equal).
* **Routing tree** -- flows merge as they approach the sink; the
  superposition property gives node i the aggregate Poisson rate
  ``lambda_i = sum of its children's carried rates``, and each node is
  then modelled as M/M/infinity (unbounded) or M/M/k/k (bounded).
* **Kleinrock's independence approximation** -- after drops the
  streams are not exactly Poisson, but merging restores independence
  well enough that the Poisson model remains accurate; we keep the
  approximation and the validation benchmarks quantify its error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import networkx as nx

from repro.queueing.erlang import erlang_b
from repro.queueing.mminf import MMInfinityQueue
from repro.queueing.mmkk import MMkkQueue

__all__ = ["TandemPathModel", "QueueTreeModel", "kleinrock_note"]


def kleinrock_note() -> str:
    """One-line statement of the modelling approximation used after drops."""
    return (
        "Kleinrock independence approximation: merging several packet "
        "streams restores (approximately) the independence of interarrival "
        "times, so post-drop traffic at each node is still modelled as "
        "Poisson with the aggregate carried rate."
    )


@dataclass(frozen=True)
class TandemPathModel:
    """An N-hop line S -> F1 -> ... -> F_{N-1} -> R of delay queues.

    Parameters
    ----------
    service_rates:
        mu_i for each buffering node on the path, source first.  The
        paper allows per-node rates ("to allow each node to follow its
        own delay distribution").
    arrival_rate:
        lambda of the Poisson flow entering the path.
    hop_transmission_delay:
        The constant per-hop transmit time tau (1 time unit in the
        paper's simulations).  The number of *transmissions* is
        ``len(service_rates)``: each buffering node forwards once.

    Examples
    --------
    >>> path = TandemPathModel(service_rates=[1/30]*15, arrival_rate=0.5)
    >>> path.mean_end_to_end_delay()
    465.0
    """

    service_rates: Sequence[float]
    arrival_rate: float
    hop_transmission_delay: float = 1.0

    def __post_init__(self) -> None:
        if not self.service_rates:
            raise ValueError("path must contain at least one buffering node")
        if any(mu <= 0 for mu in self.service_rates):
            raise ValueError("all service rates must be positive")
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate}")
        if self.hop_transmission_delay < 0:
            raise ValueError("transmission delay must be non-negative")

    @property
    def hop_count(self) -> int:
        """Number of buffering/forwarding nodes on the path."""
        return len(self.service_rates)

    def node_queue(self, index: int) -> MMInfinityQueue:
        """The M/M/infinity model of the ``index``-th node (0 = source)."""
        return MMInfinityQueue(
            arrival_rate=self.arrival_rate, service_rate=self.service_rates[index]
        )

    def mean_artificial_delay(self) -> float:
        """E[sum of per-node privacy delays] = sum 1/mu_i."""
        return float(sum(1.0 / mu for mu in self.service_rates))

    def artificial_delay_variance(self) -> float:
        """Var of the summed independent exponential delays: sum 1/mu_i^2."""
        return float(sum(1.0 / mu**2 for mu in self.service_rates))

    def mean_end_to_end_delay(self) -> float:
        """Mean total latency: transmissions plus artificial delays."""
        return self.hop_count * self.hop_transmission_delay + self.mean_artificial_delay()

    def total_mean_occupancy(self) -> float:
        """Expected number of packets buffered along the whole path."""
        return float(sum(self.arrival_rate / mu for mu in self.service_rates))

    def end_to_end_delay_pdf(self, y: float) -> float:
        """Density of the total *artificial* delay at lag ``y``.

        Hypoexponential density for distinct rates; for repeated rates
        the general case degenerates, so we fall back to the Erlang
        density when all rates are equal (the common configuration in
        the paper: identical 1/mu at every node).  Mixed repeated rates
        are evaluated by grouping into Erlang stages via convolution of
        at most a few numerical terms and are outside the fast path.
        """
        if y < 0:
            return 0.0
        rates = list(self.service_rates)
        if len(set(rates)) == 1:
            mu = rates[0]
            n = len(rates)
            return (
                mu**n * y ** (n - 1) * math.exp(-mu * y) / math.gamma(n)
                if y > 0 or n == 1
                else (mu if n == 1 else 0.0)
            )
        if len(set(rates)) != len(rates):
            raise NotImplementedError(
                "mixed repeated service rates are not supported by the "
                "closed-form density; use distinct or all-equal rates"
            )
        # Hypoexponential density: sum_i w_i mu_i e^{-mu_i y}.
        density = 0.0
        for i, mu_i in enumerate(rates):
            weight = 1.0
            for j, mu_j in enumerate(rates):
                if i != j:
                    weight *= mu_j / (mu_j - mu_i)
            density += weight * mu_i * math.exp(-mu_i * y)
        return max(density, 0.0)


@dataclass
class QueueTreeModel:
    """Analytic model of a routing tree of privacy-delay queues.

    The tree is given by ``parent`` pointers toward the sink.  Sources
    inject Poisson flows at their node; interior nodes aggregate the
    carried rates of their children plus their own injection (if any),
    exactly as in the paper's superposition argument.

    Parameters
    ----------
    parent:
        Mapping child node id -> parent node id; the sink appears only
        as a parent.
    injection_rates:
        Mapping node id -> locally generated Poisson rate.
    service_rates:
        Mapping node id -> mu at that node.  Nodes absent from the
        mapping use ``default_service_rate``.
    capacities:
        Mapping node id -> buffer slots k; absent nodes are unbounded
        (M/M/infinity).  With finite capacity the *carried* rate
        ``lambda (1 - E(rho, k))`` propagates upward (Poisson-thinning
        under the Kleinrock approximation).

    Examples
    --------
    >>> tree = QueueTreeModel(
    ...     parent={1: 0, 2: 0},
    ...     injection_rates={1: 0.2, 2: 0.3},
    ...     default_service_rate=1.0,
    ... )
    >>> tree.arrival_rate(0)
    0.5
    """

    parent: Mapping[int, int]
    injection_rates: Mapping[int, float]
    service_rates: Mapping[int, float] = field(default_factory=dict)
    capacities: Mapping[int, int] = field(default_factory=dict)
    default_service_rate: float = 1.0

    def __post_init__(self) -> None:
        self._graph = nx.DiGraph()
        for child, par in self.parent.items():
            self._graph.add_edge(child, par)
        for node in self.injection_rates:
            self._graph.add_node(node)
        # The parent mapping guarantees out-degree <= 1, so acyclicity is
        # exactly the tree/forest condition.  (An undirected forest check
        # would miss two-node cycles like {1: 2, 2: 1}.)
        if not nx.is_directed_acyclic_graph(self._graph):
            raise ValueError("routing structure must be a tree/forest (no cycles)")
        if any(rate < 0 for rate in self.injection_rates.values()):
            raise ValueError("injection rates must be non-negative")
        self._arrival_cache: dict[int, float] = {}

    # ------------------------------------------------------------------
    def nodes(self) -> list[int]:
        """All node ids in the tree."""
        return list(self._graph.nodes)

    def children(self, node: int) -> list[int]:
        """Routing children of ``node`` (nodes that forward to it)."""
        return sorted(self._graph.predecessors(node))

    def service_rate(self, node: int) -> float:
        """mu at ``node``."""
        return float(self.service_rates.get(node, self.default_service_rate))

    def arrival_rate(self, node: int) -> float:
        """Aggregate Poisson arrival rate lambda_i entering ``node``.

        Sum of the carried output rates of its children plus any local
        injection at children (a node's own injection enters its own
        buffer too, per the paper's source-buffering model).
        """
        cached = self._arrival_cache.get(node)
        if cached is not None:
            return cached
        rate = float(self.injection_rates.get(node, 0.0))
        for child in self._graph.predecessors(node):
            rate += self.carried_rate(child)
        self._arrival_cache[node] = rate
        return rate

    def offered_load(self, node: int) -> float:
        """rho_i = lambda_i / mu_i."""
        return self.arrival_rate(node) / self.service_rate(node)

    def blocking_probability(self, node: int) -> float:
        """Erlang loss at ``node`` (0 for unbounded nodes)."""
        capacity = self.capacities.get(node)
        if capacity is None:
            return 0.0
        return erlang_b(self.offered_load(node), capacity)

    def carried_rate(self, node: int) -> float:
        """Output rate of ``node``: arrivals times acceptance probability."""
        return self.arrival_rate(node) * (1.0 - self.blocking_probability(node))

    def node_model(self, node: int) -> MMInfinityQueue | MMkkQueue:
        """The per-node queue model (M/M/k/k if a capacity is set)."""
        capacity = self.capacities.get(node)
        if capacity is None:
            return MMInfinityQueue(
                arrival_rate=self.arrival_rate(node),
                service_rate=self.service_rate(node),
            )
        return MMkkQueue(
            arrival_rate=self.arrival_rate(node),
            service_rate=self.service_rate(node),
            capacity=capacity,
        )

    def mean_occupancy(self, node: int) -> float:
        """E[N_i] at ``node``."""
        return self.node_model(node).mean_occupancy

    def path_to_root(self, node: int) -> list[int]:
        """Nodes from ``node`` to (and excluding) the sink, in hop order."""
        path = [node]
        while True:
            successors = list(self._graph.successors(path[-1]))
            if not successors:
                break
            path.append(successors[0])
        return path[:-1] if len(path) > 1 else path

    def mean_path_delay(self, source: int, hop_transmission_delay: float = 1.0) -> float:
        """Expected end-to-end latency from ``source`` to the sink.

        Sums the per-node mean privacy delay 1/mu_i over the buffering
        nodes plus one transmission per hop.  Valid for the unbounded
        model; with finite buffers this is an upper bound (preemption
        or loss only shortens delays).
        """
        buffering_nodes = self.path_to_root(source)
        hops = len(buffering_nodes)
        return hops * hop_transmission_delay + sum(
            1.0 / self.service_rate(n) for n in buffering_nodes
        )

    def total_buffered_packets(self) -> float:
        """Expected number of packets buffered across the whole network."""
        return float(sum(self.mean_occupancy(n) for n in self._graph.nodes))
