"""Analytic queueing theory used by the paper's buffer analysis.

Section 4 of the paper models privacy buffering as queues:

* a node delaying each packet independently for Exp(mu) time is an
  **M/M/infinity** queue -- occupancy is Poisson with mean
  ``rho = lambda/mu`` (:mod:`repro.queueing.mminf`);
* a resource-limited node with ``k`` buffer slots is an **M/M/k/k**
  queue -- the drop probability is the **Erlang loss formula**
  ``E(rho, k)`` (:mod:`repro.queueing.erlang`,
  :mod:`repro.queueing.mmkk`);
* along a routing path, Burke's theorem makes the tandem of queues
  tractable, and Poisson superposition aggregates merging flows in the
  routing tree (:mod:`repro.queueing.tandem`);
* Kleinrock's independence approximation justifies keeping the Poisson
  model after drops (:func:`repro.queueing.tandem.kleinrock_note`).

:mod:`repro.queueing.simq` additionally provides direct discrete-event
simulations of these queues on :mod:`repro.des`, used by the validation
benchmarks to show the closed forms and the simulator agree.
"""

from repro.queueing.erlang import (
    erlang_b,
    erlang_b_inverse_capacity,
    mu_for_target_loss,
    offered_load_for_target_loss,
)
from repro.queueing.mminf import MMInfinityQueue
from repro.queueing.mmkk import MMkkQueue
from repro.queueing.poisson import (
    PoissonProcess,
    merge_poisson_rates,
    sample_poisson_arrivals,
    thin_poisson_rate,
)
from repro.queueing.rcad_model import RcadNodeModel, predicted_rcad_path_latency
from repro.queueing.tandem import QueueTreeModel, TandemPathModel, kleinrock_note
from repro.queueing.simq import SimulatedMMInfinity, SimulatedMMkk

__all__ = [
    "erlang_b",
    "erlang_b_inverse_capacity",
    "mu_for_target_loss",
    "offered_load_for_target_loss",
    "MMInfinityQueue",
    "MMkkQueue",
    "PoissonProcess",
    "sample_poisson_arrivals",
    "merge_poisson_rates",
    "thin_poisson_rate",
    "QueueTreeModel",
    "TandemPathModel",
    "kleinrock_note",
    "RcadNodeModel",
    "predicted_rcad_path_latency",
    "SimulatedMMInfinity",
    "SimulatedMMkk",
]
