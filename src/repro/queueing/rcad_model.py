"""Analytic model of an RCAD node (beyond the paper's analysis).

The paper analyzes drop-tail M/M/k/k buffers and evaluates RCAD only
by simulation.  But an RCAD node admits an exact occupancy analysis:

* in states n < k, arrivals (rate lambda) move n -> n+1 and timer
  expiries (rate n mu) move n -> n-1, exactly as in M/M/k/k;
* in state k, an arrival preempts a victim and admits the newcomer --
  one packet in, one packet out, the state *stays* k, exactly as a
  blocked arrival leaves M/M/k/k in state k.

*Provided the victim is chosen independently of the residual timers*
(random, oldest-arrival, newest-arrival policies), memorylessness
keeps the remaining timers i.i.d. Exp(mu) after a preemption and the
occupancy CTMC is *identical* to M/M/k/k: stationary occupancy is the
truncated Poisson, and P{N = k} = E(rho, k), the Erlang loss
probability (which for RCAD is the *preemption* probability seen by
arrivals, via PASTA).

Consequences the paper leaves on the table, implemented here:

1. **Mean per-hop RCAD delay in closed form.**  Every arrival enters
   the buffer (nothing is dropped), so Little's law with the full
   arrival rate gives ::

       E[T] = E[N] / lambda = rho (1 - E(rho,k)) / lambda
            = (1 - E(rho, k)) / mu

   It interpolates exactly between the advertised mean 1/mu (light
   load, E -> 0) and the saturated drain time k/lambda (heavy load,
   1 - E -> k/rho).  Summed along a path this *predicts the Figure
   2(b) RCAD curve analytically* -- validated in the benchmark.

2. **The paper's shortest-remaining policy runs slightly slower.**
   Preempting the minimum residual leaves the other k-1 residuals
   stochastically *larger* than fresh exponentials (they are each
   distributed as min + Exp(mu)), deferring natural expiries, so the
   closed form is a mild under-estimate for shortest-remaining:
   measured ~11% at the paper's single-flow operating point
   (rho = 15, k = 10), exact (within simulation noise) for the
   residual-independent policies.  The unit tests pin down both
   statements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.net.routing import RoutingTree
from repro.queueing.erlang import erlang_b
from repro.queueing.mmkk import MMkkQueue
from repro.queueing.tandem import QueueTreeModel

__all__ = ["RcadNodeModel", "predicted_rcad_path_latency"]


@dataclass(frozen=True)
class RcadNodeModel:
    """Closed-form single-node RCAD model.

    Parameters
    ----------
    arrival_rate:
        lambda, the aggregate Poisson rate entering the node.
    service_rate:
        mu, the reciprocal of the advertised mean delay.
    capacity:
        k buffer slots.

    Examples
    --------
    >>> node = RcadNodeModel(arrival_rate=2.0, service_rate=1 / 30, capacity=10)
    >>> node.preemption_probability > 0.8    # deep saturation
    True
    >>> 4.9 < node.mean_delay < 5.1          # ~ k / lambda = 5
    True
    """

    arrival_rate: float
    service_rate: float
    capacity: int

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.arrival_rate}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {self.capacity}")

    # ------------------------------------------------------------------
    @property
    def offered_load(self) -> float:
        """rho = lambda / mu."""
        return self.arrival_rate / self.service_rate

    @property
    def preemption_probability(self) -> float:
        """Probability an arrival triggers a preemption: E(rho, k).

        Same formula as M/M/k/k blocking, but the packet is *admitted*
        (a victim leaves instead) -- RCAD turns loss into early release.
        """
        return erlang_b(self.offered_load, self.capacity)

    @property
    def mean_occupancy(self) -> float:
        """E[N] = rho (1 - E(rho, k)): truncated-Poisson mean."""
        return self.offered_load * (1.0 - self.preemption_probability)

    @property
    def mean_delay(self) -> float:
        """Mean buffering delay: (1 - E(rho, k)) / mu, by Little's law.

        Interpolates from 1/mu (light load) down to k/lambda
        (saturation); this is the "effective mu adjustment" of the
        paper's Section 5, in closed form.
        """
        return (1.0 - self.preemption_probability) / self.service_rate

    @property
    def throughput(self) -> float:
        """Departure rate: exactly lambda (RCAD never drops)."""
        return self.arrival_rate

    def occupancy_pmf(self, n: int) -> float:
        """P{N = n}: identical to the M/M/k/k truncated Poisson."""
        return MMkkQueue(
            arrival_rate=self.arrival_rate,
            service_rate=self.service_rate,
            capacity=self.capacity,
        ).occupancy_pmf(n)

    def saturated_drain_time(self) -> float:
        """k / lambda: the heavy-load limit of :attr:`mean_delay`."""
        return self.capacity / self.arrival_rate


def predicted_rcad_path_latency(
    tree: RoutingTree,
    flow_rates: Mapping[int, float],
    source: int,
    mean_delay: float,
    capacity: int,
    transmission_delay: float = 1.0,
) -> float:
    """Closed-form prediction of a flow's mean end-to-end RCAD latency.

    Sums ``tau + (1 - E(rho_v, k)) / mu`` over the buffering nodes of
    ``source``'s path, with each node's aggregate rate ``lambda_v``
    from the queueing tree model (superposition).  The Poisson
    assumption is an approximation for the paper's periodic sources;
    the Figure 2(b) benchmark shows it lands within ~20% of simulation
    across the whole sweep.
    """
    if mean_delay <= 0:
        raise ValueError(f"mean delay must be positive, got {mean_delay}")
    model = QueueTreeModel(
        parent=dict(tree.parent),
        injection_rates=dict(flow_rates),
        default_service_rate=1.0 / mean_delay,
    )
    mu = 1.0 / mean_delay
    total = 0.0
    for node in tree.path(source)[:-1]:
        rate = model.arrival_rate(node)
        if rate <= 0:
            total += transmission_delay + mean_delay
            continue
        node_model = RcadNodeModel(
            arrival_rate=rate, service_rate=mu, capacity=capacity
        )
        total += transmission_delay + node_model.mean_delay
    return total
