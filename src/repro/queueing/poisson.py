"""Poisson process primitives.

The paper's analysis (Sections 3-4) assumes Poisson packet-creation
processes: interarrivals are Exp(lambda), the superposition of
independent Poisson flows is Poisson with the summed rate, and Burke's
theorem keeps departures Poisson through M/M queues.  This module
provides the sampling and rate-algebra helpers used throughout the
queueing analysis, the information-theoretic bounds, and the traffic
generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "PoissonProcess",
    "sample_poisson_arrivals",
    "merge_poisson_rates",
    "thin_poisson_rate",
]


def sample_poisson_arrivals(
    rate: float, horizon: float, rng: np.random.Generator
) -> np.ndarray:
    """Sample arrival times of a Poisson(rate) process on [0, horizon).

    Uses the exponential-gap construction, drawing in geometric batches
    so the cost is O(expected count) rather than one draw per event.
    """
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    if horizon < 0:
        raise ValueError(f"horizon must be non-negative, got {horizon}")
    if rate == 0 or horizon == 0:
        return np.empty(0)
    arrivals: list[np.ndarray] = []
    t = 0.0
    batch = max(16, int(rate * horizon * 1.1))
    while t < horizon:
        gaps = rng.exponential(1.0 / rate, size=batch)
        times = t + np.cumsum(gaps)
        arrivals.append(times)
        t = times[-1]
    all_times = np.concatenate(arrivals)
    return all_times[all_times < horizon]


def merge_poisson_rates(rates: Iterable[float]) -> float:
    """Rate of the superposition of independent Poisson processes.

    This is the aggregation rule the paper applies at routing-tree
    merge points: ``lambda_i = lambda_i1 + ... + lambda_im``.
    """
    total = 0.0
    for rate in rates:
        if rate < 0:
            raise ValueError(f"rates must be non-negative, got {rate}")
        total += rate
    return total


def thin_poisson_rate(rate: float, keep_probability: float) -> float:
    """Rate of a Poisson process after independent thinning.

    Models the *carried* (non-dropped) traffic of a lossy queue under
    the Poisson approximation: dropping each packet independently with
    probability ``1 - keep_probability`` thins the process.
    """
    if not 0.0 <= keep_probability <= 1.0:
        raise ValueError(f"keep_probability must be in [0, 1], got {keep_probability}")
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    return rate * keep_probability


@dataclass(frozen=True)
class PoissonProcess:
    """A homogeneous Poisson process with the standard identities.

    Examples
    --------
    >>> p = PoissonProcess(rate=0.5)
    >>> p.mean_interarrival
    2.0
    >>> round(p.count_pmf(3, horizon=4.0), 4)
    0.1804
    """

    rate: float

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    @property
    def mean_interarrival(self) -> float:
        """Mean gap between arrivals, 1/lambda."""
        return 1.0 / self.rate

    def count_pmf(self, n: int, horizon: float) -> float:
        """P(N(horizon) = n): Poisson(rate * horizon) pmf at n."""
        if n < 0:
            return 0.0
        mean = self.rate * horizon
        # Compute in log space to stay stable for large means.
        log_pmf = n * np.log(mean) - mean - _log_factorial(n) if mean > 0 else (
            0.0 if n == 0 else -np.inf
        )
        return float(np.exp(log_pmf))

    def count_mean(self, horizon: float) -> float:
        """E[N(horizon)] = lambda * horizon."""
        return self.rate * horizon

    def interarrival_pdf(self, x: float) -> float:
        """Density of the Exp(lambda) interarrival distribution."""
        if x < 0:
            return 0.0
        return self.rate * float(np.exp(-self.rate * x))

    def erlang_creation_time_mean(self, j: int) -> float:
        """Mean of X_j, the creation time of the j-th packet.

        X_j is the sum of j Exp(lambda) gaps: a j-stage Erlangian
        variable with mean j/lambda (used in the paper's Section 3.2).
        """
        if j < 1:
            raise ValueError(f"packet index must be >= 1, got {j}")
        return j / self.rate

    def sample(self, horizon: float, rng: np.random.Generator) -> np.ndarray:
        """Sample one realization of arrival times on [0, horizon)."""
        return sample_poisson_arrivals(self.rate, horizon, rng)

    def superpose(self, *others: "PoissonProcess") -> "PoissonProcess":
        """Superposition with other independent Poisson processes."""
        return PoissonProcess(merge_poisson_rates([self.rate, *(o.rate for o in others)]))


def _log_factorial(n: int) -> float:
    from scipy.special import gammaln

    return float(gammaln(n + 1))


def interarrival_cv2(arrivals: Sequence[float]) -> float:
    """Squared coefficient of variation of the gaps of ``arrivals``.

    Diagnostic used in tests: ~1 for Poisson streams, ~0 for periodic
    ones.  Needs at least 3 arrival times.
    """
    times = np.asarray(arrivals, dtype=float)
    if times.size < 3:
        raise ValueError("need at least 3 arrival times to estimate CV^2")
    gaps = np.diff(np.sort(times))
    mean = gaps.mean()
    if mean == 0:
        raise ValueError("arrival times are all identical")
    return float(gaps.var() / mean**2)


__all__.append("interarrival_cv2")
