"""M/M/infinity queue: the unlimited-buffer privacy-delay model.

When every arriving packet is held for an independent Exp(mu) delay and
buffer space is unbounded, each packet effectively gets its own
"variable-delay server" -- the buffering process *is* an M/M/infinity
queue (paper, Section 4).  Standard results, all exposed here:

* steady-state occupancy N is Poisson with mean rho = lambda/mu:
  ``p_k = rho^k e^{-rho} / k!``;
* sojourn time equals the service time, Exp(mu) -- no waiting;
* the departure process is Poisson(lambda) (Burke's theorem), which is
  what makes the tandem/tree analysis of Section 4 compose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MMInfinityQueue"]


@dataclass(frozen=True)
class MMInfinityQueue:
    """Analytic M/M/infinity queue.

    Parameters
    ----------
    arrival_rate:
        lambda, the Poisson input rate.
    service_rate:
        mu, the reciprocal of the mean privacy delay 1/mu.

    Examples
    --------
    >>> q = MMInfinityQueue(arrival_rate=0.5, service_rate=1 / 30)
    >>> q.offered_load           # rho = lambda/mu = expected occupancy
    15.0
    >>> round(q.occupancy_pmf(15), 4)
    0.1024
    """

    arrival_rate: float
    service_rate: float

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate}")

    # ------------------------------------------------------------------
    @property
    def offered_load(self) -> float:
        """rho = lambda / mu, also the mean occupancy."""
        return self.arrival_rate / self.service_rate

    @property
    def mean_occupancy(self) -> float:
        """E[N] = rho (Poisson mean)."""
        return self.offered_load

    @property
    def occupancy_variance(self) -> float:
        """Var[N] = rho (Poisson variance)."""
        return self.offered_load

    @property
    def mean_sojourn(self) -> float:
        """Mean time a packet spends buffered: exactly 1/mu."""
        return 1.0 / self.service_rate

    # ------------------------------------------------------------------
    def occupancy_pmf(self, k: int) -> float:
        """P(N = k) = rho^k e^{-rho} / k! (paper, Section 4)."""
        if k < 0:
            return 0.0
        rho = self.offered_load
        if rho == 0:
            return 1.0 if k == 0 else 0.0
        return math.exp(k * math.log(rho) - rho - math.lgamma(k + 1))

    def occupancy_cdf(self, k: int) -> float:
        """P(N <= k)."""
        if k < 0:
            return 0.0
        return float(sum(self.occupancy_pmf(i) for i in range(k + 1)))

    def occupancy_quantile(self, q: float) -> int:
        """Smallest k with P(N <= k) >= q: a buffer-sizing helper."""
        if not 0.0 <= q < 1.0:
            raise ValueError(f"quantile must be in [0, 1), got {q}")
        cumulative = 0.0
        k = 0
        while True:
            cumulative += self.occupancy_pmf(k)
            if cumulative >= q:
                return k
            k += 1
            if k > 10_000_000:  # pragma: no cover - guard
                raise RuntimeError("quantile search did not converge")

    def transient_mean_occupancy(self, t: float, initial: int = 0) -> float:
        """E[N(t)] starting from ``initial`` packets at t = 0.

        The M/M/infinity transient is exact:
        ``E[N(t)] = rho (1 - e^{-mu t}) + initial * e^{-mu t}``.
        Used in tests to check the simulated warm-up behaviour.
        """
        if t < 0:
            raise ValueError(f"time must be non-negative, got {t}")
        decay = math.exp(-self.service_rate * t)
        return self.offered_load * (1.0 - decay) + initial * decay

    def sojourn_pdf(self, y: float) -> float:
        """Density of the per-packet delay: Exp(mu)."""
        if y < 0:
            return 0.0
        return self.service_rate * math.exp(-self.service_rate * y)

    def departure_rate(self) -> float:
        """Steady-state output rate: Poisson(lambda) by Burke's theorem."""
        return self.arrival_rate
