"""M/M/k/k queue: the finite-buffer privacy-delay model.

Sensor nodes are memory-constrained, so the paper replaces the
M/M/infinity model with M/M/k/k: "memory limitations imply that there
are at most k servers/buffer slots, and each buffer slot is able to
handle one message" (Section 4).  Standard results:

* occupancy is the *truncated* Poisson distribution on {0..k};
* an arrival that finds all slots busy is lost (or, under RCAD,
  triggers a preemption) with probability given by the Erlang loss
  formula, E(rho, k) -- by PASTA this equals the time-average
  probability all slots are full;
* carried (accepted) throughput is lambda (1 - E(rho, k)).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.queueing.erlang import erlang_b

__all__ = ["MMkkQueue"]


@dataclass(frozen=True)
class MMkkQueue:
    """Analytic M/M/k/k (Erlang loss) queue.

    Examples
    --------
    >>> q = MMkkQueue(arrival_rate=0.5, service_rate=1 / 30, capacity=10)
    >>> round(q.blocking_probability, 3)   # E(15, 10)
    0.41
    >>> round(q.carried_rate, 3)
    0.295
    """

    arrival_rate: float
    service_rate: float
    capacity: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0:
            raise ValueError(f"arrival rate must be non-negative, got {self.arrival_rate}")
        if self.service_rate <= 0:
            raise ValueError(f"service rate must be positive, got {self.service_rate}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {self.capacity}")

    # ------------------------------------------------------------------
    @property
    def offered_load(self) -> float:
        """rho = lambda / mu."""
        return self.arrival_rate / self.service_rate

    @property
    def blocking_probability(self) -> float:
        """Probability an arrival finds the buffer full: E(rho, k)."""
        return erlang_b(self.offered_load, self.capacity)

    @property
    def carried_rate(self) -> float:
        """Accepted-packet throughput: lambda (1 - E(rho, k))."""
        return self.arrival_rate * (1.0 - self.blocking_probability)

    @property
    def carried_load(self) -> float:
        """Mean occupancy: rho (1 - E(rho, k))."""
        return self.offered_load * (1.0 - self.blocking_probability)

    @property
    def mean_occupancy(self) -> float:
        """Alias for :attr:`carried_load` (Little's law with W = 1/mu)."""
        return self.carried_load

    # ------------------------------------------------------------------
    def occupancy_pmf(self, n: int) -> float:
        """P(N = n): truncated Poisson on {0, ..., k}."""
        if n < 0 or n > self.capacity:
            return 0.0
        rho = self.offered_load
        if rho == 0:
            return 1.0 if n == 0 else 0.0
        log_rho = math.log(rho)
        log_terms = [i * log_rho - math.lgamma(i + 1) for i in range(self.capacity + 1)]
        peak = max(log_terms)
        normalizer = sum(math.exp(term - peak) for term in log_terms)
        return math.exp(log_terms[n] - peak) / normalizer

    def occupancy_cdf(self, n: int) -> float:
        """P(N <= n)."""
        if n < 0:
            return 0.0
        return float(sum(self.occupancy_pmf(i) for i in range(min(n, self.capacity) + 1)))

    def mean_accepted_sojourn(self) -> float:
        """Mean buffering delay of an *accepted* packet: 1/mu.

        Accepted packets receive their full Exp(mu) delay; packets that
        would be dropped never enter.  Under RCAD the effective sojourn
        is shorter -- that difference is exactly what the Fig. 2/3
        experiments measure.
        """
        return 1.0 / self.service_rate

    def preemption_rate(self) -> float:
        """Rate at which full-buffer arrivals occur: lambda E(rho, k).

        Under plain M/M/k/k these packets are dropped; under RCAD each
        one instead forces a preemptive transmission.
        """
        return self.arrival_rate * self.blocking_probability
