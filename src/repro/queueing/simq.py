"""Discrete-event simulations of the analytic queue models.

These small simulators exist to *validate* the closed forms of
Section 4 against the DES engine that also runs the full WSN simulator:
if the simulated M/M/infinity occupancy is Poisson(rho) and the
simulated M/M/k/k loss matches the Erlang formula, we trust the same
engine when it executes RCAD, where no closed form exists.

Both simulators support time-averaged occupancy statistics (collected
by integrating the occupancy sample path, not by sampling at events,
so PASTA bias cannot creep in) and full per-packet records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.des import RngRegistry, Simulator

__all__ = ["SimulatedMMInfinity", "SimulatedMMkk"]


@dataclass
class _OccupancyTracker:
    """Integrates the occupancy sample path for time-averaged stats."""

    last_change: float = 0.0
    current: int = 0
    weighted_time: dict[int, float] = field(default_factory=dict)

    def update(self, now: float, delta: int) -> None:
        elapsed = now - self.last_change
        if elapsed > 0:
            self.weighted_time[self.current] = (
                self.weighted_time.get(self.current, 0.0) + elapsed
            )
        self.current += delta
        self.last_change = now

    def finish(self, now: float) -> None:
        self.update(now, delta=0)

    def distribution(self) -> dict[int, float]:
        total = sum(self.weighted_time.values())
        if total == 0:
            return {}
        return {k: w / total for k, w in sorted(self.weighted_time.items())}

    def mean(self) -> float:
        dist = self.distribution()
        return float(sum(k * p for k, p in dist.items()))


class SimulatedMMInfinity:
    """Event-driven M/M/infinity queue.

    Examples
    --------
    >>> sim = SimulatedMMInfinity(arrival_rate=0.5, service_rate=1 / 30, seed=1)
    >>> stats = sim.run(horizon=20000)
    >>> abs(stats["mean_occupancy"] - 15.0) < 1.0
    True
    """

    def __init__(self, arrival_rate: float, service_rate: float, seed: int = 0) -> None:
        if arrival_rate <= 0 or service_rate <= 0:
            raise ValueError("arrival and service rates must be positive")
        self._lambda = arrival_rate
        self._mu = service_rate
        self._rng = RngRegistry(seed)

    def run(self, horizon: float) -> dict:
        """Simulate on [0, horizon] and return occupancy/sojourn stats."""
        sim = Simulator()
        arrivals = self._rng.stream("arrivals")
        services = self._rng.stream("services")
        tracker = _OccupancyTracker()
        sojourns: list[float] = []

        def depart(entered: float) -> None:
            tracker.update(sim.now, -1)
            sojourns.append(sim.now - entered)

        def arrive() -> None:
            if sim.now >= horizon:
                return
            tracker.update(sim.now, +1)
            sim.schedule_after(services.exponential(1.0 / self._mu), depart, sim.now)
            sim.schedule_after(arrivals.exponential(1.0 / self._lambda), arrive)

        sim.schedule_after(arrivals.exponential(1.0 / self._lambda), arrive)
        sim.run_until(horizon)
        tracker.finish(horizon)
        return {
            "mean_occupancy": tracker.mean(),
            "occupancy_distribution": tracker.distribution(),
            "mean_sojourn": float(np.mean(sojourns)) if sojourns else 0.0,
            "completed": len(sojourns),
        }


class SimulatedMMkk:
    """Event-driven M/M/k/k loss queue.

    Arrivals finding all ``capacity`` slots busy are counted as blocked
    and discarded, exactly matching the Erlang-loss model (the *drop*
    alternative the paper contrasts with RCAD's preemption).
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        capacity: int,
        seed: int = 0,
    ) -> None:
        if arrival_rate <= 0 or service_rate <= 0:
            raise ValueError("arrival and service rates must be positive")
        if capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {capacity}")
        self._lambda = arrival_rate
        self._mu = service_rate
        self._k = capacity
        self._rng = RngRegistry(seed)

    def run(self, horizon: float) -> dict:
        """Simulate on [0, horizon]; returns blocking and occupancy stats."""
        sim = Simulator()
        arrivals = self._rng.stream("arrivals")
        services = self._rng.stream("services")
        tracker = _OccupancyTracker()
        offered = 0
        blocked = 0

        def depart() -> None:
            tracker.update(sim.now, -1)

        def arrive() -> None:
            nonlocal offered, blocked
            if sim.now >= horizon:
                return
            offered += 1
            if tracker.current >= self._k:
                blocked += 1
            else:
                tracker.update(sim.now, +1)
                sim.schedule_after(services.exponential(1.0 / self._mu), depart)
            sim.schedule_after(arrivals.exponential(1.0 / self._lambda), arrive)

        sim.schedule_after(arrivals.exponential(1.0 / self._lambda), arrive)
        sim.run_until(horizon)
        tracker.finish(horizon)
        return {
            "offered": offered,
            "blocked": blocked,
            "blocking_probability": blocked / offered if offered else 0.0,
            "mean_occupancy": tracker.mean(),
            "occupancy_distribution": tracker.distribution(),
        }
