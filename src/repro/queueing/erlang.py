"""The Erlang loss (Erlang-B) formula and its inverse problems.

Equation (5) of the paper: for an M/M/k/k queue with offered load
``rho = lambda/mu`` the probability that an arriving packet finds all
``k`` buffer slots full is ::

    E(rho, k) = (rho^k / k!) / sum_{i=0..k} rho^i / i!

The paper uses this in two ways, both implemented here:

* *forward* -- given traffic rate lambda, buffer size k and delay
  parameter mu, predict the drop (or preemption) rate, which is what
  the **adaptive adversary** of Section 5.4 computes to decide whether
  preemption dominates;
* *inverse* -- given lambda, k and a target drop rate alpha, choose mu
  "so as to have a target packet drop rate alpha when using buffering
  to enhance privacy" (Section 4); nodes nearer the sink see larger
  lambda and must shrink 1/mu to hold alpha.
"""

from __future__ import annotations

import math
import operator

from scipy.optimize import brentq

__all__ = [
    "erlang_b",
    "erlang_b_inverse_capacity",
    "offered_load_for_target_loss",
    "mu_for_target_loss",
]


def _check_servers(servers, minimum: int = 0) -> int:
    """Coerce ``servers`` to a plain int, rejecting non-integral types.

    Accepts anything indexable as an integer (``int``, ``numpy.int64``,
    ...) via :func:`operator.index`; rejects ``bool`` explicitly (it
    indexes as 0/1 but a boolean server count is always a bug).  Type
    errors fire *before* any range comparison, so a string argument
    raises ``TypeError`` rather than an unordered-comparison error.
    """
    if isinstance(servers, bool):
        raise TypeError("server count must be an integer, got bool")
    try:
        servers = operator.index(servers)
    except TypeError:
        raise TypeError(
            f"server count must be an integer, got {type(servers).__name__}"
        ) from None
    if servers < minimum:
        raise ValueError(
            f"server count must be at least {minimum}, got {servers}"
        )
    return servers


def erlang_b(offered_load: float, servers: int) -> float:
    """Blocking probability E(rho, k) of an M/M/k/k queue.

    Uses the standard numerically stable recursion ::

        E(rho, 0) = 1
        E(rho, k) = rho * E(rho, k-1) / (k + rho * E(rho, k-1))

    which avoids the overflowing factorials of the textbook form and is
    exact for all loads.

    Parameters
    ----------
    offered_load:
        rho = lambda / mu >= 0 (in Erlangs).
    servers:
        k >= 0, the number of buffer slots.

    Examples
    --------
    >>> round(erlang_b(2.0, 4), 6)
    0.095238
    >>> erlang_b(0.0, 3)
    0.0
    >>> import numpy as np
    >>> erlang_b(0.0, np.int64(3))
    0.0
    """
    servers = _check_servers(servers)
    if offered_load < 0:
        raise ValueError(f"offered load must be non-negative, got {offered_load}")
    blocking = 1.0
    for k in range(1, servers + 1):
        blocking = offered_load * blocking / (k + offered_load * blocking)
    return blocking


def erlang_b_inverse_capacity(offered_load: float, target_loss: float) -> int:
    """Smallest k with E(rho, k) <= target_loss.

    The buffer-provisioning question: how many slots must a node have
    to keep the drop rate at or below ``target_loss`` for a given load?
    """
    _check_target(target_loss)
    if offered_load < 0:
        raise ValueError(f"offered load must be non-negative, got {offered_load}")
    blocking = 1.0
    k = 0
    while blocking > target_loss:
        k += 1
        blocking = offered_load * blocking / (k + offered_load * blocking)
        if k > 10_000_000:  # pragma: no cover - guard against pathological targets
            raise RuntimeError("capacity search did not converge")
    return k


def offered_load_for_target_loss(servers: int, target_loss: float) -> float:
    """Largest rho with E(rho, k) <= target_loss.

    ``E(rho, k)`` is strictly increasing in rho (for k >= 1), so the
    answer is the unique root of ``E(rho, k) - target_loss``.
    """
    servers = _check_servers(servers, minimum=1)
    _check_target(target_loss)
    if erlang_b(0.0, servers) > target_loss:  # pragma: no cover - impossible: E(0,k)=0
        raise ValueError("target loss unattainable")
    # Bracket the root: blocking -> 1 as rho -> inf.
    hi = 1.0
    while erlang_b(hi, servers) < target_loss:
        hi *= 2.0
        if hi > 1e12:
            raise RuntimeError("load search did not converge")
    return float(brentq(lambda rho: erlang_b(rho, servers) - target_loss, 0.0, hi))


def mu_for_target_loss(arrival_rate: float, servers: int, target_loss: float) -> float:
    """Smallest service rate mu achieving E(lambda/mu, k) <= target_loss.

    This is the paper's Section 4 design rule: pick the delay parameter
    mu (i.e. mean extra delay 1/mu) at each node "so as to have a
    target packet drop rate alpha".  Nodes closer to the sink carry a
    larger aggregate ``arrival_rate`` and therefore get a larger mu
    (shorter delays).

    Returns the minimum admissible mu; any mu above it also meets the
    target (at the cost of privacy).
    """
    servers = _check_servers(servers, minimum=1)
    if arrival_rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate}")
    max_load = offered_load_for_target_loss(servers, target_loss)
    return arrival_rate / max_load


def _check_target(target_loss: float) -> None:
    if not 0.0 < target_loss < 1.0:
        raise ValueError(
            f"target loss must be strictly between 0 and 1, got {target_loss}"
        )


def erlang_b_direct(offered_load: float, servers: int) -> float:
    """Textbook form of the Erlang-B formula (Equation (5) verbatim).

    Present for cross-validation against :func:`erlang_b`; computed in
    log space so it remains usable for moderate k, but prefer
    :func:`erlang_b` in production code.
    """
    servers = _check_servers(servers)
    if offered_load < 0:
        raise ValueError(f"offered load must be non-negative, got {offered_load}")
    if offered_load == 0:
        return 1.0 if servers == 0 else 0.0
    log_rho = math.log(offered_load)
    log_terms = [i * log_rho - math.lgamma(i + 1) for i in range(servers + 1)]
    top = log_terms[servers]
    peak = max(log_terms)
    denominator = sum(math.exp(term - peak) for term in log_terms)
    return math.exp(top - peak) / denominator


__all__.append("erlang_b_direct")
