"""Adversary models: estimating packet creation times at the sink.

The adversary sits at the sink, reads cleartext headers and arrival
times, and estimates each packet's creation time.  By Kerckhoff's
principle it knows the deployment, routing, per-hop transmission delay
tau, the delay distributions (mean per-hop extra delay 1/mu) and the
buffer capacity k.  Three estimators of increasing sophistication:

* :class:`NaiveAdversary` -- ``x_hat = z - h * tau`` (Section 2.1): only
  accounts for transmission time; exact against an undefended network;
* :class:`BaselineAdversary` -- ``x_hat = z - h * (tau + 1/mu)``
  (Section 5.1): additionally subtracts the *advertised* mean privacy
  delay, "neglecting the fact that some packets may have shorter delays
  ... due to packet preemptions";
* :class:`AdaptiveAdversary` -- (Section 5.4) uses the Erlang loss
  formula on the traffic rate it *observes* at the sink to detect when
  RCAD preemption dominates, and then switches its per-hop delay
  estimate from ``1/mu`` to ``n k / lambda_tot``.

All adversaries consume :class:`~repro.net.packet.PacketObservation`
objects only -- the construction of that type guarantees no ground
truth can leak into the estimate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.net.packet import PacketObservation
from repro.queueing.erlang import erlang_b
from repro.runtime import kernels

__all__ = [
    "FlowKnowledge",
    "Adversary",
    "NaiveAdversary",
    "BaselineAdversary",
    "AdaptiveAdversary",
    "PathAwareAdaptiveAdversary",
    "ModelBasedAdversary",
]


@dataclass(frozen=True)
class FlowKnowledge:
    """Deployment knowledge the adversary holds (Kerckhoff's principle).

    Attributes
    ----------
    transmission_delay:
        tau, the constant per-hop transmit time.
    mean_delay_per_hop:
        1/mu, the advertised mean artificial delay per hop (0 for an
        undefended network).
    buffer_capacity:
        k, per-node buffer slots (None if advertised as unbounded).
    n_sources:
        Number of sources whose flows converge before the sink; the
        adaptive adversary's ``n`` in the ``n k / lambda_tot`` rule.
    """

    transmission_delay: float = 1.0
    mean_delay_per_hop: float = 0.0
    buffer_capacity: int | None = None
    n_sources: int = 1

    def __post_init__(self) -> None:
        if self.transmission_delay < 0:
            raise ValueError("transmission delay must be non-negative")
        if self.mean_delay_per_hop < 0:
            raise ValueError("mean delay per hop must be non-negative")
        if self.buffer_capacity is not None and self.buffer_capacity < 1:
            raise ValueError("buffer capacity must be at least 1")
        if self.n_sources < 1:
            raise ValueError("need at least one source")


class Adversary(abc.ABC):
    """Creation-time estimator run over sink observations.

    Observations must be fed in arrival order; stateful adversaries
    (the adaptive one) accumulate traffic statistics as they observe.
    """

    def __init__(self, knowledge: FlowKnowledge) -> None:
        self.knowledge = knowledge

    @abc.abstractmethod
    def estimate(self, observation: PacketObservation) -> float:
        """Estimated creation time x_hat for one observed packet."""

    def estimate_all(self, observations: list[PacketObservation]) -> list[float]:
        """Estimate a whole arrival sequence (must be in arrival order).

        Dispatches to the adversary's numpy batch kernel
        (:meth:`_estimate_batch`) when one exists; adversaries without
        one fall back to the per-observation scalar loop.  Both paths
        produce identical estimates -- :meth:`estimate_all_scalar` is
        kept as the explicit oracle the equivalence tests compare
        against.
        """
        if not observations:
            return []
        arrivals, hops, origins = kernels.observation_arrays(observations)
        self._check_arrival_order(arrivals)
        batch = self._estimate_batch(arrivals, hops, origins)
        if batch is None:
            return [self.estimate(observation) for observation in observations]
        return batch.tolist()

    def estimate_all_scalar(
        self, observations: list[PacketObservation]
    ) -> list[float]:
        """The original per-observation loop (oracle for the batch path)."""
        previous = -float("inf")
        estimates = []
        for observation in observations:
            if observation.arrival_time < previous:
                raise ValueError(
                    "observations must be supplied in arrival order; "
                    f"{observation.arrival_time:g} after {previous:g}"
                )
            previous = observation.arrival_time
            estimates.append(self.estimate(observation))
        return estimates

    @staticmethod
    def _check_arrival_order(arrivals: np.ndarray) -> None:
        if arrivals.size > 1:
            steps = np.diff(arrivals)
            if np.any(steps < 0):
                offender = int(np.argmax(steps < 0))
                raise ValueError(
                    "observations must be supplied in arrival order; "
                    f"{arrivals[offender + 1]:g} after {arrivals[offender]:g}"
                )

    def _estimate_batch(
        self, arrivals: np.ndarray, hops: np.ndarray, origins: np.ndarray
    ) -> np.ndarray | None:
        """Batch estimates for a validated arrival sequence, or None.

        Subclasses with a vectorized kernel override this; returning
        None selects the scalar fallback.  Stateful adversaries must
        leave themselves in the same state the scalar loop would.
        """
        return None

    def reset(self) -> None:
        """Forget accumulated observation state (no-op by default)."""


class NaiveAdversary(Adversary):
    """x_hat = z - h * tau: the Section 2.1 baseline estimator.

    Exact when the network adds no artificial delay; the reference
    point showing an undefended network leaks creation times perfectly.
    """

    def estimate(self, observation: PacketObservation) -> float:
        return observation.arrival_time - (
            observation.hop_count * self.knowledge.transmission_delay
        )

    def _estimate_batch(self, arrivals, hops, origins):
        return kernels.naive_estimates(
            arrivals, hops, self.knowledge.transmission_delay
        )


class BaselineAdversary(Adversary):
    """x_hat = z - h * (tau + 1/mu): knows the delay distributions.

    The Section 5.1 estimator: subtracts the advertised mean artificial
    delay per hop on top of the transmission time, but keeps using the
    *original* delay distribution even when RCAD preemption has
    shortened the real delays -- the blind spot Figure 2(a) exposes.
    """

    def estimate(self, observation: PacketObservation) -> float:
        per_hop = (
            self.knowledge.transmission_delay + self.knowledge.mean_delay_per_hop
        )
        return observation.arrival_time - observation.hop_count * per_hop

    def _estimate_batch(self, arrivals, hops, origins):
        return kernels.baseline_estimates(
            arrivals,
            hops,
            self.knowledge.transmission_delay,
            self.knowledge.mean_delay_per_hop,
        )


class AdaptiveAdversary(Adversary):
    """The Section 5.4 adversary: detects preemption via Erlang loss.

    It estimates the aggregate sink traffic rate ``lambda_tot`` from
    the arrival stream it observes, computes the buffer-overflow
    probability ``E(lambda_tot / mu, k)`` and compares it against
    ``preemption_threshold`` (0.1 in the paper):

    * below the threshold, buffers rarely fill; it estimates like the
      baseline adversary (per-hop extra delay ``1/mu``);
    * above it, preemption dominates and the effective buffer drain
      time governs delays; it estimates the per-hop extra delay as
      ``n k / lambda_tot``.

    Parameters
    ----------
    knowledge:
        Must include ``buffer_capacity`` and ``n_sources``.
    preemption_threshold:
        Erlang-loss probability above which the adversary assumes the
        preemption-dominated regime.
    warmup_observations:
        Arrivals to observe before trusting the rate estimate; until
        then it behaves like the baseline adversary.
    clamp_to_advertised:
        If True (default), the preemption-regime estimate
        ``n k / lambda_tot`` is capped at the advertised mean ``1/mu``.
        RCAD preemption can only *shorten* realized delays, so a
        saturation estimate exceeding the advertised mean is evidence
        the saturation model does not apply at that load; without the
        clamp the raw paper formula badly overshoots at intermediate
        loads where only part of the path is saturated.
    """

    def __init__(
        self,
        knowledge: FlowKnowledge,
        preemption_threshold: float = 0.1,
        warmup_observations: int = 10,
        clamp_to_advertised: bool = True,
    ) -> None:
        super().__init__(knowledge)
        if knowledge.buffer_capacity is None:
            raise ValueError("adaptive adversary needs the buffer capacity k")
        if knowledge.mean_delay_per_hop <= 0:
            raise ValueError(
                "adaptive adversary needs the advertised mean delay 1/mu"
            )
        if not 0.0 < preemption_threshold < 1.0:
            raise ValueError(
                f"threshold must be in (0, 1), got {preemption_threshold}"
            )
        if warmup_observations < 2:
            raise ValueError("need at least 2 warm-up observations")
        self.preemption_threshold = preemption_threshold
        self.warmup_observations = warmup_observations
        self.clamp_to_advertised = clamp_to_advertised
        self._first_arrival: float | None = None
        self._last_arrival: float | None = None
        self._arrival_count = 0

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._first_arrival = None
        self._last_arrival = None
        self._arrival_count = 0

    @property
    def observed_rate(self) -> float | None:
        """Estimated aggregate arrival rate lambda_tot at the sink."""
        if self._arrival_count < 2 or self._last_arrival == self._first_arrival:
            return None
        return (self._arrival_count - 1) / (self._last_arrival - self._first_arrival)

    def preemption_probability(self) -> float | None:
        """Erlang-loss estimate E(lambda_tot/mu, k) from observed traffic."""
        rate = self.observed_rate
        if rate is None:
            return None
        mu = 1.0 / self.knowledge.mean_delay_per_hop
        return erlang_b(rate / mu, self.knowledge.buffer_capacity)

    def in_preemption_regime(self) -> bool:
        """True once observed traffic implies loss above the threshold."""
        if self._arrival_count < self.warmup_observations:
            return False
        probability = self.preemption_probability()
        return probability is not None and probability > self.preemption_threshold

    # ------------------------------------------------------------------
    def estimate(self, observation: PacketObservation) -> float:
        self._record(observation)
        per_hop_extra = self._per_hop_extra_delay()
        per_hop = self.knowledge.transmission_delay + per_hop_extra
        return observation.arrival_time - observation.hop_count * per_hop

    def _record(self, observation: PacketObservation) -> None:
        if self._first_arrival is None:
            self._first_arrival = observation.arrival_time
        self._last_arrival = observation.arrival_time
        self._arrival_count += 1

    def _per_hop_extra_delay(self) -> float:
        if not self.in_preemption_regime():
            return self.knowledge.mean_delay_per_hop
        rate = self.observed_rate
        assert rate is not None  # in_preemption_regime implies a rate estimate
        capacity = self.knowledge.buffer_capacity
        assert capacity is not None  # enforced in __init__
        saturation_delay = self.knowledge.n_sources * capacity / rate
        if self.clamp_to_advertised:
            return min(saturation_delay, self.knowledge.mean_delay_per_hop)
        return saturation_delay

    def _estimate_batch(self, arrivals, hops, origins):
        capacity = self.knowledge.buffer_capacity
        assert capacity is not None  # enforced in __init__
        estimates = kernels.adaptive_estimates(
            arrivals,
            hops,
            transmission_delay=self.knowledge.transmission_delay,
            mean_delay_per_hop=self.knowledge.mean_delay_per_hop,
            buffer_capacity=capacity,
            n_sources=self.knowledge.n_sources,
            preemption_threshold=self.preemption_threshold,
            warmup_observations=self.warmup_observations,
            clamp_to_advertised=self.clamp_to_advertised,
            prior_count=self._arrival_count,
            prior_first_arrival=self._first_arrival,
        )
        # Leave the adversary in the exact state the scalar loop would:
        # every batch observation has been recorded.
        if self._first_arrival is None:
            self._first_arrival = float(arrivals[0])
        self._last_arrival = float(arrivals[-1])
        self._arrival_count += int(arrivals.size)
        return estimates


class PathAwareAdaptiveAdversary(Adversary):
    """Extension: a deployment-aware adversary modelling every hop.

    The paper's adaptive adversary treats the whole path as uniformly
    saturated.  A deployment-aware adversary can do better: it knows
    the routing tree (Kerckhoff), so it knows the *aggregate* rate
    lambda_v at every node v on a flow's path.  For each hop it
    predicts the mean extra delay as ::

        1/mu                      if E(lambda_v / mu, k) <= threshold
        min(1/mu, k / lambda_v)   otherwise

    i.e. the advertised delay where the buffer rarely fills, and the
    Little's-law drain time k/lambda_v of a saturated RCAD buffer where
    it does.  This is the strongest timing adversary in the library and
    the benchmark suite uses it to upper-bound how much of RCAD's
    privacy gain survives full deployment knowledge.

    Parameters
    ----------
    knowledge:
        Baseline flow knowledge (tau, 1/mu, k).
    path_rates:
        Mapping origin node id -> list of aggregate arrival rates
        lambda_v at each buffering node on that origin's path, source
        first.  Typically computed with
        :class:`repro.queueing.tandem.QueueTreeModel`.
    preemption_threshold:
        Per-node Erlang-loss switching threshold.
    """

    def __init__(
        self,
        knowledge: FlowKnowledge,
        path_rates: dict[int, list[float]],
        preemption_threshold: float = 0.1,
    ) -> None:
        super().__init__(knowledge)
        if knowledge.buffer_capacity is None:
            raise ValueError("path-aware adversary needs the buffer capacity k")
        if knowledge.mean_delay_per_hop <= 0:
            raise ValueError("path-aware adversary needs the advertised mean 1/mu")
        if not 0.0 < preemption_threshold < 1.0:
            raise ValueError(
                f"threshold must be in (0, 1), got {preemption_threshold}"
            )
        if not path_rates:
            raise ValueError("need per-path rate knowledge for at least one origin")
        self.preemption_threshold = preemption_threshold
        self._path_delay: dict[int, float] = {
            origin: self._predict_path_delay(rates)
            for origin, rates in path_rates.items()
        }

    def _predict_path_delay(self, node_rates: list[float]) -> float:
        mu = 1.0 / self.knowledge.mean_delay_per_hop
        capacity = self.knowledge.buffer_capacity
        assert capacity is not None  # enforced in __init__
        total = 0.0
        for rate in node_rates:
            if rate <= 0:
                total += self.knowledge.mean_delay_per_hop
                continue
            blocking = erlang_b(rate / mu, capacity)
            if blocking > self.preemption_threshold:
                total += min(self.knowledge.mean_delay_per_hop, capacity / rate)
            else:
                total += self.knowledge.mean_delay_per_hop
        return total

    def estimate(self, observation: PacketObservation) -> float:
        try:
            extra = self._path_delay[observation.origin]
        except KeyError:
            raise KeyError(
                f"no path knowledge for origin {observation.origin}; "
                f"known origins: {sorted(self._path_delay)}"
            )
        transmission = observation.hop_count * self.knowledge.transmission_delay
        return observation.arrival_time - transmission - extra

    def _estimate_batch(self, arrivals, hops, origins):
        return kernels.path_table_estimates(
            arrivals, hops, origins, self._path_delay,
            self.knowledge.transmission_delay,
        )


class ModelBasedAdversary(Adversary):
    """Extension: estimates via the closed-form RCAD node model.

    The strongest analytic adversary in the library: it predicts each
    hop's mean RCAD delay with the exact Little's-law result
    ``(1 - E(lambda_v/mu, k)) / mu`` (see
    :mod:`repro.queueing.rcad_model`), which interpolates smoothly
    between the advertised delay and the saturated drain time instead
    of switching between them at a threshold.  Against RCAD its
    creation-time estimates are nearly unbiased at every load; the MSE
    that remains is pure delay *variance* -- the irreducible privacy
    floor randomness buys.

    Parameters
    ----------
    knowledge:
        Baseline flow knowledge (tau, 1/mu, k).
    path_rates:
        Mapping origin node id -> aggregate arrival rates lambda_v at
        each buffering node on that origin's path, source first.
    """

    def __init__(
        self,
        knowledge: FlowKnowledge,
        path_rates: dict[int, list[float]],
    ) -> None:
        super().__init__(knowledge)
        if knowledge.buffer_capacity is None:
            raise ValueError("model-based adversary needs the buffer capacity k")
        if knowledge.mean_delay_per_hop <= 0:
            raise ValueError("model-based adversary needs the advertised mean 1/mu")
        if not path_rates:
            raise ValueError("need per-path rate knowledge for at least one origin")
        # Imported here to keep module import costs flat for users that
        # never instantiate this adversary.
        from repro.queueing.rcad_model import RcadNodeModel

        mu = 1.0 / knowledge.mean_delay_per_hop
        capacity = knowledge.buffer_capacity
        self._path_delay: dict[int, float] = {}
        for origin, rates in path_rates.items():
            total = 0.0
            for rate in rates:
                if rate <= 0:
                    total += knowledge.mean_delay_per_hop
                    continue
                total += RcadNodeModel(
                    arrival_rate=rate, service_rate=mu, capacity=capacity
                ).mean_delay
            self._path_delay[origin] = total

    def estimate(self, observation: PacketObservation) -> float:
        try:
            extra = self._path_delay[observation.origin]
        except KeyError:
            raise KeyError(
                f"no path knowledge for origin {observation.origin}; "
                f"known origins: {sorted(self._path_delay)}"
            )
        transmission = observation.hop_count * self.knowledge.transmission_delay
        return observation.arrival_time - transmission - extra

    def _estimate_batch(self, arrivals, hops, origins):
        return kernels.path_table_estimates(
            arrivals, hops, origins, self._path_delay,
            self.knowledge.transmission_delay,
        )
