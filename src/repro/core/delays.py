"""Artificial delay distributions.

The temporal-privacy mechanism is simple: before forwarding, a node
holds each packet for a random time Y drawn from one of these
distributions.  The paper argues for the **exponential**: among all
non-negative distributions of a given mean it has maximal differential
entropy, so for a fixed latency budget it gives the adversary the least
predictable delay.  The others serve as ablation comparators and for
the §3.3 decomposition experiments.

Every distribution reports its mean and differential entropy so the
information-theoretic machinery can evaluate trade-offs analytically.
"""

from __future__ import annotations

import abc
import math

import numpy as np

from repro.infotheory.entropy import (
    erlang_entropy,
    exponential_entropy,
    uniform_entropy,
)

__all__ = [
    "DelayDistribution",
    "ExponentialDelay",
    "UniformDelay",
    "ConstantDelay",
    "ErlangDelay",
    "ParetoDelay",
]


class DelayDistribution(abc.ABC):
    """A non-negative random delay with known mean and entropy."""

    #: True when the law has a density (no atoms).  The vectorized
    #: simulator fast path requires it: with a continuous delay at
    #: every hop, cross-packet event-time ties are measure-zero, so a
    #: time-sorted batch replay reproduces the event-driven execution
    #: order exactly.  Point masses (:class:`ConstantDelay`) override
    #: this to False and keep the event-driven path.
    continuous = True

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delay."""

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` delays, bit-identical to ``n`` :meth:`sample` calls.

        Subclasses override with one vectorized generator call; numpy's
        per-distribution generators produce the same stream whether
        drawn singly or with ``size=n``, which the fast-path
        determinism tests pin down.
        """
        return np.array([self.sample(rng) for _ in range(n)], dtype=np.float64)

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """E[Y], the average artificial delay this node injects."""

    @property
    @abc.abstractmethod
    def entropy(self) -> float:
        """Differential entropy h(Y) in nats (-inf for point masses)."""

    def scaled(self, factor: float) -> "DelayDistribution":
        """A distribution of the same family with mean scaled by ``factor``.

        Used by the hop-delay planners of §3.3 to split a path delay
        budget unevenly across nodes while keeping the family fixed.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support mean re-scaling"
        )


class ExponentialDelay(DelayDistribution):
    """Exp(rate) delay with mean 1/rate: the paper's choice.

    Parameters
    ----------
    rate:
        mu; the paper's simulations use 1/mu = 30 time units.

    Examples
    --------
    >>> d = ExponentialDelay(rate=1 / 30)
    >>> d.mean
    30.0
    """

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "ExponentialDelay":
        """Construct from the mean delay 1/mu."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return cls(rate=1.0 / mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.exponential(1.0 / self.rate, size=n)

    @property
    def mean(self) -> float:
        return 1.0 / self.rate

    @property
    def entropy(self) -> float:
        return exponential_entropy(self.rate)

    def scaled(self, factor: float) -> "ExponentialDelay":
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return ExponentialDelay(rate=self.rate / factor)

    def __repr__(self) -> str:
        return f"ExponentialDelay(mean={self.mean:g})"


class UniformDelay(DelayDistribution):
    """Uniform(low, high) delay: bounded, sub-max-entropy comparator."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0:
            raise ValueError(f"low must be non-negative, got {low}")
        if high <= low:
            raise ValueError(f"need high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    @classmethod
    def from_mean(cls, mean: float) -> "UniformDelay":
        """Uniform(0, 2*mean), matching the exponential's mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return cls(0.0, 2.0 * mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    @property
    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    @property
    def entropy(self) -> float:
        return uniform_entropy(self.high - self.low)

    def scaled(self, factor: float) -> "UniformDelay":
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return UniformDelay(self.low * factor, self.high * factor)

    def __repr__(self) -> str:
        return f"UniformDelay([{self.low:g}, {self.high:g}])"


class ConstantDelay(DelayDistribution):
    """Deterministic delay: adds latency but zero timing uncertainty.

    The degenerate comparator: h(Y) = -infinity, so a deployment-aware
    adversary subtracts it perfectly and privacy gains nothing.
    """

    continuous = False  # a point mass makes event-time ties routine

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"delay must be non-negative, got {value}")
        self.value = float(value)

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    @property
    def mean(self) -> float:
        return self.value

    @property
    def entropy(self) -> float:
        return -math.inf

    def scaled(self, factor: float) -> "ConstantDelay":
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return ConstantDelay(self.value * factor)

    def __repr__(self) -> str:
        return f"ConstantDelay({self.value:g})"


class ErlangDelay(DelayDistribution):
    """Erlang(shape, rate) delay: sum of ``shape`` exponential stages.

    Interpolates between exponential (shape=1) and nearly deterministic
    (large shape) at fixed mean shape/rate -- useful for studying how
    concentrating the delay distribution erodes privacy.
    """

    def __init__(self, shape: int, rate: float) -> None:
        if shape < 1 or int(shape) != shape:
            raise ValueError(f"shape must be a positive integer, got {shape}")
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.shape = int(shape)
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float, shape: int = 2) -> "ErlangDelay":
        """Erlang with the given mean and stage count."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return cls(shape=shape, rate=shape / mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.shape, 1.0 / self.rate))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.gamma(self.shape, 1.0 / self.rate, size=n)

    @property
    def mean(self) -> float:
        return self.shape / self.rate

    @property
    def entropy(self) -> float:
        return erlang_entropy(self.shape, self.rate)

    def scaled(self, factor: float) -> "ErlangDelay":
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return ErlangDelay(shape=self.shape, rate=self.rate / factor)

    def __repr__(self) -> str:
        return f"ErlangDelay(shape={self.shape}, mean={self.mean:g})"


class ParetoDelay(DelayDistribution):
    """Pareto(x_m, alpha) delay: the heavy-tailed comparator.

    Heavy tails are sometimes proposed for timing obfuscation because
    occasional huge delays frustrate worst-case analysis.  The entropy
    verdict is still negative: as a non-negative law of the same mean,
    the Pareto's differential entropy cannot exceed the exponential's
    (max-entropy property) -- and its tail costs unbounded latency
    percentiles.  Requires alpha > 1 so the mean exists.
    """

    def __init__(self, scale: float, shape: float) -> None:
        if scale <= 0:
            raise ValueError(f"scale (x_m) must be positive, got {scale}")
        if shape <= 1:
            raise ValueError(
                f"shape (alpha) must exceed 1 for a finite mean, got {shape}"
            )
        self.scale = float(scale)
        self.shape = float(shape)

    @classmethod
    def from_mean(cls, mean: float, shape: float = 2.5) -> "ParetoDelay":
        """Pareto with the given mean: x_m = mean (alpha - 1) / alpha."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        if shape <= 1:
            raise ValueError(f"shape must exceed 1, got {shape}")
        return cls(scale=mean * (shape - 1.0) / shape, shape=shape)

    def sample(self, rng: np.random.Generator) -> float:
        # numpy's pareto draws (X/x_m - 1); rescale and shift back.
        return float(self.scale * (1.0 + rng.pareto(self.shape)))

    def sample_batch(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.scale * (1.0 + rng.pareto(self.shape, size=n))

    @property
    def mean(self) -> float:
        return self.shape * self.scale / (self.shape - 1.0)

    @property
    def entropy(self) -> float:
        # h = ln(x_m / alpha) + 1 + 1/alpha  (standard Pareto entropy).
        return math.log(self.scale / self.shape) + 1.0 + 1.0 / self.shape

    def scaled(self, factor: float) -> "ParetoDelay":
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return ParetoDelay(scale=self.scale * factor, shape=self.shape)

    def __repr__(self) -> str:
        return f"ParetoDelay(mean={self.mean:g}, alpha={self.shape:g})"
