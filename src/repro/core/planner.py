"""Hop-delay planners: how much delay each node should inject.

The delay process can be decomposed across the path (Section 3.3):
``Y_j = Y_0j + Y_1j + ... + Y_{N-1,j}``, and the decomposition is a
design degree of freedom.  Three planners:

* :class:`UniformPlanner` -- the paper's simulation default: every
  node draws Exp(mu) with the same mean 1/mu (= 30 time units);
* :class:`SinkWeightedPlanner` -- the Section 3.3 idea that "it may be
  possible to decompose {Y_j} so that more delay is introduced when a
  forwarding node is further from the sink", relieving the congested
  near-sink buffers;
* :class:`ErlangTargetPlanner` -- the Section 4 rule: from each node's
  aggregate traffic rate lambda_i, pick mu_i so the Erlang loss
  E(lambda_i/mu_i, k) hits a target drop/preemption rate alpha;
  approaching the sink, lambda grows and the planner shrinks 1/mu_i.

All planners emit a :class:`DelayPlan`: node id -> delay distribution.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping

from repro.core.delays import DelayDistribution, ExponentialDelay
from repro.net.routing import RoutingTree
from repro.queueing.erlang import mu_for_target_loss
from repro.queueing.tandem import QueueTreeModel

__all__ = [
    "DelayPlan",
    "DelayPlanner",
    "UniformPlanner",
    "SinkWeightedPlanner",
    "ErlangTargetPlanner",
]


@dataclass
class DelayPlan:
    """Assignment of a delay distribution to every buffering node."""

    per_node: Mapping[int, DelayDistribution]
    default: DelayDistribution | None = None

    def distribution_for(self, node: int) -> DelayDistribution:
        """Delay distribution node ``node`` must draw from."""
        dist = self.per_node.get(node, self.default)
        if dist is None:
            raise KeyError(f"no delay distribution planned for node {node}")
        return dist

    def mean_path_delay(self, tree: RoutingTree, source: int) -> float:
        """Expected total artificial delay on ``source``'s path."""
        buffering_nodes = tree.path(source)[:-1]
        return float(sum(self.distribution_for(n).mean for n in buffering_nodes))


class DelayPlanner(abc.ABC):
    """Strategy interface producing a :class:`DelayPlan` for a tree."""

    @abc.abstractmethod
    def plan(self, tree: RoutingTree, flow_rates: Mapping[int, float]) -> DelayPlan:
        """Build the plan.

        Parameters
        ----------
        tree:
            The routing tree toward the sink.
        flow_rates:
            Mapping source node id -> packet creation rate lambda.
        """


class UniformPlanner(DelayPlanner):
    """Same exponential delay (mean 1/mu) at every node.

    The configuration of the paper's Figures 2 and 3 ("unless mentioned
    otherwise we took 1/mu = 30 time units").
    """

    def __init__(self, mean_delay: float) -> None:
        if mean_delay < 0:
            raise ValueError(f"mean delay must be non-negative, got {mean_delay}")
        self.mean_delay = float(mean_delay)

    def plan(self, tree: RoutingTree, flow_rates: Mapping[int, float]) -> DelayPlan:
        if self.mean_delay == 0:
            raise ValueError("uniform planner with zero delay plans nothing")
        return DelayPlan(per_node={}, default=ExponentialDelay.from_mean(self.mean_delay))


class SinkWeightedPlanner(DelayPlanner):
    """More delay far from the sink, less near it (Section 3.3).

    Node i at tree depth d_i (hops to the sink) gets an exponential
    delay with mean proportional to ``d_i ** exponent``.  The constant
    is normalized per flow so that the *deepest* flow's total mean path
    delay equals what the uniform planner would give it
    (``hop_count * reference_mean_delay``) -- privacy budget preserved,
    load shifted away from the congested near-sink trunk.
    """

    def __init__(self, reference_mean_delay: float, exponent: float = 1.0) -> None:
        if reference_mean_delay <= 0:
            raise ValueError(
                f"reference mean delay must be positive, got {reference_mean_delay}"
            )
        if exponent < 0:
            raise ValueError(f"exponent must be non-negative, got {exponent}")
        self.reference_mean_delay = float(reference_mean_delay)
        self.exponent = float(exponent)

    def plan(self, tree: RoutingTree, flow_rates: Mapping[int, float]) -> DelayPlan:
        if not flow_rates:
            raise ValueError("need at least one flow to plan for")
        participating = tree.nodes_on_flows(sorted(flow_rates))
        depth = {node: tree.hop_count(node) for node in participating}
        deepest_source = max(flow_rates, key=lambda s: tree.hop_count(s))
        deepest_path = tree.path(deepest_source)[:-1]
        budget = tree.hop_count(deepest_source) * self.reference_mean_delay
        weight_sum = sum(depth[node] ** self.exponent for node in deepest_path)
        scale = budget / weight_sum
        per_node = {
            node: ExponentialDelay.from_mean(
                max(scale * depth[node] ** self.exponent, 1e-9)
            )
            for node in participating
        }
        return DelayPlan(
            per_node=per_node,
            default=ExponentialDelay.from_mean(self.reference_mean_delay),
        )


class ErlangTargetPlanner(DelayPlanner):
    """Per-node mu from the Erlang loss formula (Section 4).

    For each buffering node with aggregate Poisson rate lambda_i and
    buffer capacity k, choose the smallest mu_i such that
    ``E(lambda_i / mu_i, k) <= target_loss``.  A ``max_mean_delay`` cap
    keeps lightly loaded far-from-sink nodes from planning absurdly
    long delays (the formula alone would push 1/mu to infinity as
    lambda -> 0).
    """

    def __init__(
        self,
        buffer_capacity: int,
        target_loss: float,
        max_mean_delay: float = 1000.0,
    ) -> None:
        if buffer_capacity < 1:
            raise ValueError(f"capacity must be at least 1, got {buffer_capacity}")
        if not 0.0 < target_loss < 1.0:
            raise ValueError(f"target loss must be in (0, 1), got {target_loss}")
        if max_mean_delay <= 0:
            raise ValueError(f"max mean delay must be positive, got {max_mean_delay}")
        self.buffer_capacity = int(buffer_capacity)
        self.target_loss = float(target_loss)
        self.max_mean_delay = float(max_mean_delay)

    def plan(self, tree: RoutingTree, flow_rates: Mapping[int, float]) -> DelayPlan:
        if not flow_rates:
            raise ValueError("need at least one flow to plan for")
        model = QueueTreeModel(
            parent=dict(tree.parent),
            injection_rates=dict(flow_rates),
            default_service_rate=1.0,  # irrelevant: only arrival rates are used
        )
        participating = tree.nodes_on_flows(sorted(flow_rates))
        per_node: dict[int, DelayDistribution] = {}
        for node in participating:
            rate = model.arrival_rate(node)
            if rate <= 0:
                per_node[node] = ExponentialDelay.from_mean(self.max_mean_delay)
                continue
            mu = mu_for_target_loss(rate, self.buffer_capacity, self.target_loss)
            per_node[node] = ExponentialDelay.from_mean(
                min(1.0 / mu, self.max_mean_delay)
            )
        return DelayPlan(per_node=per_node, default=None)
