"""Empirical-Bayes creation-time estimation (extension).

The paper's adversaries subtract a *mean* delay.  The optimal
estimator for a known prior is the posterior mean
``E[X | Z = z] = integral x f_X(x) f_Y(z - x) dx / integral ...`` --
and the prior f_X need not be given: the Agrawal-Aggarwal EM procedure
(paper ref [1], :mod:`repro.infotheory.deconvolution`) reconstructs it
from the very arrival stream under attack.  Chaining the two yields a
two-stage **empirical-Bayes attack**:

1. deconvolve the (believed) delay density out of the arrival
   histogram to learn the creation-time prior;
2. estimate every packet by its posterior mean under that prior.

Against structured traffic (bursty activity patterns) this crushes the
mean-subtracting adversaries wherever the delay model is right -- and
under RCAD it inherits the same wrong delay model, so the paper's
defence degrades this stronger attack too.  The benchmark quantifies
both halves.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from repro.core.adversary import Adversary, FlowKnowledge
from repro.infotheory.deconvolution import em_deconvolve
from repro.net.packet import PacketObservation

__all__ = ["EmpiricalBayesAdversary", "erlang_path_delay_pdf"]


def erlang_path_delay_pdf(
    hop_count: int, mean_delay_per_hop: float, transmission_delay: float
) -> Callable[[np.ndarray], np.ndarray]:
    """Density of a path's total believed delay.

    Sum of ``hop_count`` i.i.d. Exp(mean) artificial delays --
    Erlang(h, 1/mean) -- shifted by the deterministic transmission
    time ``hop_count * tau``.  This is the delay model a Kerckhoff
    adversary holds for a flow with hop count h (correct for unlimited
    buffers; optimistic under RCAD).
    """
    if hop_count < 1:
        raise ValueError(f"hop count must be >= 1, got {hop_count}")
    if mean_delay_per_hop <= 0:
        raise ValueError(f"mean delay must be positive, got {mean_delay_per_hop}")
    from scipy import stats as scipy_stats

    erlang = scipy_stats.gamma(a=hop_count, scale=mean_delay_per_hop)
    shift = hop_count * transmission_delay

    def pdf(lag: np.ndarray) -> np.ndarray:
        return erlang.pdf(np.asarray(lag, dtype=float) - shift)

    return pdf


class EmpiricalBayesAdversary(Adversary):
    """Two-stage attack: EM-learned prior + posterior-mean estimates.

    Unlike the streaming adversaries, this one is *batch*: call
    :meth:`fit` with the full observation stream first (the EM stage
    needs the whole arrival histogram), then :meth:`estimate` /
    :meth:`estimate_all` produce the per-packet posterior means.

    Parameters
    ----------
    knowledge:
        Must carry the advertised ``mean_delay_per_hop`` (> 0).
    hop_counts:
        Mapping origin node id -> path hop count (readable from any
        one header; fixed per flow).
    grid_step:
        Resolution of the creation-time grid used by both stages.
    """

    def __init__(
        self,
        knowledge: FlowKnowledge,
        hop_counts: Mapping[int, int],
        grid_step: float = 10.0,
    ) -> None:
        super().__init__(knowledge)
        if knowledge.mean_delay_per_hop <= 0:
            raise ValueError("empirical-Bayes adversary needs the mean delay 1/mu")
        if not hop_counts:
            raise ValueError("need hop counts for at least one origin")
        if grid_step <= 0:
            raise ValueError(f"grid step must be positive, got {grid_step}")
        self.hop_counts = dict(hop_counts)
        self.grid_step = float(grid_step)
        self._posterior_mean: dict[int, Callable[[float], float]] = {}

    # ------------------------------------------------------------------
    def fit(self, observations: list[PacketObservation]) -> None:
        """Stage 1: learn each flow's creation-time prior by EM."""
        if not observations:
            raise ValueError("cannot fit on zero observations")
        per_origin: dict[int, list[float]] = {}
        for observation in observations:
            per_origin.setdefault(observation.origin, []).append(
                observation.arrival_time
            )
        self._posterior_mean.clear()
        for origin, arrivals_list in per_origin.items():
            hops = self._hops_for(origin)
            delay_pdf = erlang_path_delay_pdf(
                hops,
                self.knowledge.mean_delay_per_hop,
                self.knowledge.transmission_delay,
            )
            arrivals = np.asarray(arrivals_list, dtype=float)
            grid = np.arange(0.0, arrivals.max() + self.grid_step, self.grid_step)
            prior = em_deconvolve(arrivals, delay_pdf, grid)
            self._posterior_mean[origin] = self._make_estimator(
                prior.grid, prior.density, delay_pdf
            )

    @staticmethod
    def _make_estimator(grid, masses, delay_pdf):
        def posterior_mean(z: float) -> float:
            weights = masses * delay_pdf(z - grid)
            total = weights.sum()
            if total <= 0:
                # Unexplainable arrival (numerically): fall back to the
                # prior mean, the best constant estimate.
                return float(np.dot(grid, masses))
            return float(np.dot(grid, weights) / total)

        return posterior_mean

    def _hops_for(self, origin: int) -> int:
        try:
            return self.hop_counts[origin]
        except KeyError:
            raise KeyError(
                f"no hop count for origin {origin}; known: {sorted(self.hop_counts)}"
            )

    # ------------------------------------------------------------------
    def estimate(self, observation: PacketObservation) -> float:
        if not self._posterior_mean:
            raise RuntimeError(
                "EmpiricalBayesAdversary.fit must run before estimation"
            )
        try:
            estimator = self._posterior_mean[observation.origin]
        except KeyError:
            raise KeyError(
                f"adversary was not fitted on origin {observation.origin}"
            )
        return estimator(observation.arrival_time)

    def reset(self) -> None:
        """Forget the fitted priors."""
        self._posterior_mean.clear()
