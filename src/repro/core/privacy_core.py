"""Clock-agnostic temporal-privacy state machine.

The buffer/delay/RCAD logic originally lived inside the DES-clocked
:class:`~repro.sim.simulator.SensorNetworkSimulator`, which made it
unusable from anything that is not an event-driven simulation.  This
module extracts that policy kernel into :class:`TemporalPrivacyCore`, a
pure state machine with no notion of *how* time advances: callers pass
``now`` explicitly.  Two drivers exist:

* the simulator keeps its event-driven shape -- it calls
  :meth:`TemporalPrivacyCore.offer` at packet arrival events and
  :meth:`TemporalPrivacyCore.release` from its scheduled release
  callbacks, so simulation results are bit-identical to the
  pre-extraction code (same buffer objects underneath, same RNG
  consumption order);
* the streaming service (:mod:`repro.service`) polls
  :meth:`TemporalPrivacyCore.poll_due` from an asyncio pump against the
  wall clock, and uses :meth:`TemporalPrivacyCore.restore` to reload
  buffered entries from a crash snapshot.

The core owns one :class:`~repro.core.buffers.PacketBuffer` (any
discipline) and optionally one
:class:`~repro.core.delays.DelayDistribution`.  It samples the
artificial delay, runs the buffer's admission decision, and reports
what happened as a :class:`CoreDecision`; scheduling (DES event or
asyncio timer) stays with the driver.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Iterable

import numpy as np

from repro.core.buffers import (
    AdmissionOutcome,
    BufferedEntry,
    PacketBuffer,
)
from repro.core.delays import DelayDistribution

__all__ = ["CoreAction", "CoreDecision", "TemporalPrivacyCore"]


class CoreAction(Enum):
    """What the core decided for an offered event."""

    #: no delay distribution configured: pass straight through.
    FORWARD = "forward"
    #: buffered; will surface from ``poll_due`` at its release time.
    ADMIT = "admit"
    #: buffered, but a victim was evicted and must be emitted *now*.
    PREEMPT = "preempt"
    #: refused (drop-tail full buffer, or service admission control).
    SHED = "shed"


_ACTION_FOR_OUTCOME = {
    AdmissionOutcome.ADMITTED: CoreAction.ADMIT,
    AdmissionOutcome.PREEMPTED_VICTIM: CoreAction.PREEMPT,
    AdmissionOutcome.DROPPED: CoreAction.SHED,
}


@dataclass(frozen=True)
class CoreDecision:
    """Outcome of :meth:`TemporalPrivacyCore.offer`.

    Attributes
    ----------
    action:
        What happened to the arriving event.
    delay:
        The sampled artificial delay (0.0 for ``FORWARD``; still the
        sampled value for ``SHED`` -- the draw happens before admission
        so RNG consumption does not depend on buffer state).
    entry:
        The buffered entry for the arriving event (``ADMIT`` /
        ``PREEMPT``), or None.
    victim:
        The evicted entry that must be emitted immediately
        (``PREEMPT`` only), or None.
    """

    action: CoreAction
    delay: float
    entry: BufferedEntry | None
    victim: BufferedEntry | None


class TemporalPrivacyCore:
    """One node's (or shard's) temporal-privacy policy kernel.

    Parameters
    ----------
    buffer:
        The buffer discipline holding delayed events.
    delay:
        Distribution of the artificial delay Y; ``None`` means no
        delaying at all (every offer returns ``FORWARD``).
    delay_rng:
        Stream consumed by delay sampling.  Required when ``delay``
        is given.
    victim_rng:
        Stream handed to the buffer's victim policy (only stochastic
        policies consume it).  Defaults to ``delay_rng``.

    Examples
    --------
    >>> from repro.core.buffers import RcadBuffer
    >>> from repro.core.delays import ConstantDelay
    >>> import numpy as np
    >>> core = TemporalPrivacyCore(
    ...     RcadBuffer(capacity=2), ConstantDelay(5.0),
    ...     delay_rng=np.random.default_rng(0))
    >>> core.offer("a", now=0.0).action
    <CoreAction.ADMIT: 'admit'>
    >>> [e.payload for e in core.poll_due(5.0)]
    ['a']
    """

    def __init__(
        self,
        buffer: PacketBuffer,
        delay: DelayDistribution | None = None,
        delay_rng: np.random.Generator | None = None,
        victim_rng: np.random.Generator | None = None,
    ) -> None:
        if delay is not None and delay_rng is None:
            raise ValueError("a delay distribution needs a delay_rng stream")
        self.buffer = buffer
        self.delay = delay
        self._delay_rng = delay_rng
        self._victim_rng = victim_rng if victim_rng is not None else delay_rng

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return self.buffer.occupancy

    @property
    def capacity(self) -> int | None:
        return self.buffer.capacity

    @property
    def is_full(self) -> bool:
        return self.buffer.is_full

    @property
    def is_empty(self) -> bool:
        return self.buffer.occupancy == 0

    def entries(self) -> list[BufferedEntry]:
        """Buffered entries in insertion order."""
        return self.buffer.entries()

    def next_release_time(self) -> float | None:
        """Earliest scheduled release, or None when empty."""
        return self.buffer.shortest_remaining_release_time()

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def offer(self, payload: Any, now: float, delay: float | None = None) -> CoreDecision:
        """Offer one arriving event to the privacy mechanism at ``now``.

        ``delay`` overrides the sampled delay (the DES driver does not
        use this; tests and replay tooling do).
        """
        if delay is None:
            if self.delay is None:
                return CoreDecision(CoreAction.FORWARD, 0.0, entry=None, victim=None)
            delay = self.delay.sample(self._delay_rng)
        result = self.buffer.offer(
            payload,
            arrival_time=now,
            release_time=now + delay,
            rng=self._victim_rng,
        )
        return CoreDecision(
            action=_ACTION_FOR_OUTCOME[result.outcome],
            delay=delay,
            entry=result.entry,
            victim=result.victim,
        )

    def release(self, entry_id: int) -> BufferedEntry:
        """Remove and return one entry (DES drivers call this from the
        release event they scheduled at ``entry.release_time``)."""
        return self.buffer.release(entry_id)

    def poll_due(self, now: float) -> list[BufferedEntry]:
        """Remove and return every entry due at or before ``now``.

        Entries come back ordered by ``(release_time, entry_id)``, so a
        polling driver emits releases in exactly the order a
        fine-grained event-driven driver would have.
        """
        if not self.buffer.occupancy:
            return []
        due = [e for e in self.buffer.entries() if e.release_time <= now]
        due.sort(key=lambda e: (e.release_time, e.entry_id))
        return [self.buffer.release(e.entry_id) for e in due]

    def restore(
        self, items: Iterable[tuple[Any, float, float]]
    ) -> list[BufferedEntry]:
        """Reload snapshot entries ``(payload, arrival_time, release_time)``.

        Bypasses admission (the entries were already admitted before the
        snapshot was taken): no preemption can occur and admission
        counters stay untouched.  Items are stored in iteration order,
        which assigns ascending ``entry_id``\\ s -- callers must iterate
        in the original admission order so preemption tie-breaking
        replays identically after a restore.
        """
        restored = []
        for payload, arrival_time, release_time in items:
            restored.append(
                self.buffer.restore_entry(payload, arrival_time, release_time)
            )
        return restored

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemporalPrivacyCore({type(self.buffer).__name__}, "
            f"occupancy={self.occupancy}, delay={self.delay!r})"
        )
