"""Buffer disciplines: infinite, drop-tail, and RCAD's preemptive buffer.

A node's buffer holds packets that are waiting out their artificial
delay.  Three disciplines, matching the paper's three evaluation cases:

* :class:`InfiniteBuffer` -- never full; realizes the M/M/infinity
  idealization of Section 4 (evaluation case 2, "unlimited buffers");
* :class:`DropTailBuffer` -- k slots, arrivals to a full buffer are
  dropped; realizes M/M/k/k with loss (the non-RCAD alternative the
  paper mentions: "either the packet is dropped or ... a preemption
  strategy");
* :class:`RcadBuffer` -- k slots; an arrival to a full buffer preempts
  a victim (default: shortest remaining delay), which is transmitted
  immediately, and the new packet takes its slot (evaluation case 3).
  Victim selection is fully deterministic: when several entries tie on
  the policy's criterion the lowest ``entry_id`` wins (see
  :mod:`repro.core.victim`), which is what makes preemption order
  replay-stable across a snapshot/restore cycle.

The buffers are pure decision structures: they track occupancy and
decide admissions, but event scheduling stays in the simulator, which
keeps this module independently unit-testable.
"""

from __future__ import annotations

import abc
import operator
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Sequence

import numpy as np

from repro.core.victim import ShortestRemainingDelay, VictimPolicy

__all__ = [
    "AdmissionOutcome",
    "BufferedEntry",
    "AdmissionResult",
    "PacketBuffer",
    "InfiniteBuffer",
    "DropTailBuffer",
    "RcadBuffer",
]


def _validated_capacity(capacity: Any) -> int:
    """Capacity as an exact integer; mirrors the erlang.py convention.

    ``operator.index`` admits any integral type (python ints, numpy
    integers) while rejecting floats -- ``DropTailBuffer(2.9)`` used to
    silently truncate to 2 slots -- and bools, which are technically
    ints but always a caller bug here.
    """
    if isinstance(capacity, bool):
        raise TypeError("capacity must be an integer, not a bool")
    try:
        value = operator.index(capacity)
    except TypeError:
        raise TypeError(
            f"capacity must be an integer, got {type(capacity).__name__} "
            f"({capacity!r})"
        )
    if value < 1:
        raise ValueError(f"capacity must be at least 1, got {value}")
    return value


class AdmissionOutcome(Enum):
    """What happened when a packet arrived at the buffer."""

    ADMITTED = "admitted"
    DROPPED = "dropped"
    PREEMPTED_VICTIM = "preempted-victim"


@dataclass
class BufferedEntry:
    """A packet sitting in a buffer, waiting for its release time.

    ``payload`` is opaque to the buffer (the simulator stores the
    in-flight :class:`~repro.net.packet.Packet`); tests may store
    anything.  ``context`` carries the scheduler handle the simulator
    needs to cancel the pending release when the entry is preempted.
    """

    entry_id: int
    payload: Any
    arrival_time: float
    release_time: float
    context: Any = None

    def remaining_delay(self, now: float) -> float:
        """Time left until the scheduled release (>= 0)."""
        return max(self.release_time - now, 0.0)


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of offering a packet to a buffer.

    Attributes
    ----------
    outcome:
        What happened to the *arriving* packet
        (``PREEMPTED_VICTIM`` means it was admitted by evicting one).
    entry:
        The buffered entry created for the arriving packet, or None if
        it was dropped.
    victim:
        The evicted entry that must now be transmitted immediately, or
        None.
    """

    outcome: AdmissionOutcome
    entry: BufferedEntry | None
    victim: BufferedEntry | None


#: Buffer outcome -> telemetry probe event name.  A preemption's probe
#: fires once, after the victim is out and the newcomer is in, so the
#: reported occupancy is the (unchanged) post-swap value.
_PROBE_EVENTS = {
    AdmissionOutcome.ADMITTED: "admit",
    AdmissionOutcome.DROPPED: "drop",
    AdmissionOutcome.PREEMPTED_VICTIM: "preempt",
}


class PacketBuffer(abc.ABC):
    """Interface shared by all buffer disciplines."""

    def __init__(self) -> None:
        self._entries: dict[int, BufferedEntry] = {}
        self._next_id = 0
        self.admitted_count = 0
        self.dropped_count = 0
        self.preemption_count = 0
        self.peak_occupancy = 0
        #: Optional telemetry hook ``(event, occupancy) -> None`` called
        #: after every state change with the post-event occupancy, where
        #: ``event`` is ``"admit" | "drop" | "preempt" | "release"``.
        #: None (the default) keeps the hot path at one identity check.
        self.telemetry_probe = None

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of packets currently buffered."""
        return len(self._entries)

    def entries(self) -> list[BufferedEntry]:
        """Snapshot of the buffered entries (insertion order)."""
        return list(self._entries.values())

    @property
    @abc.abstractmethod
    def capacity(self) -> int | None:
        """Buffer slots, or None for an unbounded buffer."""

    @property
    def is_full(self) -> bool:
        """True if no free slot remains."""
        return self.capacity is not None and self.occupancy >= self.capacity

    # ------------------------------------------------------------------
    def offer(
        self,
        payload: Any,
        arrival_time: float,
        release_time: float,
        rng: np.random.Generator | None = None,
    ) -> AdmissionResult:
        """Offer an arriving packet to the buffer.

        Parameters
        ----------
        payload:
            Opaque packet object.
        arrival_time:
            Current simulation time.
        release_time:
            When the packet's artificial delay would expire
            (``arrival_time + sampled delay``).
        rng:
            Random stream, needed only by stochastic victim policies.
        """
        if release_time < arrival_time:
            raise ValueError(
                f"release time {release_time:g} precedes arrival {arrival_time:g}"
            )
        result = self._admit(payload, arrival_time, release_time, rng)
        if result.outcome is AdmissionOutcome.DROPPED:
            self.dropped_count += 1
        else:
            self.admitted_count += 1
            if result.outcome is AdmissionOutcome.PREEMPTED_VICTIM:
                self.preemption_count += 1
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        if self.telemetry_probe is not None:
            self.telemetry_probe(_PROBE_EVENTS[result.outcome], self.occupancy)
        return result

    def release(self, entry_id: int) -> BufferedEntry:
        """Remove and return the entry whose delay expired (or victim)."""
        try:
            entry = self._entries.pop(entry_id)
        except KeyError:
            raise KeyError(f"no buffered entry with id {entry_id}")
        if self.telemetry_probe is not None:
            self.telemetry_probe("release", self.occupancy)
        return entry

    def shortest_remaining_release_time(self) -> float | None:
        """Earliest scheduled release among buffered packets, if any."""
        if not self._entries:
            return None
        return min(entry.release_time for entry in self._entries.values())

    def restore_entry(
        self, payload: Any, arrival_time: float, release_time: float
    ) -> BufferedEntry:
        """Reinsert an already-admitted entry (snapshot/restore seam).

        Bypasses the admission decision and its counters: the entry was
        admitted -- and counted -- by the process that wrote the
        snapshot.  Raises ``ValueError`` instead of preempting or
        dropping when the buffer has no free slot, because a restore
        into a same-capacity buffer can never legitimately overflow.
        Entries restored in their original admission order receive
        ascending ``entry_id``\\ s, which keeps victim-policy
        tie-breaking replay-stable across the restore.
        """
        if release_time < arrival_time:
            raise ValueError(
                f"release time {release_time:g} precedes arrival {arrival_time:g}"
            )
        if self.is_full:
            raise ValueError(
                f"cannot restore into a full buffer (capacity {self.capacity})"
            )
        entry = self._store(payload, arrival_time, release_time)
        self.peak_occupancy = max(self.peak_occupancy, self.occupancy)
        return entry

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _admit(
        self,
        payload: Any,
        arrival_time: float,
        release_time: float,
        rng: np.random.Generator | None,
    ) -> AdmissionResult:
        """Discipline-specific admission decision."""

    def _store(self, payload: Any, arrival_time: float, release_time: float) -> BufferedEntry:
        entry = BufferedEntry(
            entry_id=self._next_id,
            payload=payload,
            arrival_time=arrival_time,
            release_time=release_time,
        )
        self._next_id += 1
        self._entries[entry.entry_id] = entry
        return entry


class InfiniteBuffer(PacketBuffer):
    """Unbounded buffer: every packet gets its full sampled delay.

    Evaluation case 2 ("Delay & Unlimited Buffers"); analytically an
    M/M/infinity queue when arrivals are Poisson and delays exponential.
    """

    @property
    def capacity(self) -> None:
        return None

    def _admit(self, payload, arrival_time, release_time, rng):
        entry = self._store(payload, arrival_time, release_time)
        return AdmissionResult(AdmissionOutcome.ADMITTED, entry, victim=None)


class DropTailBuffer(PacketBuffer):
    """Bounded buffer that drops arrivals when full (M/M/k/k loss)."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        self._capacity = _validated_capacity(capacity)

    @property
    def capacity(self) -> int:
        return self._capacity

    def _admit(self, payload, arrival_time, release_time, rng):
        if self.is_full:
            return AdmissionResult(AdmissionOutcome.DROPPED, entry=None, victim=None)
        entry = self._store(payload, arrival_time, release_time)
        return AdmissionResult(AdmissionOutcome.ADMITTED, entry, victim=None)


class RcadBuffer(PacketBuffer):
    """RCAD: Rate-Controlled Adaptive Delaying via buffer preemption.

    "If the buffer is full, a node should select an appropriate
    buffered packet, called the victim packet, and transmit it
    immediately rather than drop packets.  Consequently, preemption
    automatically adjusts the effective mu based on buffer state."
    (Section 5.)

    Parameters
    ----------
    capacity:
        k buffer slots (the paper uses k = 10 to approximate Mica-2
        motes).
    victim_policy:
        How to choose the packet to transmit early; defaults to the
        paper's shortest-remaining-delay rule.

    Examples
    --------
    >>> buf = RcadBuffer(capacity=1)
    >>> first = buf.offer("a", arrival_time=0.0, release_time=10.0)
    >>> second = buf.offer("b", arrival_time=1.0, release_time=12.0)
    >>> second.outcome
    <AdmissionOutcome.PREEMPTED_VICTIM: 'preempted-victim'>
    >>> second.victim.payload
    'a'
    """

    def __init__(
        self, capacity: int, victim_policy: VictimPolicy | None = None
    ) -> None:
        super().__init__()
        self._capacity = _validated_capacity(capacity)
        self.victim_policy = victim_policy or ShortestRemainingDelay()

    @property
    def capacity(self) -> int:
        return self._capacity

    def _admit(self, payload, arrival_time, release_time, rng):
        victim = None
        if self.is_full:
            victim = self.victim_policy.select(
                self.entries(), now=arrival_time, rng=rng or _DEFAULT_RNG
            )
            del self._entries[victim.entry_id]
        entry = self._store(payload, arrival_time, release_time)
        outcome = (
            AdmissionOutcome.PREEMPTED_VICTIM
            if victim is not None
            else AdmissionOutcome.ADMITTED
        )
        return AdmissionResult(outcome, entry, victim=victim)


# Deterministic fall-back stream for victim policies that never use it
# (every deterministic policy); stochastic policies should always be
# given an explicit stream by the caller.
_DEFAULT_RNG = np.random.Generator(np.random.PCG64(0))
