"""Privacy and performance metrics (paper §5.1).

Two metrics drive the whole evaluation:

* **temporal privacy** -- the adversary's mean square error over a
  flow's packets, ``MSE = sum (x_hat_i - x_i)^2 / m``; larger is more
  private;
* **performance** -- the end-to-end delivery latency; the goal is to
  "introduce minimal extra latency while maximizing temporal privacy".

:class:`PacketRecord` is the per-packet ground-truth row produced by
the simulator; :func:`summarize_flow` matches adversary estimates
against it to produce a :class:`FlowMetrics`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.infotheory.mmse import mse_of_estimator

__all__ = ["PacketRecord", "LatencyStats", "FlowMetrics", "summarize_flow"]


@dataclass(frozen=True)
class PacketRecord:
    """Ground truth for one delivered packet (simulator's god view)."""

    flow_id: int
    packet_id: int
    created_at: float
    delivered_at: float
    hop_count: int
    preemptions_experienced: int = 0

    def __post_init__(self) -> None:
        if self.delivered_at < self.created_at:
            raise ValueError(
                f"packet delivered at {self.delivered_at:g} before being "
                f"created at {self.created_at:g}"
            )

    @property
    def latency(self) -> float:
        """End-to-end delivery latency."""
        return self.delivered_at - self.created_at


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample."""

    mean: float
    median: float
    p95: float
    maximum: float
    minimum: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        """Compute the summary; requires at least one sample."""
        values = np.asarray(samples, dtype=float)
        if values.size == 0:
            raise ValueError("cannot summarize an empty latency sample")
        return cls(
            mean=float(values.mean()),
            median=float(np.median(values)),
            p95=float(np.percentile(values, 95)),
            maximum=float(values.max()),
            minimum=float(values.min()),
        )


@dataclass(frozen=True)
class FlowMetrics:
    """Privacy and performance of one flow under one adversary."""

    flow_id: int
    n_packets: int
    mse: float
    mean_error: float
    latency: LatencyStats
    preemption_fraction: float

    @property
    def rmse(self) -> float:
        """Root mean square error, in time units."""
        return math.sqrt(self.mse)


def summarize_flow(
    records: Sequence[PacketRecord], estimates: Sequence[float]
) -> FlowMetrics:
    """Combine ground truth and adversary estimates into metrics.

    ``records`` and ``estimates`` must be aligned (same packets, same
    order -- arrival order, matching how the adversary consumed the
    observations) and non-empty, from a single flow.
    """
    if not records:
        raise ValueError("cannot summarize an empty flow")
    if len(records) != len(estimates):
        raise ValueError(
            f"{len(records)} records but {len(estimates)} estimates"
        )
    flow_ids = {record.flow_id for record in records}
    if len(flow_ids) != 1:
        raise ValueError(f"records span multiple flows: {sorted(flow_ids)}")
    truths = [record.created_at for record in records]
    mse = mse_of_estimator(truths, estimates)
    errors = np.asarray(estimates, dtype=float) - np.asarray(truths, dtype=float)
    latency = LatencyStats.from_samples([record.latency for record in records])
    preempted = sum(1 for r in records if r.preemptions_experienced > 0)
    return FlowMetrics(
        flow_id=records[0].flow_id,
        n_packets=len(records),
        mse=mse,
        mean_error=float(errors.mean()),
        latency=latency,
        preemption_fraction=preempted / len(records),
    )
