"""Optimal decomposition of the path delay budget (§3.2-§3.3 + §4).

The paper leaves open "the general task of finding a non-trivial
stochastic process {Y_j} that minimizes the mutual information ...
[which] depends on the sensor network design constraints (e.g. buffer
storage)" (§3.2).  Within the exponential family the problem becomes
tractable and this module solves it exactly.

Setup: a flow's path visits nodes with aggregate rates lambda_1..N;
node i injects Exp(1/m_i) delay (mean m_i).  Against the strongest
mean-compensating adversary, the residual MSE is the *variance* of the
total artificial delay, ``sum m_i^2`` (independent exponentials).
Design constraints:

* latency: ``sum m_i <= L`` (the application's delay tolerance);
* buffers: node i tolerates offered load ``lambda_i * m_i <= rho_max``
  where ``rho_max`` is the largest load with Erlang loss E(rho, k) at
  or below the target alpha (§4) -- i.e. ``m_i <= rho_max / lambda_i``.

Maximizing the convex objective ``sum m_i^2`` over this box-plus-
simplex polytope attains its maximum at a vertex: **fill the largest
caps first** (greedy water-filling).  Caps shrink toward the sink
(lambda_i grows), so the optimum concentrates delay *far from the
sink* -- the paper's §3.3 intuition ("more delay is introduced when a
forwarding node is further from the sink"), here derived rather than
assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.delays import ExponentialDelay
from repro.core.planner import DelayPlan, DelayPlanner
from repro.net.routing import RoutingTree
from repro.queueing.erlang import offered_load_for_target_loss
from repro.queueing.tandem import QueueTreeModel

__all__ = ["OptimizedAllocation", "optimize_path_delays", "VarianceOptimalPlanner"]


@dataclass(frozen=True)
class OptimizedAllocation:
    """Solution of the path delay-budget problem.

    Attributes
    ----------
    means:
        Optimal mean delay m_i per node, in path order (source first).
    achieved_variance:
        ``sum m_i^2`` -- the adversary's residual MSE floor.
    latency_used:
        ``sum m_i``; equals the budget unless every cap binds first.
    caps:
        The per-node buffer caps ``rho_max / lambda_i``.
    """

    means: tuple[float, ...]
    achieved_variance: float
    latency_used: float
    caps: tuple[float, ...]

    @property
    def binding_nodes(self) -> tuple[int, ...]:
        """Path indices whose buffer cap is met exactly."""
        return tuple(
            i for i, (m, c) in enumerate(zip(self.means, self.caps))
            if abs(m - c) < 1e-9 and m > 0
        )


def optimize_path_delays(
    path_rates: Sequence[float],
    latency_budget: float,
    buffer_capacity: int,
    target_loss: float,
) -> OptimizedAllocation:
    """Variance-maximal split of a latency budget along a path.

    Parameters
    ----------
    path_rates:
        Aggregate Poisson arrival rate lambda_i at each buffering node
        on the path, source first.
    latency_budget:
        L, the total mean artificial delay the application tolerates.
    buffer_capacity:
        k buffer slots per node.
    target_loss:
        alpha, the per-node Erlang-loss ceiling (drop/preemption rate).

    Returns
    -------
    OptimizedAllocation
        The exact optimum: caps filled in decreasing-cap order until
        the budget runs out.
    """
    if latency_budget <= 0:
        raise ValueError(f"latency budget must be positive, got {latency_budget}")
    if not path_rates:
        raise ValueError("path must contain at least one node")
    if any(rate < 0 for rate in path_rates):
        raise ValueError("arrival rates must be non-negative")
    rho_max = offered_load_for_target_loss(buffer_capacity, target_loss)
    caps = tuple(
        (rho_max / rate) if rate > 0 else latency_budget for rate in path_rates
    )
    means = [0.0] * len(caps)
    remaining = latency_budget
    # Vertex of the polytope maximizing a convex sum of squares:
    # allocate to the largest caps first.
    for index in sorted(range(len(caps)), key=lambda i: caps[i], reverse=True):
        if remaining <= 0:
            break
        take = min(caps[index], remaining)
        means[index] = take
        remaining -= take
    return OptimizedAllocation(
        means=tuple(means),
        achieved_variance=float(sum(m * m for m in means)),
        latency_used=float(sum(means)),
        caps=caps,
    )


class VarianceOptimalPlanner(DelayPlanner):
    """A :class:`~repro.core.planner.DelayPlanner` built on the optimizer.

    Optimizes the delay split for one designated flow (``source``); its
    path nodes get the optimal means, and all other flow nodes fall
    back to a uniform reference delay.  The per-node aggregate rates
    come from the queueing tree model, so shared trunk nodes are capped
    by their *total* load, not just the designated flow's.
    """

    def __init__(
        self,
        source: int,
        latency_budget: float,
        buffer_capacity: int,
        target_loss: float,
        fallback_mean_delay: float,
    ) -> None:
        if fallback_mean_delay <= 0:
            raise ValueError("fallback mean delay must be positive")
        self.source = source
        self.latency_budget = float(latency_budget)
        self.buffer_capacity = int(buffer_capacity)
        self.target_loss = float(target_loss)
        self.fallback_mean_delay = float(fallback_mean_delay)

    def plan(self, tree: RoutingTree, flow_rates: Mapping[int, float]) -> DelayPlan:
        if self.source not in flow_rates:
            raise ValueError(
                f"designated source {self.source} is not among the flows"
            )
        model = QueueTreeModel(
            parent=dict(tree.parent),
            injection_rates=dict(flow_rates),
            default_service_rate=1.0,  # only arrival rates are used
        )
        path = tree.path(self.source)[:-1]
        allocation = optimize_path_delays(
            path_rates=[model.arrival_rate(node) for node in path],
            latency_budget=self.latency_budget,
            buffer_capacity=self.buffer_capacity,
            target_loss=self.target_loss,
        )
        per_node = {
            node: ExponentialDelay.from_mean(max(mean, 1e-9))
            for node, mean in zip(path, allocation.means)
        }
        return DelayPlan(
            per_node=per_node,
            default=ExponentialDelay.from_mean(self.fallback_mean_delay),
        )
