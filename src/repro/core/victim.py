"""Victim-selection policies for RCAD preemption.

When an RCAD buffer is full and a new packet arrives, one buffered
packet -- the *victim* -- is transmitted immediately to make room.
The paper chooses "the packet that has the shortest remaining delay
time.  In this way, the resulting delay times for that node are the
closest to the original distribution" (Section 5).  The alternative
policies here exist for the ablation benchmark that substantiates that
design choice.

A policy receives the buffered entries and the current time and returns
the entry to preempt.  Entries expose ``release_time`` (when the packet
would have been sent) and ``arrival_time`` (when it was buffered).

**Determinism contract.**  Every non-random policy breaks ties on its
primary criterion by ``entry_id``: :class:`ShortestRemainingDelay`,
:class:`LongestRemainingDelay` and :class:`OldestArrival` pick the
*lowest* id (earliest admission) among the tied entries, while
:class:`NewestArrival` picks the highest (latest admission, matching
its LIFO semantics).  Entry ids ascend in admission order, so the
choice is independent of dict iteration order, and -- because snapshot
restore re-numbers entries in their original admission order --
preemption decisions replay identically after a service crash/restore
cycle.  The streaming service's zero-loss guarantee relies on this.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.core.buffers import BufferedEntry

__all__ = [
    "VictimPolicy",
    "ShortestRemainingDelay",
    "LongestRemainingDelay",
    "RandomVictim",
    "OldestArrival",
    "NewestArrival",
]


class VictimPolicy(abc.ABC):
    """Strategy interface: choose which buffered packet to preempt."""

    #: short name used in experiment tables
    name: str = "abstract"

    @abc.abstractmethod
    def select(
        self, entries: Sequence["BufferedEntry"], now: float, rng: np.random.Generator
    ) -> "BufferedEntry":
        """Return the entry to transmit immediately.

        ``entries`` is non-empty; implementations must not mutate it.
        """

    @staticmethod
    def _require_entries(entries: Sequence["BufferedEntry"]) -> None:
        if not entries:
            raise ValueError("cannot select a victim from an empty buffer")


class ShortestRemainingDelay(VictimPolicy):
    """The paper's policy: preempt the packet closest to release.

    Truncating the delay that is already nearly over perturbs the
    realized delay distribution the least, keeping the adversary's
    model of the delays maximally wrong-footed per unit of disruption.

    When several entries share the shortest remaining release time the
    one with the lowest ``entry_id`` (earliest admission) is chosen;
    see the module determinism contract.
    """

    name = "shortest-remaining"

    def select(self, entries, now, rng):
        self._require_entries(entries)
        return min(entries, key=lambda e: (e.release_time, e.entry_id))


class LongestRemainingDelay(VictimPolicy):
    """Anti-policy: preempt the packet furthest from release.

    Maximally distorts the realized delays (long delays become short);
    included to show the cost of choosing the victim badly.
    """

    name = "longest-remaining"

    def select(self, entries, now, rng):
        self._require_entries(entries)
        return max(entries, key=lambda e: (e.release_time, -e.entry_id))


class RandomVictim(VictimPolicy):
    """Uniformly random victim: the no-information baseline."""

    name = "random"

    def select(self, entries, now, rng):
        self._require_entries(entries)
        return entries[int(rng.integers(len(entries)))]


class OldestArrival(VictimPolicy):
    """FIFO-style: preempt the packet buffered the longest."""

    name = "oldest-arrival"

    def select(self, entries, now, rng):
        self._require_entries(entries)
        return min(entries, key=lambda e: (e.arrival_time, e.entry_id))


class NewestArrival(VictimPolicy):
    """LIFO-style: preempt the packet buffered most recently."""

    name = "newest-arrival"

    def select(self, entries, now, rng):
        self._require_entries(entries)
        return max(entries, key=lambda e: (e.arrival_time, e.entry_id))
