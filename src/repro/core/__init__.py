"""The paper's contribution: temporal privacy via adaptive buffering.

* :mod:`repro.core.delays` -- the artificial delay distributions nodes
  draw from (exponential is the paper's max-entropy choice; uniform,
  constant and Erlang are the comparators),
* :mod:`repro.core.buffers` -- buffer disciplines: infinite (the
  M/M/infinity idealization), drop-tail (M/M/k/k) and **RCAD**'s
  preemptive buffer,
* :mod:`repro.core.victim` -- victim-selection policies for RCAD
  preemption (the paper picks shortest-remaining-delay; the others are
  ablations),
* :mod:`repro.core.adversary` -- creation-time estimators: naive,
  baseline (knows the delay distributions) and adaptive (switches
  estimate using the Erlang loss formula, Section 5.4),
* :mod:`repro.core.metrics` -- the paper's privacy (MSE) and
  performance (latency) metrics,
* :mod:`repro.core.planner` -- per-node delay-parameter planners:
  uniform, sink-weighted (Section 3.3) and Erlang-target (Section 4),
* :mod:`repro.core.privacy_core` -- the clock-agnostic
  :class:`TemporalPrivacyCore` state machine that both the DES
  simulator and the streaming service drive.
"""

from repro.core.adversary import (
    AdaptiveAdversary,
    Adversary,
    BaselineAdversary,
    FlowKnowledge,
    ModelBasedAdversary,
    NaiveAdversary,
    PathAwareAdaptiveAdversary,
)
from repro.core.bayes import EmpiricalBayesAdversary, erlang_path_delay_pdf
from repro.core.buffers import (
    AdmissionOutcome,
    BufferedEntry,
    DropTailBuffer,
    InfiniteBuffer,
    PacketBuffer,
    RcadBuffer,
)
from repro.core.delays import (
    ConstantDelay,
    DelayDistribution,
    ErlangDelay,
    ExponentialDelay,
    ParetoDelay,
    UniformDelay,
)
from repro.core.metrics import FlowMetrics, LatencyStats, PacketRecord, summarize_flow
from repro.core.optimizer import (
    OptimizedAllocation,
    VarianceOptimalPlanner,
    optimize_path_delays,
)
from repro.core.planner import (
    DelayPlan,
    ErlangTargetPlanner,
    SinkWeightedPlanner,
    UniformPlanner,
)
from repro.core.privacy_core import CoreAction, CoreDecision, TemporalPrivacyCore
from repro.core.victim import (
    LongestRemainingDelay,
    NewestArrival,
    OldestArrival,
    RandomVictim,
    ShortestRemainingDelay,
    VictimPolicy,
)

__all__ = [
    "DelayDistribution",
    "ExponentialDelay",
    "UniformDelay",
    "ConstantDelay",
    "ErlangDelay",
    "ParetoDelay",
    "PacketBuffer",
    "InfiniteBuffer",
    "DropTailBuffer",
    "RcadBuffer",
    "BufferedEntry",
    "AdmissionOutcome",
    "VictimPolicy",
    "ShortestRemainingDelay",
    "LongestRemainingDelay",
    "RandomVictim",
    "OldestArrival",
    "NewestArrival",
    "Adversary",
    "NaiveAdversary",
    "BaselineAdversary",
    "AdaptiveAdversary",
    "PathAwareAdaptiveAdversary",
    "ModelBasedAdversary",
    "EmpiricalBayesAdversary",
    "erlang_path_delay_pdf",
    "FlowKnowledge",
    "FlowMetrics",
    "LatencyStats",
    "PacketRecord",
    "summarize_flow",
    "DelayPlan",
    "UniformPlanner",
    "SinkWeightedPlanner",
    "ErlangTargetPlanner",
    "VarianceOptimalPlanner",
    "OptimizedAllocation",
    "optimize_path_delays",
    "CoreAction",
    "CoreDecision",
    "TemporalPrivacyCore",
]
