"""The backtracing adversary of the source-location literature.

The classical "patient" local eavesdropper (Ozturk et al., 2004;
Kamat et al., 2005): it starts at the sink and, whenever it overhears
a transmission *arriving at its current position*, it moves to the
transmitter.  Repeating this, it walks the routing path backwards at
one hop per overheard packet, eventually camping outside the source --
unless the routing layer (phantom routing) scatters the near-source
hops it follows.

The adversary here replays a simulation's transmission log: an exact,
deterministic reconstruction of what a physically co-located
eavesdropper would have overheard, with a per-move relocation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["BacktraceOutcome", "BacktracingAdversary"]


@dataclass(frozen=True)
class BacktraceOutcome:
    """Result of one backtracing hunt.

    Attributes
    ----------
    captured:
        True if the adversary reached the target source.
    capture_time:
        Simulation time of the capturing move (None if never).
    moves:
        Number of relocations performed.
    visited:
        The node sequence the adversary walked (starting at the sink).
    """

    captured: bool
    capture_time: float | None
    moves: int
    visited: tuple[int, ...]


class BacktracingAdversary:
    """Replays a transmission log, hopping toward transmitters.

    Parameters
    ----------
    sink:
        Where the hunt starts.
    relocation_delay:
        Time the adversary needs to move one hop; transmissions
        occurring while it is in transit are missed (the classic
        cautious-adversary assumption).
    """

    def __init__(self, sink: int, relocation_delay: float = 1.0) -> None:
        if relocation_delay < 0:
            raise ValueError(
                f"relocation delay must be non-negative, got {relocation_delay}"
            )
        self.sink = sink
        self.relocation_delay = float(relocation_delay)

    def hunt(
        self,
        transmissions: Sequence[tuple[float, int, int]],
        target_source: int,
    ) -> BacktraceOutcome:
        """Run the hunt over a time-ordered transmission log.

        Parameters
        ----------
        transmissions:
            (time, sender, receiver) triples, sorted by time -- the
            :attr:`~repro.sim.results.SimulationResult.transmissions`
            log of a run with ``record_transmissions=True``.
        target_source:
            The source node whose location the adversary wants.
        """
        position = self.sink
        busy_until = -float("inf")
        moves = 0
        visited = [self.sink]
        previous_time = -float("inf")
        for time, sender, receiver in transmissions:
            if time < previous_time:
                raise ValueError("transmission log must be sorted by time")
            previous_time = time
            if time < busy_until:
                continue  # still relocating: transmission missed
            if receiver != position:
                continue  # out of hearing: only arrivals at its position
            if sender == position:
                continue
            position = sender
            moves += 1
            visited.append(sender)
            busy_until = time + self.relocation_delay
            if position == target_source:
                return BacktraceOutcome(
                    captured=True,
                    capture_time=time,
                    moves=moves,
                    visited=tuple(visited),
                )
        return BacktraceOutcome(
            captured=False, capture_time=None, moves=moves, visited=tuple(visited)
        )
