"""Source-location privacy: the spatial companion (paper refs [11, 14]).

The paper's introduction frames spatio-temporal privacy as two
problems: hiding *when* a source observed the asset (this repository's
main subject) and hiding *where* the source is -- studied by the same
group as **phantom routing** (Kamat et al., ICDCS 2005; Ozturk et al.,
SASN 2004): each packet first takes a random walk away from the
source, then routes normally, so a hop-by-hop backtracing eavesdropper
is led astray.

This subpackage implements that companion defence and its adversary so
the two can be combined:

* :mod:`repro.location.policies` -- per-packet routing policies: plain
  tree routing and phantom routing (random-walk prefix);
* :mod:`repro.location.backtrace` -- the classical patient backtracing
  adversary (starts at the sink, hops to the transmitter of each
  packet it overhears arriving at its position) and the capture-time
  metric;
* the combined experiment lives in
  :mod:`repro.experiments.spatiotemporal`.
"""

from repro.location.backtrace import BacktraceOutcome, BacktracingAdversary
from repro.location.policies import (
    PhantomRoutingPolicy,
    RoutingPolicy,
    TreeRoutingPolicy,
)

__all__ = [
    "RoutingPolicy",
    "TreeRoutingPolicy",
    "PhantomRoutingPolicy",
    "BacktracingAdversary",
    "BacktraceOutcome",
]
