"""Per-packet routing policies: tree routing and phantom routing.

The simulator consults a :class:`RoutingPolicy` for every forwarding
decision.  :class:`TreeRoutingPolicy` reproduces the paper's fixed
convergecast tree.  :class:`PhantomRoutingPolicy` implements the
random-walk prefix of phantom routing: each packet performs ``h_walk``
random steps over the connectivity graph (never stepping onto the
sink, which would end the walk trivially), then follows the tree from
wherever the walk left it.  Walk state is tracked per packet.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.net.routing import RoutingTree
from repro.net.topology import Deployment

__all__ = ["RoutingPolicy", "TreeRoutingPolicy", "PhantomRoutingPolicy"]


class RoutingPolicy(abc.ABC):
    """Strategy interface for per-packet forwarding decisions."""

    @abc.abstractmethod
    def first_hop_state(self, packet_key: tuple[int, int]) -> None:
        """Initialize per-packet routing state (called at creation)."""

    @abc.abstractmethod
    def next_hop(
        self, node: int, packet_key: tuple[int, int], rng: np.random.Generator
    ) -> int:
        """The node ``node`` should forward packet ``packet_key`` to."""


class TreeRoutingPolicy(RoutingPolicy):
    """The paper's model: every packet follows the routing tree."""

    def __init__(self, tree: RoutingTree) -> None:
        self.tree = tree

    def first_hop_state(self, packet_key: tuple[int, int]) -> None:
        return None

    def next_hop(self, node, packet_key, rng):
        return self.tree.next_hop(node)


class PhantomRoutingPolicy(RoutingPolicy):
    """Phantom routing: ``walk_length`` random steps, then the tree.

    Parameters
    ----------
    tree:
        The convergecast tree used after the walk phase.
    deployment:
        Supplies the connectivity graph the walk moves over.
    walk_length:
        h_walk, the number of random steps prefixed to each packet's
        route.  0 degenerates to plain tree routing.

    Notes
    -----
    The walk avoids stepping onto the sink (a walk ending at the sink
    would deliver the packet with no routing phase and leak the
    source's proximity); if the sink is a node's only neighbour the
    walk is forced there and simply ends early.
    """

    def __init__(
        self,
        tree: RoutingTree,
        deployment: Deployment,
        walk_length: int,
    ) -> None:
        if walk_length < 0:
            raise ValueError(f"walk length must be non-negative, got {walk_length}")
        self.tree = tree
        self.deployment = deployment
        self.walk_length = int(walk_length)
        graph = deployment.connectivity_graph()
        self._neighbors: dict[int, list[int]] = {
            node: sorted(graph.neighbors(node)) for node in graph.nodes
        }
        self._remaining: dict[tuple[int, int], int] = {}

    def first_hop_state(self, packet_key: tuple[int, int]) -> None:
        if self.walk_length > 0:
            self._remaining[packet_key] = self.walk_length

    def next_hop(self, node, packet_key, rng):
        # Finished walk counters are removed (not left at 0) so the
        # policy object returns to its pre-run state once every packet
        # is routed: the result cache fingerprints the whole config, so
        # leftover per-packet state would make the post-run cache key
        # differ from the pre-run one and every phantom run would miss.
        remaining = self._remaining.get(packet_key, 0)
        if remaining <= 0:
            return self.tree.next_hop(node)
        candidates = [
            neighbor
            for neighbor in self._neighbors[node]
            if neighbor != self.deployment.sink
        ]
        if not candidates:
            # Cornered next to the sink: end the walk, route normally.
            del self._remaining[packet_key]
            return self.tree.next_hop(node)
        if remaining == 1:
            del self._remaining[packet_key]
        else:
            self._remaining[packet_key] = remaining - 1
        return int(candidates[int(rng.integers(len(candidates)))])
