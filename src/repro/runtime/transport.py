"""TCP transport for the distributed sweep fabric.

The fabric (:mod:`repro.runtime.fabric`) coordinates workers through a
shared *fabric directory*: an immutable grid, lease files claimed with
``O_CREAT | O_EXCL``, heartbeat files, and checksummed per-worker result
journals.  That protocol caps the fleet at one filesystem mount.  This
module lifts the same protocol onto TCP **without changing it**: the
coordinator runs a :class:`FabricEndpoint` -- an asyncio server whose
RPCs are a gateway onto the coordinator's own fabric directory -- and
remote workers drive it through a :class:`TransportClient`.

Because every RPC lands in the directory (a ``claim`` is a lease file,
a ``heartbeat`` is a heartbeat file, an ``upload`` is an appended
journal line), all of the fabric's crash-tolerance machinery works
unchanged for networked workers: expired leases are stolen, torn
journal lines are ignored, the coordinator merges in item order, and a
dead fleet still degrades to in-process serial completion.  The
transport adds nothing that must be trusted for correctness -- it is an
*access path*, and the invariants live where they always did.

Wire format
-----------

One frame is a 4-byte big-endian length followed by a UTF-8 JSON
envelope::

    uint32_be(len) || {"v": 1, "sha": <hex>, "payload": {...}}

``sha`` is the SHA-256 of the *canonical* payload encoding (sorted
keys, compact separators) -- the same checksum-the-record discipline as
the result journals, so a torn or bit-flipped frame is detected at the
frame layer and surfaces as a retransmission, never as corrupt state.
Result uploads additionally carry the journal's own per-record checksum
(:func:`repro.runtime.journal.encode_cell_entry`), verified server-side
before the line is appended.

Delivery semantics
------------------

Every RPC is idempotent, so the client may blindly retransmit after any
transport failure (at-least-once delivery):

* ``claim``/``acquire`` -- re-claiming a lease you already own is a
  no-op success (same epoch); claims race through ``O_CREAT | O_EXCL``
  exactly as on a shared filesystem;
* ``upload`` -- byte-identical re-uploads are deduplicated server-side
  by ``(worker, index, sha)``; duplicates that slip through anyway
  (endpoint restart) are deduplicated at merge time by item index,
  later record wins -- cells are deterministic, so the bytes agree;
* ``heartbeat``/``status``/``hello``/``grid``/``bye`` -- trivially
  idempotent.

Every response carries the coordinator's clock (``"t"``), which is the
authoritative time base for lease expiry -- a worker with a skewed
wall clock cannot prematurely steal a live lease because it never does
expiry arithmetic itself (the server does, with server time).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import os
import random
import socket
import struct
import threading
import time
from dataclasses import asdict, dataclass
from pathlib import Path

__all__ = [
    "TRANSPORT_VERSION",
    "MAX_FRAME_BYTES",
    "TransportError",
    "TransportDown",
    "FrameError",
    "parse_endpoint",
    "format_endpoint",
    "encode_frame",
    "decode_frame",
    "send_frame",
    "recv_frame",
    "read_frame",
    "write_frame",
    "Backoff",
    "TransportStats",
    "EndpointStats",
    "TransportClient",
    "NetHeartbeat",
    "FabricEndpoint",
]

#: Bump on any incompatible change to the frame or RPC format.
TRANSPORT_VERSION = 1

#: Upper bound on one frame; a length prefix beyond this is treated as
#: stream corruption, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class TransportError(RuntimeError):
    """The server answered with an application-level error (no retry)."""


class TransportDown(TransportError):
    """The retry/backoff budget is exhausted; the endpoint is gone."""


class FrameError(ValueError):
    """A torn, oversized, or checksum-failing frame."""


# ----------------------------------------------------------------------
# Endpoint strings.


def parse_endpoint(
    text: str, *, allow_port_zero: bool = False
) -> tuple[str, int]:
    """``"host:port"`` -> ``(host, port)`` with clear errors.

    ``allow_port_zero`` admits ``:0`` (bind an ephemeral port) for
    listen endpoints; connect endpoints need a real port.
    """
    if not isinstance(text, str) or ":" not in text:
        raise ValueError(
            f"endpoint must look like host:port, got {text!r}"
        )
    host, _, port_text = text.rpartition(":")
    host = host.strip("[]")  # tolerate [::1]:port
    if not host:
        raise ValueError(f"endpoint {text!r} has an empty host")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"endpoint {text!r} has a non-numeric port {port_text!r}"
        ) from None
    low = 0 if allow_port_zero else 1
    if not low <= port <= 65535:
        raise ValueError(
            f"endpoint port must be in [{low}, 65535], got {port}"
        )
    return host, port


def format_endpoint(host: str, port: int) -> str:
    return f"[{host}]:{port}" if ":" in host else f"{host}:{port}"


# ----------------------------------------------------------------------
# Frame codec.  The envelope checksum covers the canonical payload
# encoding so both sides agree byte-for-byte on what was signed.


def _canonical(payload: dict) -> bytes:
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def encode_frame(payload: dict) -> bytes:
    """One payload as a length-prefixed checksummed wire frame."""
    body = _canonical(payload)
    envelope = json.dumps(
        {
            "v": TRANSPORT_VERSION,
            "sha": hashlib.sha256(body).hexdigest(),
            "payload": payload,
        },
        sort_keys=True,
        separators=(",", ":"),
    ).encode("utf-8")
    if len(envelope) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(envelope)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _LEN.pack(len(envelope)) + envelope


def decode_frame(body: bytes) -> dict:
    """Verify and unwrap one frame body (everything after the length)."""
    try:
        envelope = json.loads(body.decode("utf-8"))
    except Exception as exc:
        raise FrameError(f"unparsable frame: {exc!r}") from exc
    if not isinstance(envelope, dict) or envelope.get("v") != TRANSPORT_VERSION:
        raise FrameError(
            f"unsupported frame version {envelope.get('v') if isinstance(envelope, dict) else '?'!r}"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise FrameError("frame payload is not an object")
    if hashlib.sha256(_canonical(payload)).hexdigest() != envelope.get("sha"):
        raise FrameError("frame checksum mismatch")
    return payload


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < n:
        chunk = sock.recv(n - len(chunks))
        if not chunk:
            raise FrameError(
                f"connection closed mid-frame ({len(chunks)}/{n} bytes)"
            )
        chunks += chunk
    return bytes(chunks)


def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict:
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return decode_frame(_recv_exact(sock, length))


async def read_frame(reader: asyncio.StreamReader) -> dict:
    header = await reader.readexactly(_LEN.size)
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return decode_frame(await reader.readexactly(length))


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    writer.write(encode_frame(payload))
    await writer.drain()


# ----------------------------------------------------------------------
# Capped exponential backoff with jitter.


@dataclass(frozen=True)
class Backoff:
    """Retry pacing: ``base * factor**attempt`` capped at ``cap``.

    ``jitter`` is the randomized fraction of each delay (0 = fully
    deterministic, 1 = anywhere in ``(0, delay]``); the default 0.5
    is the classic "equal jitter" that avoids synchronized retry
    stampedes from many workers reconnecting at once.
    """

    base: float = 0.05
    cap: float = 2.0
    factor: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise ValueError(f"backoff base must be positive, got {self.base}")
        if self.cap < self.base:
            raise ValueError(
                f"backoff cap ({self.cap}) must be >= base ({self.base})"
            )
        if self.factor < 1.0:
            raise ValueError(
                f"backoff factor must be >= 1, got {self.factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"backoff jitter must be in [0, 1], got {self.jitter}"
            )

    def delay(self, attempt: int, rng: random.Random) -> float:
        """The jittered delay before retry number ``attempt`` (0-based)."""
        raw = min(self.cap, self.base * self.factor ** max(0, attempt))
        return raw * (1.0 - self.jitter) + rng.random() * raw * self.jitter


# ----------------------------------------------------------------------
# Stats, both sides.


@dataclass
class TransportStats:
    """Client-side counters (published through ``repro.telemetry``)."""

    rpcs: int = 0
    reconnects: int = 0
    retransmitted_frames: int = 0
    backoff_seconds: float = 0.0
    frame_errors: int = 0
    partitions: int = 0
    """RPC episodes in which at least one (re)connect itself failed --
    the endpoint was unreachable, not merely a torn frame."""

    def to_json(self) -> dict:
        return asdict(self)


@dataclass
class EndpointStats:
    """Server-side counters for one :class:`FabricEndpoint`."""

    connections: int = 0
    frames_in: int = 0
    frames_out: int = 0
    frame_errors: int = 0
    claims: int = 0
    steals: int = 0
    uploads: int = 0
    uploads_deduped: int = 0
    heartbeats: int = 0
    unknown_ops: int = 0

    def to_json(self) -> dict:
        return asdict(self)


# ----------------------------------------------------------------------
# Client.


class TransportClient:
    """Synchronous fabric RPC client with reconnect + capped backoff.

    Every RPC is idempotent (see the module docstring), so :meth:`call`
    retransmits the request after *any* transport failure -- connect
    refused, reset mid-frame, checksum mismatch -- pacing retries with
    :class:`Backoff` until ``max_retry_elapsed`` seconds have been
    spent, then raising :class:`TransportDown` so the caller can walk
    down its degradation ladder (reconnect loop -> shared-directory
    fallback -> give up).

    The instance is thread-safe: a lock serializes frame exchanges so a
    heartbeat thread can share the connection with the claim/compute
    loop.
    """

    def __init__(
        self,
        endpoint: str | tuple[str, int],
        worker_id: str = "client",
        *,
        connect_timeout: float = 5.0,
        call_timeout: float = 30.0,
        max_retry_elapsed: float = 60.0,
        backoff: Backoff | None = None,
    ) -> None:
        if isinstance(endpoint, str):
            endpoint = parse_endpoint(endpoint)
        self.host, self.port = endpoint
        self.worker_id = worker_id
        self.connect_timeout = float(connect_timeout)
        self.call_timeout = float(call_timeout)
        self.max_retry_elapsed = float(max_retry_elapsed)
        if self.max_retry_elapsed <= 0:
            raise ValueError(
                f"max_retry_elapsed must be positive, got {max_retry_elapsed}"
            )
        self.backoff = backoff if backoff is not None else Backoff()
        self.stats = TransportStats()
        self.server_offset = 0.0
        """Last observed ``server_time - local_time`` (diagnostic only:
        all expiry arithmetic happens server-side)."""
        self._sock: socket.socket | None = None
        self._ever_connected = False
        self._connect_failed = False
        self._seq = 0
        self._lock = threading.Lock()
        # Deterministic jitter per worker id: reproducible tests, and
        # distinct workers still desynchronize their retry storms.
        self._rng = random.Random(
            int.from_bytes(
                hashlib.sha256(worker_id.encode()).digest()[:8], "big"
            )
        )

    @property
    def endpoint(self) -> str:
        return format_endpoint(self.host, self.port)

    # ------------------------------------------------------------------
    def _ensure_connected(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
        except OSError:
            self._connect_failed = True
            raise
        sock.settimeout(self.call_timeout)
        if self._ever_connected:
            self.stats.reconnects += 1
        self._ever_connected = True
        self._sock = sock
        return sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def call(
        self, op: str, *, max_elapsed: float | None = None, **fields
    ) -> dict:
        """One idempotent RPC, retransmitted until it lands or the
        ``max_retry_elapsed`` budget (override with ``max_elapsed``) is
        spent."""
        with self._lock:
            self._seq += 1
            request = {
                "op": op, "worker": self.worker_id, "id": self._seq, **fields
            }
        budget = self.max_retry_elapsed if max_elapsed is None else max_elapsed
        deadline = time.monotonic() + budget
        attempt = 0
        partition_counted = False
        while True:
            try:
                with self._lock:
                    sock = self._ensure_connected()
                    send_frame(sock, request)
                    response = recv_frame(sock)
                    # Duplicate delivery (or an endpoint answering a
                    # retransmitted request twice) leaves stale
                    # responses in the stream; discard until the ids
                    # line up.  A long run of strangers is a desync --
                    # drop the connection and retransmit.
                    drained = 0
                    while response.get("id") not in (None, request["id"]):
                        drained += 1
                        if drained > 64:
                            raise FrameError("response stream desynchronized")
                        response = recv_frame(sock)
            except (OSError, FrameError) as exc:
                with self._lock:
                    self._drop_connection()
                if isinstance(exc, FrameError):
                    self.stats.frame_errors += 1
                if self._connect_failed:
                    self._connect_failed = False
                    if not partition_counted:
                        partition_counted = True
                        self.stats.partitions += 1
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportDown(
                        f"endpoint {self.endpoint} unreachable after "
                        f"{attempt + 1} attempts over {budget:g}s: {exc!r}"
                    ) from exc
                delay = min(self.backoff.delay(attempt, self._rng), remaining)
                self.stats.backoff_seconds += delay
                self.stats.retransmitted_frames += 1
                attempt += 1
                time.sleep(delay)
                continue
            self.stats.rpcs += 1
            if "t" in response:
                try:
                    self.server_offset = float(response["t"]) - time.time()
                except (TypeError, ValueError):
                    pass
            if not response.get("ok", False):
                raise TransportError(
                    str(response.get("error", "unspecified server error"))
                )
            return response

    def close(self, *, bye: bool = False) -> None:
        if bye and self._ever_connected:
            try:
                self.call("bye", max_elapsed=1.0)
            except TransportError:
                pass
        with self._lock:
            self._drop_connection()


class NetHeartbeat:
    """Periodic ``heartbeat`` RPCs over one :class:`TransportClient`.

    The network twin of :class:`repro.runtime.fabric.Heartbeat`: same
    ``cells_done`` / ``start`` / ``stop`` surface, but liveness is
    declared to the coordinator's endpoint (which writes the heartbeat
    file server-side, in server time) instead of to the shared
    directory.  Each beat also ships the client's transport counters so
    the coordinator can publish them through telemetry.

    A beat that exhausts its retry budget sets :attr:`lost`; the worker
    loop notices transport loss through its own RPCs, so the heartbeat
    thread never raises.
    """

    def __init__(self, client: TransportClient, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be positive, got {interval}")
        self.client = client
        self.interval = float(interval)
        self.cells_done = 0
        self.beats = 0
        self.lost = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def beat(self, left: bool = False) -> None:
        self.beats += 1
        self.client.call(
            "bye" if left else "heartbeat",
            cells_done=self.cells_done,
            stats=self.client.stats.to_json(),
            max_elapsed=1.0 if left else self.interval,
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.beat()
            except TransportError:
                self.lost.set()

    def start(self) -> None:
        try:
            self.beat()
        except TransportError:
            self.lost.set()
        self._thread = threading.Thread(
            target=self._run,
            name=f"fabric-net-heartbeat-{self.client.worker_id}",
            daemon=True,
        )
        self._thread.start()

    def stop(self, left: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None
        if left and not self.lost.is_set():
            try:
                self.beat(left=True)
            except TransportError:
                pass


# ----------------------------------------------------------------------
# Server.


class FabricEndpoint:
    """The coordinator's asyncio RPC endpoint over one fabric directory.

    The endpoint owns no state of its own: each RPC reads or writes the
    fabric directory through the same primitives local workers use
    (:class:`~repro.runtime.fabric.LeaseBoard`, heartbeat files,
    fsynced journal appends), with all lease-expiry arithmetic done in
    **server time** -- the coordinator's clock is the one true clock,
    which is what makes cross-host clock skew harmless.

    Runs its event loop on a daemon thread so the synchronous
    coordinator (:func:`repro.runtime.fabric.run_fabric`) can host it;
    ``start()`` blocks until the socket is bound and returns the port.
    """

    def __init__(
        self,
        fabric_dir: str | Path,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        clock=None,
    ) -> None:
        from repro.runtime import fabric as _fabric

        self._fabric = _fabric
        self.fabric_dir = Path(fabric_dir)
        self.header, self.items = _fabric.load_grid(self.fabric_dir)
        self.host = host
        self.requested_port = int(port)
        self.port: int | None = None
        self.clock = clock if clock is not None else _fabric.SystemClock()
        self.lease_ttl = float(self.header.get("lease_ttl", 30.0))
        self.stats = EndpointStats()
        self._grid_lines = (
            (self.fabric_dir / "grid.jsonl")
            .read_text(encoding="utf-8")
            .splitlines()
        )
        self._scanner = _fabric.ResultsScanner(self.fabric_dir, len(self.items))
        self._boards: dict[str, object] = {}
        self._journals: dict[str, object] = {}
        self._seen_uploads: set[tuple[str, int, str]] = set()
        self._state_lock = threading.Lock()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None

    @property
    def endpoint(self) -> str:
        return format_endpoint(self.host, self.port or self.requested_port)

    # ------------------------------------------------------------------
    # Lifecycle.

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._thread is not None:
            raise RuntimeError("endpoint already started")
        self._thread = threading.Thread(
            target=self._thread_main,
            name=f"fabric-endpoint-{self.requested_port}",
            daemon=True,
        )
        self._thread.start()
        self._started.wait(timeout=30.0)
        if self._start_error is not None:
            error = self._start_error
            self._thread.join(timeout=5.0)
            self._thread = None
            self._start_error = None
            raise error
        if self.port is None:
            raise TransportError("endpoint failed to bind within 30s")
        return self.port

    def drain(self, grace: float = 5.0) -> None:
        """Linger until every TCP worker has left (or ``grace`` runs out).

        Called by the coordinator after the grid completes, *before*
        :meth:`stop`: a worker that just uploaded its last cell is one
        ``acquire`` round-trip away from seeing ``complete`` and saying
        goodbye; tearing the listener down first would turn that happy
        path into a full retry/backoff cycle ending in a spurious
        transport-down error.
        """
        worker_dir = self.fabric_dir / "workers"
        deadline = time.monotonic() + grace
        while time.monotonic() < deadline:
            now = self.clock.now()
            active = False
            if worker_dir.is_dir():
                for path in worker_dir.glob("*.json"):
                    payload = self._fabric._read_json(path)
                    if payload is None or payload.get("via") != "tcp":
                        continue
                    if self._fabric._heartbeat_payload_fresh(
                        path, payload, now
                    ):
                        active = True
                        break
            if not active:
                return
            time.sleep(0.05)

    def stop(self) -> None:
        """Close the listener and every live connection."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        with self._state_lock:
            for handle in self._journals.values():
                try:
                    handle.close()
                except OSError:
                    pass
            self._journals.clear()

    def _thread_main(self) -> None:
        try:
            asyncio.run(self._serve())
        except BaseException as exc:  # pragma: no cover - surfaced by start()
            self._start_error = exc
            self._started.set()

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle, self.host, self.requested_port
            )
        except OSError as exc:
            self._start_error = TransportError(
                f"cannot listen on {self.host}:{self.requested_port}: {exc}"
            )
            self._started.set()
            return
        self.port = self._server.sockets[0].getsockname()[1]
        self._started.set()
        async with self._server:
            await self._stop_event.wait()

    # ------------------------------------------------------------------
    # Connection handling.

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Absorb the cancellation asyncio.run() delivers at shutdown:
        # a handler task that ends "cancelled" makes the streams
        # machinery log spurious CancelledError tracebacks.
        try:
            await self._handle_connection(reader, writer)
        except asyncio.CancelledError:
            pass

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    request = await read_frame(reader)
                except FrameError:
                    self.stats.frame_errors += 1
                    break
                except (asyncio.IncompleteReadError, ConnectionError, OSError):
                    break
                self.stats.frames_in += 1
                response = await loop.run_in_executor(
                    None, self._dispatch, request
                )
                try:
                    await write_frame(writer, response)
                except (ConnectionError, OSError):
                    break
                self.stats.frames_out += 1
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    # ------------------------------------------------------------------
    # RPC dispatch (synchronous; serialized by a lock so executor
    # threads never interleave on the board/journal state).

    def _dispatch(self, request: dict) -> dict:
        now = self.clock.now()
        base = {"ok": True, "t": now, "id": request.get("id")}
        op = request.get("op")
        try:
            with self._state_lock:
                if op == "hello":
                    return {
                        **base,
                        "version": TRANSPORT_VERSION,
                        "sweep": self.header.get("sweep"),
                        "n_items": len(self.items),
                        "fn_ref": self.header.get("fn_ref"),
                        "lease_ttl": self.lease_ttl,
                        "heartbeat_interval": self.header.get(
                            "heartbeat_interval", self.lease_ttl / 3.0
                        ),
                        "cache_dir": self.header.get("cache_dir"),
                    }
                if op == "grid":
                    return {**base, "lines": self._grid_lines}
                worker = self._worker_id(request)
                if op == "acquire":
                    return {**base, **self._acquire(worker)}
                if op == "claim":
                    return {**base, **self._claim(worker, request)}
                if op == "heartbeat":
                    return {**base, **self._heartbeat(worker, request, now)}
                if op == "upload":
                    return {**base, **self._upload(worker, request)}
                if op == "status":
                    return {**base, **self._status()}
                if op == "bye":
                    self.stats.heartbeats += 1
                    self._write_heartbeat(worker, request, now, left=True)
                    return base
            self.stats.unknown_ops += 1
            return {**base, "ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:
            return {**base, "ok": False, "error": repr(exc)[:500]}

    def _worker_id(self, request: dict) -> str:
        worker = request.get("worker")
        if not isinstance(worker, str) or not worker:
            raise TransportError("request carries no worker id")
        # Reuse the fabric's filename sanitizer: the id becomes lease,
        # heartbeat and journal file names on the coordinator.
        return self._fabric._safe_worker_id(worker)

    def _board(self, worker: str):
        board = self._boards.get(worker)
        if board is None:
            board = self._fabric.LeaseBoard(
                self.fabric_dir, worker, self.lease_ttl, clock=self.clock
            )
            self._boards[worker] = board
        return board

    # -- ops ------------------------------------------------------------

    def _acquire(self, worker: str) -> dict:
        """Pick and lease the next runnable cell for ``worker``."""
        self._scanner.scan()
        done = self._scanner.done
        n = len(self.items)
        if len(done) >= n:
            return {"index": None, "complete": True}
        board = self._board(worker)
        start = (
            int(hashlib.sha256(worker.encode()).hexdigest(), 16) % n
        )
        for step in range(n):
            index = (start + step) % n
            if index in done:
                continue
            claimed, victim = board.try_claim(index)
            if claimed:
                self.stats.claims += 1
                if victim is not None:
                    self.stats.steals += 1
                return {"index": index, "victim": victim, "complete": False}
        return {"index": None, "complete": False}

    def _claim(self, worker: str, request: dict) -> dict:
        index = int(request["index"])
        if not 0 <= index < len(self.items):
            raise TransportError(f"claim index {index} out of range")
        claimed, victim = self._board(worker).try_claim(index)
        if claimed:
            self.stats.claims += 1
            if victim is not None:
                self.stats.steals += 1
        return {"claimed": claimed, "victim": victim}

    def _heartbeat(self, worker: str, request: dict, now: float) -> dict:
        self.stats.heartbeats += 1
        self._write_heartbeat(worker, request, now, left=False)
        self._scanner.scan()
        return {
            "done": len(self._scanner.done),
            "n_items": len(self.items),
        }

    def _write_heartbeat(
        self, worker: str, request: dict, now: float, *, left: bool
    ) -> None:
        stats = request.get("stats")
        self._fabric._atomic_write_json(
            self.fabric_dir / "workers" / f"{worker}.json",
            {
                "kind": "heartbeat",
                "worker": worker,
                "pid": None,  # not a coordinator-local process
                "via": "tcp",
                "deadline": now + self.lease_ttl,
                "ttl": self.lease_ttl,
                "cells_done": int(request.get("cells_done", 0) or 0),
                "left": left,
                "transport": stats if isinstance(stats, dict) else None,
            },
        )

    def _upload(self, worker: str, request: dict) -> dict:
        entry = request.get("entry")
        if not isinstance(entry, dict):
            raise TransportError("upload carries no entry object")
        kind = entry.get("kind")
        if kind == "cell":
            # Verify the journal-layer checksum before the append; the
            # scanner would reject a corrupt line anyway, but failing
            # the RPC gives the worker an actionable error instead.
            index, _ = self._fabric_decode(entry)
            key = (worker, index, str(entry.get("sha")))
            if key in self._seen_uploads:
                self.stats.uploads_deduped += 1
                return {"deduped": True}
            self._seen_uploads.add(key)
        elif kind not in ("failed", "event"):
            raise TransportError(f"unknown upload kind {kind!r}")
        self._append_journal(worker, entry)
        self.stats.uploads += 1
        return {"deduped": False}

    def _fabric_decode(self, entry: dict) -> tuple[int, object]:
        from repro.runtime.journal import decode_cell_entry

        return decode_cell_entry(entry, len(self.items))

    def _append_journal(self, worker: str, entry: dict) -> None:
        handle = self._journals.get(worker)
        if handle is None:
            path = self.fabric_dir / "results" / f"{worker}.jsonl"
            path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not path.exists()
            handle = path.open("a", encoding="utf-8")
            self._journals[worker] = handle
            if fresh:
                header = {
                    "kind": "header",
                    "version": self._fabric.FABRIC_VERSION,
                    "sweep": self.header.get("sweep"),
                    "worker": worker,
                    "n_items": len(self.items),
                    "via": "tcp",
                }
                handle.write(json.dumps(header) + "\n")
        handle.write(json.dumps(entry) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def _status(self) -> dict:
        self._scanner.scan()
        done = self._scanner.done
        return {
            "done": sorted(done),
            "failed": sorted(self._scanner.failed),
            "n_items": len(self.items),
            "complete": len(done) >= len(self.items),
        }
