"""Fault-tolerant sweep supervision: timeouts, retries, quarantine, resume.

:func:`supervised_map` is the seam between
:func:`repro.analysis.sweep.sweep`/``replicate`` and the executors.  In
the default context (no retry policy, no journal) it delegates straight
to the active executor's chunked ``map`` -- zero overhead, the exact
legacy path.  Once a :class:`RetryPolicy` or a checkpoint journal is
active it switches to the :class:`Supervisor`, which runs the sweep
item-by-item so that every cell can be individually timed out, retried
with exponential backoff, journaled on completion, or quarantined:

* **timeouts** -- each in-flight item carries a wall-clock deadline;
  an expired item's worker pool is killed (a hung worker cannot be
  cancelled politely), innocent co-flight items are requeued without
  penalty, and the expired item is charged one attempt;
* **crash detection** -- a worker dying (segfault, ``os._exit``)
  breaks the whole ``ProcessPoolExecutor``, taking the in-flight items
  with it; the supervisor rebuilds the pool and *probes* the suspects
  one at a time so only the true crasher is charged;
* **bounded retries** -- an item is retried up to
  ``RetryPolicy.max_attempts`` times with exponential backoff; an item
  that keeps failing is either raised (``on_failure="raise"``) or
  quarantined (``on_failure="quarantine"``), in which case the sweep
  completes, the item's result slot holds ``None``, and a structured
  :class:`FailureReport` is attached to the runtime context;
* **graceful degradation** -- if a worker pool cannot be (re)built at
  all, the remaining items fall back to the in-process serial path
  without losing any completed result;
* **checkpoint/resume** -- completed cells are appended to the sweep's
  :class:`~repro.runtime.journal.SweepJournal`; a resumed run loads
  them back and computes only the missing cells, and a SIGINT flushes
  the journal and prints a resume hint before propagating.

Serial execution enforces retries/quarantine but not timeouts (there
is no second process to preempt a hung call from); this is documented
behaviour, not an accident.
"""

from __future__ import annotations

import multiprocessing
import sys
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, CancelledError, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence, TypeVar

from repro.runtime import executors as _executors
from repro.runtime.executors import WorkerError
from repro.runtime.journal import SweepJournal, sweep_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.context import RuntimeContext

__all__ = [
    "RetryPolicy",
    "FailureRecord",
    "FailureReport",
    "Supervisor",
    "supervised_map",
]

T = TypeVar("T")
R = TypeVar("R")


@dataclass(frozen=True)
class RetryPolicy:
    """How a supervised sweep treats a failing item.

    The default instance (1 attempt, no timeout, raise on failure) is
    the *unsupervised* contract: combined with no journal it routes the
    sweep through the plain executor path untouched.
    """

    max_attempts: int = 1
    """Total attempts per item (1 = no retry)."""

    timeout: float | None = None
    """Per-item wall-clock seconds (parallel execution only)."""

    backoff: float = 0.1
    """Base sleep before retry 1, doubling per attempt."""

    backoff_factor: float = 2.0
    max_backoff: float = 30.0

    on_failure: str = "raise"
    """``"raise"`` aborts the sweep; ``"quarantine"`` completes it with
    ``None`` in the failed slots and a :class:`FailureReport`."""

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.on_failure not in ("raise", "quarantine"):
            raise ValueError(f"on_failure must be 'raise' or 'quarantine', got {self.on_failure!r}")

    @property
    def is_default(self) -> bool:
        return self == RetryPolicy()

    def delay_before(self, attempts_made: int) -> float:
        """Backoff before the next try after ``attempts_made`` failures."""
        return min(
            self.backoff * self.backoff_factor ** max(0, attempts_made - 1),
            self.max_backoff,
        )


@dataclass
class FailureRecord:
    """One quarantined sweep cell."""

    index: int
    item_repr: str
    kind: str  # "error" | "timeout" | "crash"
    attempts: int
    message: str
    traceback: str = ""


@dataclass
class FailureReport:
    """Structured outcome of a sweep that quarantined cells."""

    label: str
    n_items: int
    failures: list[FailureRecord] = field(default_factory=list)
    degraded_to_serial: bool = False

    @property
    def quarantined_indices(self) -> list[int]:
        return sorted(record.index for record in self.failures)

    def render(self) -> str:
        lines = [
            f"failure report: {len(self.failures)}/{self.n_items} cells "
            f"quarantined in sweep {self.label}"
            + (" (pool degraded to serial)" if self.degraded_to_serial else "")
        ]
        for record in sorted(self.failures, key=lambda r: r.index):
            lines.append(
                f"  cell {record.index} [{record.kind} x{record.attempts}] "
                f"{record.item_repr}: {record.message}"
            )
        return "\n".join(lines)


def _sweep_label(fn: Callable) -> str:
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", repr(fn))
    return f"{module}.{name}"


class Supervisor:
    """Item-granular sweep driver with retries, timeouts and quarantine."""

    def __init__(
        self,
        policy: RetryPolicy,
        jobs: int = 1,
        journal: SweepJournal | None = None,
        label: str = "<sweep>",
    ) -> None:
        self.policy = policy
        self.jobs = max(1, int(jobs))
        self.journal = journal
        self.label = label

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        completed: dict[int, R] | None = None,
    ) -> tuple[list[R | None], FailureReport | None]:
        """Evaluate every item not already in ``completed``.

        Returns ``(results, report)`` where ``results`` is item-ordered
        (quarantined slots hold ``None``) and ``report`` is None when
        every cell succeeded.
        """
        items = list(items)
        results: dict[int, R | None] = dict(completed or {})
        pending = [i for i in range(len(items)) if i not in results]
        report = FailureReport(label=self.label, n_items=len(items))
        self._attempts: dict[int, int] = {}
        self._telemetry_captures: dict[int, list] = {}
        try:
            if pending:
                if self._parallel_viable(len(pending)):
                    self._run_parallel(fn, items, pending, results, report)
                else:
                    self._run_serial(fn, items, pending, results, report)
        finally:
            self._replay_telemetry()
        if self.journal is not None:
            self.journal.close()
        ordered = [results.get(i) for i in range(len(items))]
        return ordered, (report if report.failures or report.degraded_to_serial else None)

    def _replay_telemetry(self) -> None:
        """Publish captured per-item telemetry in item order.

        Items complete out of order under retries and parallel
        execution, so each item's publications are captured at call
        time and replayed here sorted by item index -- the same order
        the plain serial path publishes in, which keeps aggregated
        telemetry bit-identical.  Failed attempts never land in the
        capture table, so a retried item contributes exactly its
        successful attempt and a quarantined item contributes nothing.
        """
        from repro.runtime.context import current_runtime

        telemetry = current_runtime().telemetry
        if telemetry is None:
            return
        for index in sorted(self._telemetry_captures):
            telemetry.replay(self._telemetry_captures[index])
        self._telemetry_captures.clear()

    # ------------------------------------------------------------------
    def _parallel_viable(self, n_pending: int) -> bool:
        return (
            self.jobs > 1
            and n_pending > 1
            and not _executors._IN_WORKER
            and _executors._ACTIVE is None
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def _record(self, index: int, value: object, results: dict) -> None:
        results[index] = value
        if self.journal is not None:
            self.journal.record(index, value)
            from repro.runtime.context import current_runtime

            current_runtime().journal_stats.recorded += 1

    def _merge_worker_counters(self, cache_delta, stats_delta) -> None:
        from repro.runtime.context import current_runtime

        context = current_runtime()
        if cache_delta is not None and context.cache is not None:
            context.cache.stats.merge(cache_delta)
        context.stats.merge(stats_delta)

    def _call_with_capture(self, fn: Callable, item, index: int):
        """In-process call with the item's telemetry captured.

        The capture is kept only if the call succeeds; an exception
        discards it (the retry's successful attempt will capture anew).
        """
        from repro.runtime.context import current_runtime

        telemetry = current_runtime().telemetry
        if telemetry is None:
            return fn(item)
        with telemetry.capture() as sink:
            value = fn(item)
        self._telemetry_captures[index] = sink.runs
        return value

    def _charge(
        self,
        index: int,
        items: list,
        kind: str,
        message: str,
        traceback_text: str,
        queue: deque,
        report: FailureReport,
        cause: BaseException | None = None,
    ) -> None:
        """One failed attempt: retry (with backoff), quarantine, or raise."""
        attempts = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempts
        if attempts < self.policy.max_attempts:
            time.sleep(self.policy.delay_before(attempts))
            queue.append(index)
            return
        if self.policy.on_failure == "raise":
            if cause is not None and not isinstance(cause, WorkerError):
                raise cause
            raise WorkerError(
                index,
                items[index],
                f"{message} (after {attempts} attempt{'s' if attempts > 1 else ''})",
                traceback_text,
            )
        report.failures.append(
            FailureRecord(
                index=index,
                item_repr=repr(items[index])[:200],
                kind=kind,
                attempts=attempts,
                message=message,
                traceback=traceback_text,
            )
        )

    # ------------------------------------------------------------------
    # Serial path: retries and quarantine, no timeout enforcement.
    def _run_serial(
        self,
        fn: Callable,
        items: list,
        pending: Sequence[int],
        results: dict,
        report: FailureReport,
    ) -> None:
        import traceback as traceback_module

        queue = deque(pending)
        while queue:
            index = queue.popleft()
            try:
                value = self._call_with_capture(fn, items[index], index)
            except Exception as exc:
                self._charge(
                    index,
                    items,
                    "error",
                    repr(exc),
                    traceback_module.format_exc(),
                    queue,
                    report,
                    cause=exc,
                )
            else:
                self._record(index, value, results)

    # ------------------------------------------------------------------
    # Parallel path: windowed per-item futures over a fork pool that is
    # killed and rebuilt on timeout or breakage.
    def _run_parallel(
        self,
        fn: Callable,
        items: list,
        pending: Sequence[int],
        results: dict,
        report: FailureReport,
    ) -> None:
        _executors._ACTIVE = {"fn": fn, "items": items}
        pool: ProcessPoolExecutor | None = None
        inflight: dict = {}
        try:
            queue: deque[int] = deque(pending)
            probe: deque[int] = deque()
            pool = self._new_pool()
            while queue or probe or inflight:
                if pool is None:
                    # Unforkable/unrebuildable pool: finish in-process.
                    report.degraded_to_serial = True
                    remaining = sorted(set(queue) | set(probe))
                    queue.clear()
                    probe.clear()
                    self._run_serial(fn, items, remaining, results, report)
                    return
                now = time.monotonic()
                if probe:
                    # One suspect at a time so a crash is attributable.
                    if not inflight:
                        index = probe.popleft()
                        self._submit(pool, index, inflight, now)
                else:
                    while queue and len(inflight) < self.jobs:
                        index = queue.popleft()
                        self._submit(pool, index, inflight, now)
                if not inflight:
                    continue
                deadlines = [d for (_, d) in inflight.values() if d is not None]
                wait_for = None
                if deadlines:
                    wait_for = max(0.01, min(deadlines) - time.monotonic())
                done, _ = futures_wait(
                    set(inflight), timeout=wait_for, return_when=FIRST_COMPLETED
                )
                suspects: list[tuple[int, BaseException]] = []
                for future in done:
                    index, _ = inflight.pop(future)
                    try:
                        payload, cache_delta, stats_delta, telemetry_runs = (
                            future.result()
                        )
                    except CancelledError:
                        queue.appendleft(index)
                    except Exception as exc:
                        # Worker process died: the pool is broken.
                        suspects.append((index, exc))
                    else:
                        self._merge_worker_counters(cache_delta, stats_delta)
                        if payload[0] == "ok":
                            if telemetry_runs is not None:
                                self._telemetry_captures[index] = telemetry_runs
                            self._record(index, payload[1], results)
                        else:
                            self._charge(
                                index, items, "error", payload[1], payload[2],
                                queue, report,
                            )
                if suspects:
                    # Every other in-flight item died with the pool too;
                    # none of them is individually attributable yet.
                    for future, (index, _) in list(inflight.items()):
                        suspects.append((index, None))
                    inflight.clear()
                    pool = self._rebuild_pool(pool)
                    if len(suspects) == 1:
                        index, exc = suspects[0]
                        self._charge(
                            index, items, "crash",
                            f"worker process died: {exc!r}", "", queue, report,
                        )
                    else:
                        probe.extend(sorted({index for index, _ in suspects}))
                    continue
                now = time.monotonic()
                expired = [
                    (future, index)
                    for future, (index, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                if expired:
                    for future, index in expired:
                        inflight.pop(future)
                        self._charge(
                            index, items, "timeout",
                            f"exceeded {self.policy.timeout:g}s wall clock",
                            "", queue, report,
                        )
                    # The hung worker still occupies a pool slot: kill the
                    # pool, requeue innocent co-flight items uncharged.
                    for future, (index, _) in list(inflight.items()):
                        queue.appendleft(index)
                    inflight.clear()
                    pool = self._rebuild_pool(pool)
        finally:
            _executors._ACTIVE = None
            if pool is not None:
                _kill_pool(pool)

    def _submit(self, pool, index: int, inflight: dict, now: float) -> None:
        deadline = (
            now + self.policy.timeout if self.policy.timeout is not None else None
        )
        future = pool.submit(_executors._worker_invoke, index)
        inflight[future] = (index, deadline)

    def _new_pool(self) -> ProcessPoolExecutor | None:
        try:
            return ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=multiprocessing.get_context("fork"),
            )
        except Exception:
            return None

    def _rebuild_pool(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor | None:
        _kill_pool(pool)
        return self._new_pool()


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down even when a worker is hung or dead.

    ``shutdown`` alone would join a hung worker forever, so the worker
    processes are killed first.  ``_processes`` is a private attribute,
    but it is the only stdlib handle on the pool's children.
    """
    processes = list(getattr(pool, "_processes", {}).values())
    for process in processes:
        try:
            process.kill()
        except Exception:  # pragma: no cover - already-dead races
            pass
    pool.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
def supervised_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    context: "RuntimeContext",
    label: str | None = None,
) -> list[R | None]:
    """Route one sweep through supervision if the context asks for it.

    The default context (default :class:`RetryPolicy`, no journal
    directory) falls straight through to ``context.executor.map`` --
    the chunked, zero-overhead legacy path.  ``label`` disambiguates
    the sweep's journal identity; it defaults to ``fn``'s qualified
    name (wrappers with a shared qualname must pass their own).
    """
    items = list(items)
    if context.retry.is_default and context.journal_dir is None:
        return context.executor.map(fn, items)

    if label is None:
        label = _sweep_label(fn)
    journal: SweepJournal | None = None
    completed: dict[int, R] = {}
    if context.journal_dir is not None:
        try:
            sweep_id = sweep_fingerprint(label, items)
        except TypeError:
            sweep_id = None  # unfingerprintable items: sweep not journaled
        if sweep_id is not None:
            journal = SweepJournal(
                context.journal_dir, sweep_id, n_items=len(items),
                resume=context.resume,
            )
            if context.resume:
                completed = journal.load()
                context.journal_stats.resumed += len(completed)
                context.journal_stats.corrupt += journal.corrupt_lines

    supervisor = Supervisor(
        policy=context.retry,
        jobs=context.executor.jobs,
        journal=journal,
        label=label,
    )
    try:
        results, report = supervisor.run(fn, items, completed=completed)
    except KeyboardInterrupt:
        if journal is not None:
            journal.close()
            done = len(completed) + context.journal_stats.recorded
            print(
                f"\ninterrupted: {done}/{len(items)} cells journaled at "
                f"{journal.path}; re-run with --resume to skip them",
                file=sys.stderr,
            )
        raise
    if report is not None:
        context.failure_reports.append(report)
    return results
