"""Numpy batch kernels for the hot scoring paths.

Every figure scores thousands of packets per cell through
``Adversary.estimate_all``; at paper scale the per-observation Python
dispatch dominates scoring time.  These kernels compute whole arrival
sequences at once, performing *the same IEEE-754 operations in the
same order per element* as the scalar methods they replace, so the
vectorized estimates are bit-identical to the scalar oracle (the
equivalence tests in ``tests/test_runtime_kernels.py`` assert a 1e-9
bound and observe exact equality in practice).

The scalar implementations in :mod:`repro.core.adversary` and
:mod:`repro.queueing.erlang` remain in place as the oracle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.packet import PacketObservation

__all__ = [
    "observation_arrays",
    "erlang_b_batch",
    "naive_estimates",
    "baseline_estimates",
    "adaptive_estimates",
    "path_table_estimates",
]


def observation_arrays(
    observations: Sequence["PacketObservation"],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Columnar view of an observation sequence.

    Returns ``(arrival_times, hop_counts, origins)`` -- float64,
    float64 and int64 arrays aligned with the input order.
    """
    n = len(observations)
    arrivals = np.empty(n, dtype=np.float64)
    hops = np.empty(n, dtype=np.float64)
    origins = np.empty(n, dtype=np.int64)
    for i, observation in enumerate(observations):
        arrivals[i] = observation.arrival_time
        hops[i] = observation.hop_count
        origins[i] = observation.origin
    return arrivals, hops, origins


def erlang_b_batch(offered_loads: np.ndarray, servers: int) -> np.ndarray:
    """Erlang-B blocking for a whole array of offered loads.

    Runs the same numerically stable recursion as
    :func:`repro.queueing.erlang.erlang_b`, iterated ``servers`` times
    over the array; identical operations per element, so identical
    results.  NaN loads propagate to NaN blocking (callers mask them).
    """
    if servers < 0:
        raise ValueError(f"server count must be non-negative, got {servers}")
    loads = np.asarray(offered_loads, dtype=np.float64)
    if np.any(loads < 0):  # NaNs compare False, as intended
        raise ValueError("offered loads must be non-negative")
    blocking = np.ones_like(loads)
    for k in range(1, servers + 1):
        blocking = loads * blocking / (k + loads * blocking)
    return blocking


def naive_estimates(
    arrivals: np.ndarray, hops: np.ndarray, transmission_delay: float
) -> np.ndarray:
    """Vector form of ``x_hat = z - h * tau``."""
    return arrivals - hops * transmission_delay


def baseline_estimates(
    arrivals: np.ndarray,
    hops: np.ndarray,
    transmission_delay: float,
    mean_delay_per_hop: float,
) -> np.ndarray:
    """Vector form of ``x_hat = z - h * (tau + 1/mu)``."""
    per_hop = transmission_delay + mean_delay_per_hop
    return arrivals - hops * per_hop


def adaptive_estimates(
    arrivals: np.ndarray,
    hops: np.ndarray,
    *,
    transmission_delay: float,
    mean_delay_per_hop: float,
    buffer_capacity: int,
    n_sources: int,
    preemption_threshold: float,
    warmup_observations: int,
    clamp_to_advertised: bool,
    prior_count: int = 0,
    prior_first_arrival: float | None = None,
) -> np.ndarray:
    """Batch replica of :class:`~repro.core.adversary.AdaptiveAdversary`.

    The adaptive adversary is stateful -- its rate estimate after
    observing packet ``i`` uses the first and the ``i``-th arrival and
    the running count -- but the state reduces to closed form over a
    batch: after observation ``i`` the count is ``prior_count + i + 1``
    and the window is ``[first_arrival, z_i]``.  ``prior_count`` /
    ``prior_first_arrival`` carry state from any scalar ``estimate``
    calls made before the batch, so mixing the two paths stays exact.
    """
    n = arrivals.size
    if n == 0:
        return np.empty(0, dtype=np.float64)
    first_arrival = (
        prior_first_arrival if prior_count > 0 else float(arrivals[0])
    )
    counts = prior_count + 1 + np.arange(n, dtype=np.int64)
    windows = arrivals - first_arrival
    has_rate = (counts >= 2) & (windows != 0.0)
    safe_windows = np.where(has_rate, windows, 1.0)
    rates = np.where(has_rate, (counts - 1) / safe_windows, np.nan)

    # Same expression shapes as the scalar path: mu = 1/(1/mu), then
    # rho = rate / mu -- *not* rate * mean_delay, which rounds
    # differently.
    mu = 1.0 / mean_delay_per_hop
    blocking = erlang_b_batch(np.where(has_rate, rates, np.nan) / mu, buffer_capacity)
    in_regime = (
        (counts >= warmup_observations)
        & has_rate
        & (blocking > preemption_threshold)
    )

    saturation = n_sources * buffer_capacity / np.where(has_rate, rates, 1.0)
    if clamp_to_advertised:
        saturation = np.minimum(saturation, mean_delay_per_hop)
    extra = np.where(in_regime, saturation, mean_delay_per_hop)
    per_hop = transmission_delay + extra
    return arrivals - hops * per_hop


def path_table_estimates(
    arrivals: np.ndarray,
    hops: np.ndarray,
    origins: np.ndarray,
    path_delay: Mapping[int, float],
    transmission_delay: float,
) -> np.ndarray:
    """Batch kernel for table-driven adversaries (path-aware, model-based).

    ``path_delay`` maps origin node id -> precomputed total extra path
    delay.  Unknown origins raise the same ``KeyError`` the scalar
    path raises.
    """
    unique_origins, inverse = np.unique(origins, return_inverse=True)
    delays = np.empty(unique_origins.size, dtype=np.float64)
    for i, origin in enumerate(unique_origins):
        try:
            delays[i] = path_delay[int(origin)]
        except KeyError:
            raise KeyError(
                f"no path knowledge for origin {int(origin)}; "
                f"known origins: {sorted(path_delay)}"
            )
    extra = delays[inverse]
    transmission = hops * transmission_delay
    return arrivals - transmission - extra
