"""Content-addressed on-disk cache of simulation results.

A cache entry is one pickled ``(elapsed_seconds, SimulationResult)``
pair stored under ``<dir>/<key[:2]>/<key>.pkl`` where ``key`` is the
stable fingerprint of ``(format version, code salt, SimulationConfig)``
-- see :mod:`repro.runtime.fingerprint`.  Because the configuration
includes the seed and the salt covers the simulator's source, a hit is
guaranteed to be the byte-identical result the simulator would have
produced.

Failure policy: a corrupted or truncated entry is *a miss, not a
crash* -- it is counted, deleted and recomputed.  Writes go through a
temp file plus :func:`os.replace` so a killed process can never leave a
half-written entry behind that parses.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro.runtime.fingerprint import (
    CACHE_FORMAT_VERSION,
    code_salt,
    stable_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SimulationConfig
    from repro.sim.results import SimulationResult

__all__ = ["CacheStats", "ResultCache", "default_cache_dir"]


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/results``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "results"


@dataclass
class CacheStats:
    """Hit/miss/elapsed counters for one cache (mergeable across workers)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    seconds_saved: float = 0.0
    seconds_computed: float = 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy (for before/after deltas in workers)."""
        return replace(self)

    def delta_since(self, before: "CacheStats") -> "CacheStats":
        """Counter increments accumulated since ``before``."""
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            stores=self.stores - before.stores,
            corrupt=self.corrupt - before.corrupt,
            seconds_saved=self.seconds_saved - before.seconds_saved,
            seconds_computed=self.seconds_computed - before.seconds_computed,
        )

    def merge(self, delta: "CacheStats") -> None:
        """Fold a worker-side delta into this (parent-side) counter set."""
        self.hits += delta.hits
        self.misses += delta.misses
        self.stores += delta.stores
        self.corrupt += delta.corrupt
        self.seconds_saved += delta.seconds_saved
        self.seconds_computed += delta.seconds_computed

    def render(self) -> str:
        """One status line, the CLI's cache-stats output."""
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stored, {self.corrupt} corrupt; "
            f"{self.seconds_saved:.1f}s compute saved, "
            f"{self.seconds_computed:.1f}s spent"
        )


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` objects.

    Parameters
    ----------
    directory:
        Root of the on-disk store (created lazily on first write).
    salt:
        Code-version salt mixed into every key; defaults to
        :func:`repro.runtime.fingerprint.code_salt`.  Tests inject a
        fixed salt to exercise invalidation without editing source.
    """

    def __init__(self, directory: str | Path, salt: str | None = None) -> None:
        self.directory = Path(directory)
        self.salt = code_salt() if salt is None else str(salt)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def key_for(self, config: "SimulationConfig") -> str:
        """The content address of one configuration (seed included)."""
        return stable_fingerprint((CACHE_FORMAT_VERSION, self.salt, config))

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    def get(self, config: "SimulationConfig") -> "SimulationResult | None":
        """The stored result for ``config``, or None on a miss.

        A corrupted entry (unpicklable, wrong shape) is deleted and
        reported as a miss, never raised.
        """
        path = self._path_for(self.key_for(config))
        if not path.is_file():
            self.stats.misses += 1
            return None
        try:
            with path.open("rb") as handle:
                elapsed, result = pickle.load(handle)
            elapsed = float(elapsed)
        except Exception:
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racy cleanup is best-effort
                pass
            return None
        self.stats.hits += 1
        self.stats.seconds_saved += elapsed
        return result

    def put(
        self, config: "SimulationConfig", result: "SimulationResult", elapsed: float
    ) -> None:
        """Store ``result`` (with its compute time) under ``config``'s key."""
        path = self._path_for(self.key_for(config))
        path.parent.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent workers may race on the same key,
        # but every one of them writes the identical bytes-for-bytes
        # payload, so last-replace-wins is harmless.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump((float(elapsed), result), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self.stats.seconds_computed += elapsed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.directory)!r}, salt={self.salt[:8]}...)"
