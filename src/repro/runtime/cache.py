"""Content-addressed on-disk cache of simulation results.

A cache entry is one pickled ``(elapsed_seconds, SimulationResult)``
pair stored under ``<dir>/<key[:2]>/<key>.pkl`` where ``key`` is the
stable fingerprint of ``(format version, code salt, SimulationConfig)``
-- see :mod:`repro.runtime.fingerprint`.  Because the configuration
includes the seed and the salt covers the simulator's source, a hit is
guaranteed to be the byte-identical result the simulator would have
produced.  On disk every entry is framed as ``magic || sha256(payload)
|| payload`` so bit rot and truncation are detected by checksum before
any unpickling happens.

Failure policy: a corrupted or truncated entry is *a miss, not a
crash* -- it is counted, moved into ``<dir>/quarantine/`` (preserved
for inspection, never silently destroyed) and recomputed.  Writes go
through a temp file plus :func:`os.replace` so a killed process can
never leave a half-written entry behind that parses.

Beyond get/put the cache exposes its own maintenance surface (the
``repro cache`` CLI subcommand): :meth:`ResultCache.disk_stats`,
:meth:`ResultCache.verify` (checksum every entry, quarantining the bad
ones), :meth:`ResultCache.purge` and :meth:`ResultCache.prune`
(oldest-first eviction down to a byte budget).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.runtime.fingerprint import (
    CACHE_FORMAT_VERSION,
    code_salt,
    stable_fingerprint,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SimulationConfig
    from repro.sim.results import SimulationResult

__all__ = [
    "CacheStats",
    "CacheDiskStats",
    "CacheVerifyReport",
    "ResultCache",
    "default_cache_dir",
]

#: On-disk entry framing: magic + 32-byte SHA-256 of the payload.
_ENTRY_MAGIC = b"RPRC2\n"
_DIGEST_SIZE = hashlib.sha256().digest_size


def _frame_payload(payload: bytes) -> bytes:
    return _ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload


def _unframe_payload(blob: bytes) -> bytes | None:
    """The checksum-verified payload, or None when the frame is bad."""
    header_size = len(_ENTRY_MAGIC) + _DIGEST_SIZE
    if len(blob) < header_size or not blob.startswith(_ENTRY_MAGIC):
        return None
    digest = blob[len(_ENTRY_MAGIC):header_size]
    payload = blob[header_size:]
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro/results``."""
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "results"


@dataclass
class CacheStats:
    """Hit/miss/elapsed counters for one cache (mergeable across workers)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0
    seconds_saved: float = 0.0
    seconds_computed: float = 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy (for before/after deltas in workers)."""
        return replace(self)

    def delta_since(self, before: "CacheStats") -> "CacheStats":
        """Counter increments accumulated since ``before``."""
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            stores=self.stores - before.stores,
            corrupt=self.corrupt - before.corrupt,
            seconds_saved=self.seconds_saved - before.seconds_saved,
            seconds_computed=self.seconds_computed - before.seconds_computed,
        )

    def merge(self, delta: "CacheStats") -> None:
        """Fold a worker-side delta into this (parent-side) counter set."""
        self.hits += delta.hits
        self.misses += delta.misses
        self.stores += delta.stores
        self.corrupt += delta.corrupt
        self.seconds_saved += delta.seconds_saved
        self.seconds_computed += delta.seconds_computed

    def render(self) -> str:
        """One status line, the CLI's cache-stats output."""
        return (
            f"cache: {self.hits} hits, {self.misses} misses, "
            f"{self.stores} stored, {self.corrupt} corrupt; "
            f"{self.seconds_saved:.1f}s compute saved, "
            f"{self.seconds_computed:.1f}s spent"
        )


class ResultCache:
    """Content-addressed store of :class:`SimulationResult` objects.

    Parameters
    ----------
    directory:
        Root of the on-disk store (created lazily on first write).
    salt:
        Code-version salt mixed into every key; defaults to
        :func:`repro.runtime.fingerprint.code_salt`.  Tests inject a
        fixed salt to exercise invalidation without editing source.
    """

    def __init__(self, directory: str | Path, salt: str | None = None) -> None:
        self.directory = Path(directory)
        self.salt = code_salt() if salt is None else str(salt)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def key_for(self, config: "SimulationConfig") -> str:
        """The content address of one configuration (seed included)."""
        return stable_fingerprint((CACHE_FORMAT_VERSION, self.salt, config))

    def _path_for(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    @property
    def quarantine_dir(self) -> Path:
        return self.directory / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside instead of silently destroying it."""
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:  # pragma: no cover - cross-device/racy fallback
            try:
                path.unlink()
            except OSError:
                pass

    def _load_entry(self, path: Path) -> "tuple[float, SimulationResult] | None":
        """Checksum-verify and unpickle one entry file, or None if bad."""
        try:
            payload = _unframe_payload(path.read_bytes())
            if payload is None:
                return None
            elapsed, result = pickle.loads(payload)
            return float(elapsed), result
        except Exception:
            return None

    # ------------------------------------------------------------------
    def get(self, config: "SimulationConfig") -> "SimulationResult | None":
        """The stored result for ``config``, or None on a miss.

        A corrupted entry (bad checksum, unpicklable, wrong shape) is
        quarantined and reported as a miss, never raised.
        """
        path = self._path_for(self.key_for(config))
        if not path.is_file():
            self.stats.misses += 1
            return None
        entry = self._load_entry(path)
        if entry is None:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._quarantine(path)
            return None
        elapsed, result = entry
        self.stats.hits += 1
        self.stats.seconds_saved += elapsed
        return result

    def put(
        self, config: "SimulationConfig", result: "SimulationResult", elapsed: float
    ) -> None:
        """Store ``result`` (with its compute time) under ``config``'s key."""
        path = self._path_for(self.key_for(config))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = pickle.dumps(
            (float(elapsed), result), protocol=pickle.HIGHEST_PROTOCOL
        )
        # Atomic publish: concurrent workers (possibly on other hosts,
        # via the fabric's shared-cache-dir mode) may race on the same
        # key, but every one of them writes the identical byte-for-byte
        # payload, so last-replace-wins is harmless.  The fsync before
        # the rename keeps a power-cut from publishing a name whose
        # data blocks never hit the disk.
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_frame_payload(payload))
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1
        self.stats.seconds_computed += elapsed

    # ------------------------------------------------------------------
    # Maintenance surface (the ``repro cache`` subcommand).
    def iter_entry_paths(self) -> Iterator[Path]:
        """Every entry file, in stable (shard, name) order."""
        if not self.directory.is_dir():
            return
        for shard in sorted(self.directory.iterdir()):
            if shard.is_dir() and len(shard.name) == 2:
                yield from sorted(shard.glob("*.pkl"))

    def disk_stats(self) -> "CacheDiskStats":
        """Entry/quarantine counts and byte totals from a directory walk."""
        stats = CacheDiskStats(directory=self.directory)
        for path in self.iter_entry_paths():
            stats.entries += 1
            stats.entry_bytes += path.stat().st_size
        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.iterdir()):
                if path.is_file():
                    stats.quarantined += 1
                    stats.quarantined_bytes += path.stat().st_size
        return stats

    def sweep_stale_tmp(self, max_age_seconds: float = 3600.0) -> int:
        """Delete abandoned ``*.tmp`` files older than ``max_age_seconds``.

        A writer killed between ``mkstemp`` and ``os.replace`` leaves an
        invisible-but-real temp file behind; entries themselves are
        never torn (the rename is atomic), but the strays accumulate.
        The age guard keeps a sweep from deleting a temp file another
        live writer is about to rename.  Returns the number removed.
        """
        if not self.directory.is_dir():
            return 0
        cutoff = time.time() - max(0.0, max_age_seconds)
        removed = 0
        candidates = list(self.directory.glob("*.tmp"))
        for shard in self.directory.iterdir():
            if shard.is_dir() and len(shard.name) == 2:
                candidates.extend(shard.glob("*.tmp"))
        for path in candidates:
            try:
                if path.stat().st_mtime <= cutoff:
                    path.unlink()
                    removed += 1
            except OSError:  # pragma: no cover - racy cleanup is best-effort
                continue
        return removed

    def verify(self) -> "CacheVerifyReport":
        """Checksum-and-unpickle every entry, quarantining the bad ones.

        Also sweeps stale writer temp files (see :meth:`sweep_stale_tmp`).
        """
        report = CacheVerifyReport()
        for path in list(self.iter_entry_paths()):
            report.checked += 1
            if self._load_entry(path) is None:
                report.quarantined.append(path.name)
                self._quarantine(path)
        report.stale_tmp_removed = self.sweep_stale_tmp()
        return report

    def purge(self, include_quarantine: bool = True) -> tuple[int, int]:
        """Delete all entries (and quarantined files); returns
        ``(files_removed, bytes_reclaimed)``."""
        removed = reclaimed = 0
        targets = list(self.iter_entry_paths())
        if include_quarantine and self.quarantine_dir.is_dir():
            targets.extend(p for p in sorted(self.quarantine_dir.iterdir()) if p.is_file())
        for path in targets:
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:  # pragma: no cover - racy cleanup is best-effort
                continue
            removed += 1
            reclaimed += size
        return removed, reclaimed

    def prune(self, max_bytes: int) -> tuple[int, int]:
        """Evict oldest entries (by mtime) until the store fits
        ``max_bytes``; returns ``(files_removed, bytes_reclaimed)``."""
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be non-negative, got {max_bytes}")
        entries = []
        total = 0
        for path in self.iter_entry_paths():
            stat = path.stat()
            entries.append((stat.st_mtime, stat.st_size, path))
            total += stat.st_size
        entries.sort(key=lambda e: (e[0], str(e[2])))
        removed = reclaimed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racy cleanup is best-effort
                continue
            total -= size
            removed += 1
            reclaimed += size
        return removed, reclaimed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.directory)!r}, salt={self.salt[:8]}...)"


@dataclass
class CacheDiskStats:
    """What is actually on disk (as opposed to the session counters)."""

    directory: Path
    entries: int = 0
    entry_bytes: int = 0
    quarantined: int = 0
    quarantined_bytes: int = 0

    def render(self) -> str:
        return (
            f"cache directory : {self.directory}\n"
            f"entries         : {self.entries} ({self.entry_bytes} bytes)\n"
            f"quarantined     : {self.quarantined} ({self.quarantined_bytes} bytes)"
        )


@dataclass
class CacheVerifyReport:
    """Outcome of one :meth:`ResultCache.verify` pass."""

    checked: int = 0
    quarantined: list[str] = field(default_factory=list)
    stale_tmp_removed: int = 0

    @property
    def ok(self) -> int:
        return self.checked - len(self.quarantined)

    def render(self) -> str:
        line = f"verified {self.checked} entries: {self.ok} ok, {len(self.quarantined)} quarantined"
        if self.stale_tmp_removed:
            line += f"; swept {self.stale_tmp_removed} stale tmp files"
        for name in self.quarantined:
            line += f"\n  quarantined {name}"
        return line
