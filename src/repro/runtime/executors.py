"""Pluggable sweep executors: serial loop or process-pool fan-out.

The contract is a deterministic, order-preserving ``map``: the result
list is aligned with the input list no matter which worker computed
which item, and a given item produces the same value under either
executor (simulations derive all randomness from their configuration's
seed via named :class:`~repro.des.rng.RngRegistry` streams, so no
hidden state crosses items).

The :class:`ParallelExecutor` ships work to forked workers through an
inherited module global rather than by pickling the callable -- sweep
bodies are closures over experiment parameters, which stdlib pickle
cannot serialize, while ``fork`` children inherit them for free.  Only
the item *indices* travel to the pool and only the results travel
back.  Worker-side cache/runtime counters are returned alongside each
result and merged into the parent's counters, so cache statistics stay
truthful under ``--jobs N``.

On platforms without ``fork`` (or inside a worker, where nesting pools
would be a fork bomb) the parallel executor degrades to the serial
path -- same results, no surprises.
"""

from __future__ import annotations

import abc
import math
import multiprocessing
import sys
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence, TypeVar

__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "WorkerError"]

T = TypeVar("T")
R = TypeVar("R")


def _serial_repro_command() -> str:
    """A ready-to-paste ``repro ... --jobs 1`` serial reproduction.

    Best effort: rebuilt from ``sys.argv`` with any ``--jobs`` option
    replaced, falling back to a template outside a CLI invocation.
    """
    arguments = []
    skip_next = False
    for argument in sys.argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if argument == "--jobs":
            skip_next = True
            continue
        if argument.startswith("--jobs="):
            continue
        arguments.append(argument)
    if not arguments:
        return "repro <command> --jobs 1"
    return "repro " + " ".join(arguments) + " --jobs 1"


class WorkerError(RuntimeError):
    """A sweep item failed inside a pool worker.

    Carries the item's index and value plus the worker-side traceback
    text, so the failing cell can be reproduced serially.  Instances
    pickle cleanly (``__reduce__``), so the index/item survive a trip
    through a result queue or a crash report.
    """

    def __init__(
        self, index: int, item: object, message: str, remote_traceback: str
    ) -> None:
        super().__init__(
            f"sweep item {index} ({item!r}) failed in worker: {message}\n"
            f"reproduce serially with: {_serial_repro_command()} "
            f"(fails at sweep item {index})\n"
            f"--- worker traceback ---\n{remote_traceback}"
        )
        self.index = index
        self.item = item
        self.message = message
        self.remote_traceback = remote_traceback

    def __reduce__(self):
        return (
            type(self),
            (self.index, self.item, self.message, self.remote_traceback),
        )


class Executor(abc.ABC):
    """Order-preserving map strategy over sweep items."""

    #: Worker-process count this executor targets (1 for serial).
    jobs: int = 1

    @abc.abstractmethod
    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Evaluate ``fn`` on every item, returning results in item order."""


class SerialExecutor(Executor):
    """The legacy in-process loop (the determinism reference)."""

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        return [fn(item) for item in items]


# ----------------------------------------------------------------------
# Fork-side plumbing.  ``_ACTIVE`` holds the work unit between the
# parent arming it and the pool workers (forked afterwards) reading it;
# ``_IN_WORKER`` marks forked children so nested sweeps stay serial.
_ACTIVE: dict | None = None
_IN_WORKER = False


def _worker_invoke(index: int):
    """Run one item in a forked worker; never raises.

    Returns ``(payload, cache_delta, stats_delta, telemetry_runs)``
    where payload is ``("ok", value)`` or ``("err", message,
    traceback_text)``.  The deltas let the parent fold worker-side
    cache hits/misses and simulator invocations into its own counters;
    ``telemetry_runs`` is the item's captured telemetry publications
    (in publication order) for the parent to replay in *item* order --
    that replay discipline is what keeps aggregated telemetry
    bit-identical between ``--jobs N`` and serial execution.
    """
    global _IN_WORKER
    _IN_WORKER = True
    from repro.runtime.context import current_runtime

    context = current_runtime()
    cache_before = context.cache.stats.snapshot() if context.cache else None
    stats_before = context.stats.snapshot()
    assert _ACTIVE is not None  # armed by the parent before the fork
    telemetry_runs = None
    try:
        if context.telemetry is not None:
            with context.telemetry.capture() as sink:
                payload = ("ok", _ACTIVE["fn"](_ACTIVE["items"][index]))
            telemetry_runs = sink.runs
        else:
            payload = ("ok", _ACTIVE["fn"](_ACTIVE["items"][index]))
    except Exception as exc:
        payload = ("err", repr(exc), traceback.format_exc())
    cache_delta = (
        context.cache.stats.delta_since(cache_before) if context.cache else None
    )
    return payload, cache_delta, context.stats.delta_since(stats_before), telemetry_runs


class ParallelExecutor(Executor):
    """``ProcessPoolExecutor`` fan-out with chunking and ordered results.

    Parameters
    ----------
    jobs:
        Worker process count (>= 1; 1 behaves exactly like serial).
    chunk_size:
        Items per pool task; None picks ``ceil(n / (4 * jobs))`` so
        each worker sees ~4 chunks (amortizing dispatch overhead while
        keeping the tail balanced).
    """

    def __init__(self, jobs: int, chunk_size: int | None = None) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be at least 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk size must be at least 1, got {chunk_size}")
        self.jobs = int(jobs)
        self.chunk_size = chunk_size

    def _chunksize(self, n_items: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(n_items / (4 * self.jobs)))

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        global _ACTIVE
        items = list(items)
        if (
            _IN_WORKER
            or _ACTIVE is not None
            or self.jobs == 1
            or len(items) <= 1
            or "fork" not in multiprocessing.get_all_start_methods()
        ):
            return SerialExecutor().map(fn, items)
        _ACTIVE = {"fn": fn, "items": items}
        try:
            with ProcessPoolExecutor(
                max_workers=min(self.jobs, len(items)),
                mp_context=multiprocessing.get_context("fork"),
            ) as pool:
                raw = list(
                    pool.map(
                        _worker_invoke,
                        range(len(items)),
                        chunksize=self._chunksize(len(items)),
                    )
                )
        finally:
            _ACTIVE = None

        from repro.runtime.context import current_runtime

        context = current_runtime()
        results: list[R] = []
        failure: tuple[int, str, str] | None = None
        for index, (payload, cache_delta, stats_delta, telemetry_runs) in enumerate(raw):
            if cache_delta is not None and context.cache is not None:
                context.cache.stats.merge(cache_delta)
            context.stats.merge(stats_delta)
            if telemetry_runs is not None and context.telemetry is not None:
                # Replay in item order (this loop IS item order): the
                # serial path publishes in item order too, so folding
                # the aggregate gives bit-identical float sums.
                context.telemetry.replay(telemetry_runs)
            if payload[0] == "ok":
                results.append(payload[1])
            elif failure is None:
                failure = (index, payload[1], payload[2])
        if failure is not None:
            index, message, remote_traceback = failure
            raise WorkerError(index, items[index], message, remote_traceback)
        return results
