"""Stable content fingerprints for cache keys.

The result cache must key on *what the simulation will compute*, not on
Python object identity.  Two ingredients:

* :func:`stable_fingerprint` -- a canonical recursive encoding of a
  configuration object (dataclasses, mappings, sequences, numpy
  values), hashed with SHA-256.  The encoding is independent of dict
  insertion order and of the process that produced it, so the same
  configuration always maps to the same key across runs and machines;
* :func:`code_salt` -- a hash over the source of every ``repro``
  module that can influence a simulation's output.  Touching simulator
  code invalidates the whole cache automatically; touching only
  analysis/plotting code does not.

Unknown types fail loudly: silently falling back to ``repr`` or ``id``
would risk serving stale results for configurations the encoder does
not actually distinguish.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from pathlib import Path
from typing import Iterable

import numpy as np

__all__ = ["stable_fingerprint", "code_salt", "CACHE_FORMAT_VERSION"]

#: Bump to invalidate every existing cache entry (format changes).
#: v2: entries framed as ``magic || sha256(payload) || payload`` so
#: corruption is caught by checksum before unpickling.
CACHE_FORMAT_VERSION = 2

#: Subpackages whose source participates in the code-version salt --
#: everything that can change what a simulation produces.  Analysis,
#: experiment drivers and this runtime package are deliberately absent:
#: the whole point of the cache is that touching them keeps hits warm.
_SALTED_SUBPACKAGES = (
    "sim",
    "des",
    "core",
    "net",
    "traffic",
    "faults",
    "queueing",
    "crypto",
    "location",
    "mixes",
    "telemetry",
)


def _encode(obj: object, update) -> None:
    """Feed a canonical byte encoding of ``obj`` into ``update``."""
    if obj is None:
        update(b"N")
    elif obj is True:
        update(b"T")
    elif obj is False:
        update(b"F")
    elif isinstance(obj, (int, np.integer)) and not isinstance(obj, bool):
        update(b"i" + str(int(obj)).encode("ascii"))
    elif isinstance(obj, (float, np.floating)):
        update(b"f" + struct.pack("<d", float(obj)))
    elif isinstance(obj, str):
        raw = obj.encode("utf-8")
        update(b"s" + str(len(raw)).encode("ascii") + b":" + raw)
    elif isinstance(obj, (bytes, bytearray)):
        update(b"b" + str(len(obj)).encode("ascii") + b":" + bytes(obj))
    elif isinstance(obj, np.ndarray):
        canonical = np.ascontiguousarray(obj)
        update(b"a" + canonical.dtype.str.encode("ascii"))
        update(repr(canonical.shape).encode("ascii"))
        update(canonical.tobytes())
    elif isinstance(obj, (list, tuple)):
        update(b"l" if isinstance(obj, list) else b"t")
        update(str(len(obj)).encode("ascii"))
        for element in obj:
            _encode(element, update)
    elif isinstance(obj, (set, frozenset)):
        update(b"e" + str(len(obj)).encode("ascii"))
        for element_bytes in sorted(_encoded_bytes(element) for element in obj):
            update(element_bytes)
    elif isinstance(obj, dict):
        update(b"d" + str(len(obj)).encode("ascii"))
        items = sorted(
            (_encoded_bytes(key), value) for key, value in obj.items()
        )
        for key_bytes, value in items:
            update(key_bytes)
            _encode(value, update)
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        update(b"D" + _type_tag(obj))
        for field in sorted(dataclasses.fields(obj), key=lambda f: f.name):
            update(field.name.encode("utf-8"))
            _encode(getattr(obj, field.name), update)
    elif hasattr(obj, "__dict__") and not callable(obj):
        # Plain parameter objects: delay distributions, traffic models,
        # victim policies.  Their behaviour is fully determined by
        # their class and instance attributes.
        update(b"O" + _type_tag(obj))
        for name in sorted(vars(obj)):
            update(name.encode("utf-8"))
            _encode(vars(obj)[name], update)
    else:
        raise TypeError(
            f"cannot fingerprint {type(obj).__module__}.{type(obj).__qualname__}: "
            "add an explicit encoding before caching configurations that carry it"
        )


def _type_tag(obj: object) -> bytes:
    cls = type(obj)
    return f"{cls.__module__}.{cls.__qualname__}".encode("utf-8") + b";"


def _encoded_bytes(obj: object) -> bytes:
    chunks: list[bytes] = []
    _encode(obj, chunks.append)
    return b"".join(chunks)


def stable_fingerprint(obj: object) -> str:
    """SHA-256 hex digest of the canonical encoding of ``obj``."""
    digest = hashlib.sha256()
    _encode(obj, digest.update)
    return digest.hexdigest()


def _salted_files() -> Iterable[Path]:
    package_root = Path(__file__).resolve().parent.parent
    for subpackage in _SALTED_SUBPACKAGES:
        directory = package_root / subpackage
        if not directory.is_dir():  # pragma: no cover - defensive
            continue
        yield from sorted(directory.glob("*.py"))


_CODE_SALT: str | None = None


def code_salt() -> str:
    """Hash of the simulation-relevant ``repro`` source (cached).

    Any edit to the simulator, DES core, buffers, faults, crypto or
    queueing code changes the salt and therefore every cache key; edits
    confined to analysis or experiment-driver code leave it unchanged.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        digest = hashlib.sha256()
        digest.update(f"format={CACHE_FORMAT_VERSION};".encode("ascii"))
        package_root = Path(__file__).resolve().parent.parent
        for path in _salted_files():
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_SALT = digest.hexdigest()
    return _CODE_SALT
