"""Parallel experiment runtime: executors, result cache, batch kernels.

Every figure and ablation funnels its simulations through two seams --
the :func:`repro.analysis.sweep.sweep`/``replicate`` loop and the
per-cell simulator invocation.  This package instruments both:

* :mod:`repro.runtime.executors` -- pluggable map strategies: the
  :class:`SerialExecutor` (the exact legacy loop) and the
  :class:`ParallelExecutor` (a ``ProcessPoolExecutor`` fan-out with
  chunking and ordered result reassembly).  Determinism is preserved
  because every simulation seeds its own named RNG streams from its
  configuration (:class:`repro.des.rng.RngRegistry`), so results do not
  depend on which worker ran which cell;
* :mod:`repro.runtime.cache` -- a content-addressed on-disk result
  cache keyed by a stable fingerprint of ``(SimulationConfig, seed,
  code-version salt)``: re-running a figure after touching only
  analysis code skips the simulations entirely;
* :mod:`repro.runtime.context` -- the ambient :class:`RuntimeContext`
  (:func:`use_runtime`) that ties the two together and the
  cache-aware :func:`run_simulation` entry point all experiment
  drivers call;
* :mod:`repro.runtime.kernels` -- numpy batch kernels for the hot
  scoring paths (adversary estimation, the Erlang-B recursion); the
  scalar implementations remain in place as the oracle the equivalence
  tests check against;
* :mod:`repro.runtime.supervisor` -- the fault-tolerance layer: per-
  item wall-clock timeouts, crash detection with suspect probing,
  bounded retries with exponential backoff, quarantine of repeatedly
  failing cells (:class:`FailureReport`), and mid-sweep degradation to
  serial when the pool cannot be rebuilt;
* :mod:`repro.runtime.journal` -- the append-only checkpoint journal
  (JSONL of completed cell results, checksummed line-by-line) that
  makes interrupted sweeps resumable via ``--resume``;
* :mod:`repro.runtime.fabric` -- the distributed sweep fabric: a
  lease-based coordinator/worker layer over the journal and cache that
  shards one grid across worker processes (or hosts sharing a cache
  directory), steals work from crashed workers, and merges results in
  item order so distributed runs stay bit-identical to serial;
* :mod:`repro.runtime.transport` -- the fabric's TCP access path:
  length-prefixed sha256-checksummed frames, an idempotent RPC client
  with capped exponential backoff, and the coordinator-side asyncio
  endpoint that gateways RPCs onto the fabric directory;
* :mod:`repro.runtime.chaosnet` -- an in-process frame-aware chaos
  proxy (latency, drops, duplicates, mid-frame resets, partitions)
  that proves the transport's fault tolerance in tests and CI.
"""

from repro.runtime.cache import (
    CacheDiskStats,
    CacheStats,
    CacheVerifyReport,
    ResultCache,
    default_cache_dir,
)
from repro.runtime.context import (
    RuntimeContext,
    RuntimeStats,
    current_runtime,
    run_simulation,
    use_runtime,
)
from repro.runtime.executors import (
    Executor,
    ParallelExecutor,
    SerialExecutor,
    WorkerError,
)
from repro.runtime.fingerprint import code_salt, stable_fingerprint
from repro.runtime.journal import (
    CompactionStats,
    JournalStats,
    SweepJournal,
    compact_journal,
    sweep_fingerprint,
)
from repro.runtime.supervisor import (
    FailureRecord,
    FailureReport,
    RetryPolicy,
    Supervisor,
    supervised_map,
)

# Imported last: the fabric layers on top of every module above.
from repro.runtime.chaosnet import (  # noqa: E402
    ChaosProxy,
    ChaosStats,
    NetFaultPlan,
    PartitionWindow,
)
from repro.runtime.fabric import (  # noqa: E402
    FabricConfig,
    FabricError,
    FabricReport,
    FabricWorker,
    FilesystemClock,
    SystemClock,
    run_fabric,
)
from repro.runtime.transport import (  # noqa: E402
    Backoff,
    FabricEndpoint,
    FrameError,
    TransportClient,
    TransportDown,
    TransportError,
    TransportStats,
    parse_endpoint,
)

__all__ = [
    "CacheDiskStats",
    "CacheStats",
    "CacheVerifyReport",
    "ResultCache",
    "default_cache_dir",
    "RuntimeContext",
    "RuntimeStats",
    "current_runtime",
    "run_simulation",
    "use_runtime",
    "Executor",
    "ParallelExecutor",
    "SerialExecutor",
    "WorkerError",
    "code_salt",
    "stable_fingerprint",
    "CompactionStats",
    "JournalStats",
    "SweepJournal",
    "compact_journal",
    "sweep_fingerprint",
    "FailureRecord",
    "FailureReport",
    "RetryPolicy",
    "Supervisor",
    "supervised_map",
    "FabricConfig",
    "FabricError",
    "FabricReport",
    "FabricWorker",
    "FilesystemClock",
    "SystemClock",
    "run_fabric",
    "Backoff",
    "FabricEndpoint",
    "FrameError",
    "TransportClient",
    "TransportDown",
    "TransportError",
    "TransportStats",
    "parse_endpoint",
    "ChaosProxy",
    "ChaosStats",
    "NetFaultPlan",
    "PartitionWindow",
]
