"""Distributed sweep fabric: lease-based coordinator/worker execution.

The parallel runtime (PRs 2-4) fans a sweep out over a process pool
inside *one* supervising process.  The fabric scales the same sweeps
past that boundary: a **coordinator** shards the grid into leased work
units recorded in a shared *fabric directory*, and **workers** -- forked
locally by the coordinator, or joined from anywhere via ``repro worker``
pointed at the same directory -- claim leases, run cells, and append
results to checksummed per-worker journals.  Sharing a result-cache
directory between hosts gives free cross-worker dedup: a cell computed
anywhere is a cache hit everywhere.

Layout of one fabric directory (all writes atomic or append-only)::

    <fabric-dir>/
      grid.jsonl          # header + one checksummed pickled item per line
      leases/NNNNNN.json  # worker id + epoch + claim time, per cell
      workers/<id>.json   # heartbeat: deadline = now + lease TTL
      results/<id>.jsonl  # SweepJournal-format cell records + event lines

Robustness model
----------------

Leases are an *optimization*, not a correctness mechanism.  Every cell
is deterministic (all randomness comes from the item's seed), result
journals are checksummed line-by-line, and cache writes are atomic
temp-file + rename -- so duplicated work caused by any lease race
produces byte-identical records and the merge cannot be corrupted.
What the lease protocol buys is *liveness without duplication* in the
common case:

* a worker's lease is its id plus a heartbeat deadline; the worker
  renews its heartbeat file every ``heartbeat_interval`` seconds;
* a lease whose owner has a stale heartbeat **and** whose claim is
  older than ``lease_ttl`` is expired; any live worker steals it
  (epoch + 1, atomic replace) and reruns the cell -- work stealing
  from crashed or straggling workers;
* a SIGKILLed worker mid-cell loses nothing: its lease lapses, the
  cell is stolen and rerun, and a torn final journal line fails its
  checksum and is ignored;
* the coordinator is crash-safe: rerunning it loads the grid and every
  verified journal line, so completed cells are never recomputed;
* if every worker is dead (or none ever joins), the coordinator falls
  back to in-process serial completion with a structured warning.

Results merge in item order, so a distributed run is bit-identical to
:class:`~repro.runtime.executors.SerialExecutor`
(``tests/test_runtime_determinism.py`` proves it).  Lease churn,
steals, reclaims and per-worker throughput publish through
:mod:`repro.telemetry` when the ambient context collects it.
"""

from __future__ import annotations

import base64
import hashlib
import importlib
import json
import multiprocessing
import os
import pickle
import re
import socket
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.runtime import executors as _executors
from repro.runtime.cache import ResultCache, default_cache_dir
from repro.runtime.journal import (
    decode_cell_entry,
    encode_cell_entry,
    sweep_fingerprint,
)
from repro.runtime.supervisor import RetryPolicy, supervised_map
from repro.runtime.transport import (
    TRANSPORT_VERSION,
    FabricEndpoint,
    NetHeartbeat,
    TransportClient,
    TransportDown,
    TransportError,
    format_endpoint,
    parse_endpoint,
)

__all__ = [
    "FABRIC_VERSION",
    "FabricError",
    "FabricConfig",
    "FabricReport",
    "FabricWorker",
    "SystemClock",
    "FilesystemClock",
    "run_fabric",
    "write_grid",
    "load_grid",
    "resolve_function_ref",
]

#: Bump to orphan existing fabric directories (format changes).
FABRIC_VERSION = 1

_GRID_FILE = "grid.jsonl"
_LEASE_DIR = "leases"
_WORKER_DIR = "workers"
_RESULT_DIR = "results"


class FabricError(RuntimeError):
    """A fabric directory is unusable (torn grid, wrong sweep, no fn)."""


# ----------------------------------------------------------------------
# Small atomic-file helpers.  Every mutable file in the fabric directory
# (heartbeats, stolen leases, the grid itself) is published with temp
# file + ``os.replace`` so no reader can ever observe a torn write.


def _atomic_write_json(path: Path, payload: dict) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _read_json(path: Path) -> dict | None:
    """Parse one JSON file, or None when missing/torn (never raises)."""
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return payload if isinstance(payload, dict) else None
    except Exception:
        return None


def _safe_worker_id(worker_id: str) -> str:
    """Worker ids become file names; keep them shell- and fs-safe."""
    cleaned = re.sub(r"[^A-Za-z0-9._-]+", "-", worker_id).strip("-.")
    if not cleaned:
        raise FabricError(f"unusable worker id {worker_id!r}")
    return cleaned


def default_worker_id() -> str:
    """``<hostname>-<pid>``: unique enough for externally joined workers."""
    return _safe_worker_id(f"{socket.gethostname()}-{os.getpid()}")


# ----------------------------------------------------------------------
# Clocks.  Lease expiry compares *ages* against TTLs, which is only
# meaningful when the claim timestamp and "now" come from the same time
# base.  Three bases exist:
#
# * :class:`SystemClock` -- the local wall clock; correct when every
#   participant shares one host (the forked-worker case, and tests);
# * :class:`FilesystemClock` -- the shared filesystem's notion of time,
#   sampled from a probe file's mtime.  Cross-host workers on NFS use
#   it so a skewed local wall clock cannot prematurely steal a live
#   lease: lease files are *anchored* by their mtime (fileserver time)
#   and compared against fileserver time, so the writer's and reader's
#   wall clocks both drop out of the arithmetic;
# * coordinator time over TCP -- networked workers never do expiry
#   arithmetic at all; the endpoint decides, with its own clock, and
#   stamps every response with ``"t"``.


class SystemClock:
    """The local wall clock."""

    def now(self) -> float:
        return time.time()


class FilesystemClock:
    """Wall clock corrected to the shared filesystem's time base.

    ``now()`` returns ``local_time + offset`` where ``offset`` is
    measured by writing a probe file under ``fabric_dir`` and comparing
    its mtime (stamped by the fileserver) against the local clock.  The
    offset is resampled at most every ``resample_interval`` seconds.
    On a local filesystem the offset is ~0 and this degrades to
    :class:`SystemClock`; probe failures (read-only mount, races) fall
    back to a zero offset rather than raising.

    ``time_fn`` exists for tests: injecting a skewed local clock must
    show the correction, not be hidden by it.
    """

    def __init__(
        self,
        fabric_dir: str | Path,
        resample_interval: float = 60.0,
        time_fn: Callable[[], float] = time.time,
    ) -> None:
        self.fabric_dir = Path(fabric_dir)
        self.resample_interval = float(resample_interval)
        self._time_fn = time_fn
        self.offset = 0.0
        self._sampled_at: float | None = None

    def sample(self) -> float:
        """Measure ``fileserver_time - local_time`` once."""
        probe = self.fabric_dir / f".clock-probe-{os.getpid()}"
        try:
            self.fabric_dir.mkdir(parents=True, exist_ok=True)
            before = self._time_fn()
            probe.write_bytes(b"")
            mtime = probe.stat().st_mtime
            after = self._time_fn()
            # The mtime was stamped somewhere inside [before, after];
            # compare against the midpoint to halve the sampling error.
            self.offset = mtime - (before + after) / 2.0
        except OSError:
            self.offset = 0.0
        finally:
            try:
                probe.unlink()
            except OSError:
                pass
        self._sampled_at = time.monotonic()
        return self.offset

    def now(self) -> float:
        if (
            self._sampled_at is None
            or time.monotonic() - self._sampled_at >= self.resample_interval
        ):
            self.sample()
        return self._time_fn() + self.offset


def _heartbeat_payload_fresh(path: Path, payload: dict | None, now: float) -> bool:
    """Is this heartbeat file evidence of a live worker at time ``now``?

    Freshness is anchored to the file's *mtime* (fileserver time), not
    the deadline the writer computed with its own possibly-skewed wall
    clock: fresh iff ``mtime + ttl >= now``.  Files from older writers
    without a ``ttl`` field fall back to the recorded deadline.
    """
    if payload is None or payload.get("left"):
        return False
    try:
        ttl = payload.get("ttl")
        if ttl is not None:
            return path.stat().st_mtime + float(ttl) >= now
        return float(payload["deadline"]) >= now
    except Exception:
        return False


# ----------------------------------------------------------------------
# Configuration.


@dataclass(frozen=True)
class FabricConfig:
    """Timing and sizing of one fabric run.

    Parameters
    ----------
    workers:
        Local worker processes the coordinator forks (0 = coordinate
        externally joined ``repro worker`` processes only; with none
        joining, the coordinator completes serially after one lease
        TTL).
    lease_ttl:
        Seconds of heartbeat silence after which a worker's leases are
        considered expired and stealable.
    heartbeat_interval:
        Heartbeat renewal period; defaults to ``lease_ttl / 3`` and
        must stay below ``lease_ttl`` (a worker must be able to renew
        several times within one TTL).
    poll_interval:
        Coordinator/worker scan period for journals and leases.
    fabric_dir:
        Shared state directory; defaults to
        ``<cache-dir>/fabric/<sweep-id[:16]>``.
    cache_dir:
        Result-cache directory handed to every worker (the shared-dir
        dedup trick); None disables worker-side caching.
    listen:
        ``host:port`` TCP endpoint the coordinator serves lease claims,
        heartbeats and result uploads on (port 0 binds an ephemeral
        port, printed at startup); None keeps the fabric
        shared-filesystem only.
    """

    workers: int = 2
    lease_ttl: float = 30.0
    heartbeat_interval: float | None = None
    poll_interval: float = 0.2
    fabric_dir: str | Path | None = None
    cache_dir: str | Path | None = None
    listen: str | None = None

    def __post_init__(self) -> None:
        if self.listen is not None:
            parse_endpoint(self.listen, allow_port_zero=True)
        if self.workers < 0:
            raise ValueError(f"workers must be non-negative, got {self.workers}")
        if self.lease_ttl <= 0:
            raise ValueError(f"lease_ttl must be positive, got {self.lease_ttl}")
        if self.heartbeat_interval is not None:
            if self.heartbeat_interval <= 0:
                raise ValueError(
                    f"heartbeat_interval must be positive, "
                    f"got {self.heartbeat_interval}"
                )
            if self.heartbeat_interval >= self.lease_ttl:
                raise ValueError(
                    f"heartbeat_interval ({self.heartbeat_interval:g}s) must be "
                    f"below lease_ttl ({self.lease_ttl:g}s) or every lease "
                    f"expires between renewals"
                )
        if self.poll_interval <= 0:
            raise ValueError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )

    @property
    def effective_heartbeat_interval(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return self.lease_ttl / 3.0


# ----------------------------------------------------------------------
# Grid spec: the sweep's items, serialized once by the coordinator so
# any process (any host) can reconstruct the work list.


def function_ref(fn: Callable) -> str | None:
    """``module:qualname`` if ``fn`` is importable by that name, else None.

    Closures and lambdas return None: locally forked workers inherit
    them through :data:`_FABRIC_FN`, but externally joined workers
    cannot run such a grid (they get a clear :class:`FabricError`).
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", "")
    if not module or not qualname or "<" in qualname:
        return None
    try:
        if resolve_function_ref(f"{module}:{qualname}") is not fn:
            return None
    except Exception:
        return None
    return f"{module}:{qualname}"


def resolve_function_ref(ref: str) -> Callable:
    """Import the callable named by a ``module:qualname`` reference."""
    module_name, _, qualname = ref.partition(":")
    if not module_name or not qualname:
        raise FabricError(f"malformed function reference {ref!r}")
    obj = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    if not callable(obj):
        raise FabricError(f"function reference {ref!r} is not callable")
    return obj


def write_grid(
    fabric_dir: Path,
    sweep_id: str,
    label: str,
    items: Sequence[object],
    fn_ref: str | None,
    config: FabricConfig,
) -> None:
    """Publish the grid spec atomically (header + one line per item)."""
    lines = [
        json.dumps(
            {
                "kind": "header",
                "version": FABRIC_VERSION,
                "sweep": sweep_id,
                "label": label,
                "n_items": len(items),
                "fn_ref": fn_ref,
                "lease_ttl": config.lease_ttl,
                "heartbeat_interval": config.effective_heartbeat_interval,
                "cache_dir": (
                    str(config.cache_dir) if config.cache_dir is not None else None
                ),
            }
        )
    ]
    for index, item in enumerate(items):
        data = pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL)
        lines.append(
            json.dumps(
                {
                    "kind": "item",
                    "index": index,
                    "sha": hashlib.sha256(data).hexdigest(),
                    "data": base64.b64encode(data).decode("ascii"),
                }
            )
        )
    payload = "".join(line + "\n" for line in lines)
    fabric_dir.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=fabric_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, fabric_dir / _GRID_FILE)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _parse_grid_lines(
    lines: Sequence[str], source: str
) -> tuple[dict, list[object]]:
    """Parse grid-format lines (from a file or the ``grid`` RPC)."""
    if not lines:
        raise FabricError(f"empty grid at {source}")
    try:
        header = json.loads(lines[0])
        if header.get("kind") != "header" or header.get("version") != FABRIC_VERSION:
            raise ValueError("bad header")
        n_items = int(header["n_items"])
    except Exception as exc:
        raise FabricError(f"unreadable grid header at {source}: {exc!r}") from exc
    items: dict[int, object] = {}
    for line in lines[1:]:
        if not line.strip():
            continue
        try:
            entry = json.loads(line)
            if entry.get("kind") != "item":
                continue
            index = int(entry["index"])
            data = base64.b64decode(entry["data"], validate=True)
            if hashlib.sha256(data).hexdigest() != entry["sha"]:
                raise ValueError("checksum mismatch")
            items[index] = pickle.loads(data)
        except Exception as exc:
            raise FabricError(f"corrupt grid item at {source}: {exc!r}") from exc
    if sorted(items) != list(range(n_items)):
        raise FabricError(
            f"torn grid at {source}: {len(items)} of {n_items} items present"
        )
    return header, [items[i] for i in range(n_items)]


def load_grid(fabric_dir: Path) -> tuple[dict, list[object]]:
    """``(header, items)`` from a fabric directory.

    Unlike result journals, a torn grid is fatal: workers must agree on
    the exact item list or lease indices would name different cells.
    """
    path = Path(fabric_dir) / _GRID_FILE
    if not path.is_file():
        raise FabricError(f"no grid at {path}; start a coordinator first")
    lines = path.read_text(encoding="utf-8").splitlines()
    return _parse_grid_lines(lines, source=str(path))


# ----------------------------------------------------------------------
# Lease board.


@dataclass
class Lease:
    """One cell's current owner.

    ``claimed_at`` is what the claiming worker's clock said and is
    recorded for diagnosis only; expiry arithmetic uses ``anchor`` (the
    lease file's mtime, stamped by the filesystem holding the fabric
    directory) so a claimant with a skewed wall clock cannot make its
    lease look younger or older than it is.
    """

    index: int
    worker: str
    epoch: int
    claimed_at: float
    stolen_from: str | None = None
    anchor: float | None = None

    def to_json(self) -> dict:
        return {
            "kind": "lease",
            "index": self.index,
            "worker": self.worker,
            "epoch": self.epoch,
            "claimed_at": self.claimed_at,
            "stolen_from": self.stolen_from,
        }


class LeaseBoard:
    """Claim/steal protocol over ``<fabric-dir>/leases/``.

    A fresh claim is an ``O_CREAT | O_EXCL`` create (exactly one racing
    worker wins).  A steal of an expired lease is an atomic replace
    carrying ``epoch + 1``; two workers racing a steal may both run the
    cell, which is harmless (deterministic cells, checksummed journals,
    later-wins merge).  Re-claiming a cell this worker already owns is
    an idempotent success (same epoch) so at-least-once RPC delivery
    can safely replay claims.

    Expiry judgments are skew-tolerant: lease and heartbeat ages are
    anchored to file mtimes (the fabric filesystem's time base), and
    ``clock`` supplies "now" in that same base
    (:class:`FilesystemClock` for cross-host workers; the default
    :class:`SystemClock` is correct on a single host).
    """

    def __init__(
        self,
        fabric_dir: Path,
        worker_id: str,
        lease_ttl: float,
        clock: SystemClock | FilesystemClock | None = None,
    ) -> None:
        self.directory = Path(fabric_dir) / _LEASE_DIR
        self.worker_dir = Path(fabric_dir) / _WORKER_DIR
        self.worker_id = worker_id
        self.lease_ttl = float(lease_ttl)
        self.clock = clock if clock is not None else SystemClock()

    def path(self, index: int) -> Path:
        return self.directory / f"{index:06d}.json"

    def read(self, index: int) -> Lease | None:
        """The current lease on a cell, or None (missing or torn)."""
        path = self.path(index)
        payload = _read_json(path)
        try:
            anchor = path.stat().st_mtime
        except OSError:
            anchor = None
        if payload is None:
            if anchor is None:
                return None
            # Torn lease (killed mid-create): age it by file mtime so it
            # becomes stealable after one TTL.
            return Lease(
                index=index, worker="?", epoch=0, claimed_at=anchor,
                anchor=anchor,
            )
        try:
            return Lease(
                index=int(payload["index"]),
                worker=str(payload["worker"]),
                epoch=int(payload["epoch"]),
                claimed_at=float(payload["claimed_at"]),
                stolen_from=payload.get("stolen_from"),
                anchor=anchor,
            )
        except Exception:
            return Lease(
                index=index, worker="?", epoch=0, claimed_at=0.0, anchor=anchor
            )

    def _heartbeat_fresh(self, worker: str, now: float) -> bool:
        path = self.worker_dir / f"{worker}.json"
        return _heartbeat_payload_fresh(path, _read_json(path), now)

    def is_expired(self, lease: Lease, now: float | None = None) -> bool:
        """Stale owner heartbeat *and* claim older than one TTL.

        Ages are measured against the lease file's mtime (falling back
        to the recorded ``claimed_at`` only when the stat failed), in
        this board's clock base.
        """
        now = self.clock.now() if now is None else now
        if self._heartbeat_fresh(lease.worker, now):
            return False
        anchor = lease.anchor if lease.anchor is not None else lease.claimed_at
        return now - anchor >= self.lease_ttl

    def try_claim(self, index: int) -> tuple[bool, str | None]:
        """Attempt to own a cell.

        Returns ``(claimed, victim)``: ``victim`` is the previous owner
        when the claim was a steal of an expired lease.
        """
        path = self.path(index)
        lease = Lease(
            index=index, worker=self.worker_id, epoch=0,
            claimed_at=self.clock.now(),
        )
        self.directory.mkdir(parents=True, exist_ok=True)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            existing = self.read(index)
            if existing is not None and existing.worker == self.worker_id:
                # Idempotent re-claim: at-least-once delivery may replay
                # a claim this worker already won (the response was
                # lost, not the claim).  Same owner, same epoch.
                return True, None
            if existing is None or not self.is_expired(existing):
                return False, None
            lease.epoch = existing.epoch + 1
            lease.stolen_from = existing.worker
            _atomic_write_json(path, lease.to_json())
            return True, existing.worker
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            json.dump(lease.to_json(), handle)
            handle.flush()
        return True, None

    def stats(self) -> tuple[int, int]:
        """``(claims, steals)`` counted from the lease files on disk."""
        claims = steals = 0
        if not self.directory.is_dir():
            return 0, 0
        for path in self.directory.glob("*.json"):
            payload = _read_json(path)
            if payload is None:
                continue
            claims += 1
            steals += int(payload.get("epoch", 0))
        return claims, steals


# ----------------------------------------------------------------------
# Heartbeats.


class Heartbeat:
    """Periodic liveness record for one worker (daemon-thread renewal)."""

    def __init__(
        self,
        fabric_dir: Path,
        worker_id: str,
        lease_ttl: float,
        interval: float,
    ) -> None:
        self.path = Path(fabric_dir) / _WORKER_DIR / f"{worker_id}.json"
        self.worker_id = worker_id
        self.lease_ttl = float(lease_ttl)
        self.interval = float(interval)
        self.cells_done = 0
        self.beats = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def beat(self, left: bool = False) -> None:
        now = time.time()
        self.beats += 1
        # Readers judge freshness by this file's mtime + ttl, so the
        # writer's wall clock (and any skew in it) carries no weight;
        # deadline is kept for readers of the pre-ttl format.
        _atomic_write_json(
            self.path,
            {
                "kind": "heartbeat",
                "worker": self.worker_id,
                "pid": os.getpid(),
                "deadline": now if left else now + self.lease_ttl,
                "ttl": self.lease_ttl,
                "beats": self.beats,
                "cells_done": self.cells_done,
                "left": left,
            },
        )

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.beat()
            except OSError:  # pragma: no cover - transient fs failure
                pass

    def start(self) -> None:
        self.beat()
        self._thread = threading.Thread(
            target=self._run, name=f"fabric-heartbeat-{self.worker_id}", daemon=True
        )
        self._thread.start()

    def stop(self, left: bool = True) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.interval + 1.0)
            self._thread = None
        try:
            self.beat(left=left)
        except OSError:  # pragma: no cover - transient fs failure
            pass


# ----------------------------------------------------------------------
# Incremental, torn-write-tolerant scanner over the result journals.


class ResultsScanner:
    """Accumulates verified cells from every ``results/*.jsonl``.

    Tracks a byte offset per journal so repeated polling re-reads only
    appended data.  A final line without a newline is a write in
    progress and is left for the next scan; a complete line that fails
    parsing or its checksum is counted corrupt and skipped (the cell it
    described simply stays pending and is recomputed).
    """

    def __init__(self, fabric_dir: Path, n_items: int) -> None:
        self.directory = Path(fabric_dir) / _RESULT_DIR
        self.n_items = int(n_items)
        self.cells: dict[int, object] = {}
        self.failed: dict[int, str] = {}
        self.per_worker: dict[str, int] = {}
        self.events: list[dict] = []
        self.corrupt_lines = 0
        self._offsets: dict[Path, int] = {}

    @property
    def done(self) -> set[int]:
        """Indices that need no further work (completed or failed)."""
        return set(self.cells) | set(self.failed)

    def scan(self) -> dict[int, object]:
        if not self.directory.is_dir():
            return self.cells
        for path in sorted(self.directory.glob("*.jsonl")):
            self._scan_file(path)
        return self.cells

    def _scan_file(self, path: Path) -> None:
        offset = self._offsets.get(path, 0)
        try:
            with path.open("rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            return
        if not chunk:
            return
        # Only complete (newline-terminated) lines are parsed; the
        # remainder is an in-flight append and stays unconsumed.
        cut = chunk.rfind(b"\n")
        if cut < 0:
            return
        complete, self._offsets[path] = chunk[: cut + 1], offset + cut + 1
        worker = path.stem
        for raw in complete.splitlines():
            if not raw.strip():
                continue
            try:
                entry = json.loads(raw.decode("utf-8"))
                kind = entry.get("kind")
                if kind == "cell":
                    index, value = decode_cell_entry(entry, self.n_items)
                    self.cells[index] = value
                    self.failed.pop(index, None)
                    self.per_worker[worker] = self.per_worker.get(worker, 0) + 1
                elif kind == "failed":
                    index = int(entry["index"])
                    if not 0 <= index < self.n_items:
                        raise ValueError(f"index {index} out of range")
                    if index not in self.cells:
                        self.failed[index] = str(entry.get("error", "unknown"))
                elif kind == "event":
                    self.events.append(entry)
                # header / unknown kinds: ignored.
            except Exception:
                self.corrupt_lines += 1


# ----------------------------------------------------------------------
# Worker.

#: Armed by the coordinator immediately before forking local workers so
#: the children inherit sweep closures that stdlib pickle cannot ship
#: (the same idiom as ``executors._ACTIVE``).
_FABRIC_FN: Callable | None = None


class FabricWorker:
    """One lease-claiming worker, attached by directory or by TCP.

    Parameters
    ----------
    fabric_dir:
        The coordinator's shared state directory.  Optional when
        ``connect`` is given; providing *both* arms the degradation
        ladder (transport loss falls back to the shared directory
        instead of giving up).
    worker_id:
        Unique id (becomes the heartbeat/journal file names); defaults
        to ``<hostname>-<pid>``.
    fn:
        The cell function.  Defaults to the grid's ``fn_ref`` import;
        required (via fork inheritance) when the grid has none.
    cache_dir:
        Result-cache root; defaults to the grid header's ``cache_dir``.
    retry:
        Per-cell :class:`~repro.runtime.supervisor.RetryPolicy`; cells
        are run through :func:`supervised_map`, so retries and
        quarantine behave exactly as in single-host sweeps.  A cell
        failing permanently journals a ``failed`` record (superseded if
        another worker later succeeds).
    connect:
        ``host:port`` of a coordinator endpoint
        (``repro sweep-fabric --listen``).  The worker then claims
        cells and uploads results over TCP; every RPC retries with
        capped exponential backoff for up to ``max_retry_elapsed``
        seconds before the transport is declared down.
    transport_client:
        A pre-built :class:`~repro.runtime.transport.TransportClient`
        (tests route it through a chaos proxy); overrides ``connect``.
    """

    def __init__(
        self,
        fabric_dir: str | Path | None = None,
        worker_id: str | None = None,
        fn: Callable | None = None,
        cache_dir: str | Path | None = None,
        heartbeat_interval: float | None = None,
        poll_interval: float = 0.1,
        retry: RetryPolicy | None = None,
        connect: str | None = None,
        transport_client: TransportClient | None = None,
        max_retry_elapsed: float = 60.0,
    ) -> None:
        self.fabric_dir = Path(fabric_dir) if fabric_dir is not None else None
        self.worker_id = _safe_worker_id(worker_id or default_worker_id())
        self.transport_degraded = False
        self._fell_back = False
        self._client: TransportClient | None = None
        if transport_client is not None:
            self._client = transport_client
            self.worker_id = _safe_worker_id(transport_client.worker_id)
        elif connect is not None:
            self._client = TransportClient(
                connect,
                worker_id=self.worker_id,
                max_retry_elapsed=max_retry_elapsed,
            )
        if self._client is not None:
            hello = self._client.call("hello")
            if hello.get("version") != TRANSPORT_VERSION:
                raise FabricError(
                    f"endpoint {self._client.endpoint} speaks transport "
                    f"version {hello.get('version')!r}, not {TRANSPORT_VERSION}"
                )
            lines = self._client.call("grid").get("lines") or []
            self.header, self.items = _parse_grid_lines(
                lines, source=f"endpoint {self._client.endpoint}"
            )
        else:
            if self.fabric_dir is None:
                raise FabricError(
                    "a worker needs a fabric directory or a --connect endpoint"
                )
            self.header, self.items = load_grid(self.fabric_dir)
        if fn is None:
            ref = self.header.get("fn_ref")
            if not ref:
                raise FabricError(
                    "this grid has no importable cell function (the sweep "
                    "body is a closure); only coordinator-forked workers "
                    "can run it"
                )
            fn = resolve_function_ref(ref)
        self.fn = fn
        if cache_dir is None:
            cache_dir = self.header.get("cache_dir")
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.lease_ttl = float(self.header.get("lease_ttl", 30.0))
        self.heartbeat_interval = float(
            heartbeat_interval
            if heartbeat_interval is not None
            else self.header.get("heartbeat_interval", self.lease_ttl / 3.0)
        )
        if self.heartbeat_interval <= 0:
            raise FabricError(
                f"heartbeat interval must be positive, "
                f"got {self.heartbeat_interval}"
            )
        self.poll_interval = float(poll_interval)
        self.retry = retry if retry is not None else RetryPolicy()
        self.board: LeaseBoard | None = None
        self.scanner: ResultsScanner | None = None
        if self._client is not None:
            self.heartbeat: Heartbeat | NetHeartbeat = NetHeartbeat(
                self._client, self.heartbeat_interval
            )
        else:
            self._init_dir_state()
        self._journal = None
        self.cells_computed = 0
        self.steals = 0

    def _init_dir_state(self) -> None:
        """Boards/scanner/heartbeat for shared-directory operation."""
        clock = FilesystemClock(self.fabric_dir)
        self.board = LeaseBoard(
            self.fabric_dir, self.worker_id, self.lease_ttl, clock=clock
        )
        self.scanner = ResultsScanner(self.fabric_dir, len(self.items))
        self.heartbeat = Heartbeat(
            self.fabric_dir, self.worker_id, self.lease_ttl,
            self.heartbeat_interval,
        )

    # ------------------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.fabric_dir / _RESULT_DIR / f"{self.worker_id}.jsonl"

    def _journal_write(self, entry: dict) -> None:
        """Durably record one result.

        Directory mode appends to the worker's own journal, fsynced so
        a SIGKILL tears at most the line being written (which the
        scanner's checksum rejects).  Network mode uploads the same
        record over the transport (the endpoint appends it, fsynced,
        server-side); if the transport dies here the worker falls back
        to the shared directory *before* writing, so a computed value
        is never dropped on the floor.
        """
        if self._client is not None:
            try:
                self._client.call("upload", entry=entry)
                return
            except TransportDown:
                self._enter_dir_fallback()
        if self._journal is None:
            self.journal_path.parent.mkdir(parents=True, exist_ok=True)
            fresh = not self.journal_path.exists()
            self._journal = self.journal_path.open("a", encoding="utf-8")
            if fresh:
                self._journal_write(
                    {
                        "kind": "header",
                        "version": FABRIC_VERSION,
                        "sweep": self.header["sweep"],
                        "worker": self.worker_id,
                        "n_items": len(self.items),
                    }
                )
        self._journal.write(json.dumps(entry) + "\n")
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def close(self) -> None:
        if self._journal is not None:
            try:
                self._journal.close()
            finally:
                self._journal = None
        if self._client is not None:
            client, self._client = self._client, None
            client.close()

    # ------------------------------------------------------------------
    def _enter_dir_fallback(self) -> None:
        """Transport lost: degrade to shared-directory mode if possible.

        Raises :class:`FabricError` when no usable fabric directory is
        mounted -- the last rung of the ladder; the coordinator's own
        serial completion then covers the remaining cells.
        """
        client, self._client = self._client, None
        if client is not None:
            client.close()
        if isinstance(self.heartbeat, NetHeartbeat):
            self.heartbeat.stop(left=False)  # no farewell over a dead link
        self.transport_degraded = True
        self._fell_back = True
        if self.fabric_dir is None or not (self.fabric_dir / _GRID_FILE).is_file():
            raise FabricError(
                "transport to the coordinator is down and no shared fabric "
                "directory is mounted; abandoning (leases will lapse and "
                "the coordinator completes the remaining cells)"
            )
        header, _ = load_grid(self.fabric_dir)
        if header.get("sweep") != self.header.get("sweep"):
            raise FabricError(
                f"shared fabric directory {self.fabric_dir} holds a "
                f"different sweep; cannot fall back to it"
            )
        self._init_dir_state()

    # ------------------------------------------------------------------
    def _claim_next(self) -> tuple[int, str | None] | None:
        """The next cell this worker now owns, or None when nothing is
        claimable right now (all pending cells are validly leased)."""
        done = self.scanner.done
        n = len(self.items)
        if len(done) >= n:
            return None
        # Start each worker at a different point of the index space so
        # concurrent claims rarely collide on the same lease file.
        start = (
            int(hashlib.sha256(self.worker_id.encode()).hexdigest(), 16) % n
        )
        for step in range(n):
            index = (start + step) % n
            if index in done:
                continue
            claimed, victim = self.board.try_claim(index)
            if claimed:
                return index, victim
        return None

    def _run_cell(self, index: int) -> None:
        from repro.runtime.context import current_runtime

        label = f"fabric:{self.header['sweep'][:12]}[{index}]"
        try:
            values = supervised_map(
                self.fn, [self.items[index]], current_runtime(), label=label
            )
            value = values[0]
            context = current_runtime()
            if value is None and context.failure_reports:
                report = context.failure_reports[-1]
                raise RuntimeError(
                    f"cell quarantined after retries: "
                    f"{report.failures[-1].message if report.failures else '?'}"
                )
        except (KeyboardInterrupt, SystemExit):
            raise
        except BaseException as exc:
            self._journal_write(
                {
                    "kind": "failed",
                    "index": index,
                    "worker": self.worker_id,
                    "error": repr(exc)[:500],
                }
            )
            return
        entry = encode_cell_entry(index, value)
        if entry is None:
            self._journal_write(
                {
                    "kind": "failed",
                    "index": index,
                    "worker": self.worker_id,
                    "error": "result is not picklable",
                }
            )
            return
        entry["worker"] = self.worker_id
        self._journal_write(entry)
        self.cells_computed += 1
        self.heartbeat.cells_done = self.cells_computed

    # ------------------------------------------------------------------
    def run(self) -> int:
        """Claim-and-compute until the whole grid is complete.

        Returns the number of cells this worker computed.  Network
        workers that lose the transport walk the degradation ladder:
        reconnect with backoff (inside every RPC), then continue in
        shared-directory mode when a matching directory is mounted,
        else abandon with :class:`FabricError` (the coordinator's
        serial completion covers what is left).
        """
        if self._client is not None:
            self._run_net()
            if not self._fell_back:
                return self.cells_computed
            # The transport died and _enter_dir_fallback re-armed the
            # directory state; continue where the TCP phase stopped.
        return self._run_dir()

    def _run_net(self) -> None:
        """Claim over TCP until the grid completes or the link dies."""
        from repro.runtime.context import use_runtime

        self.heartbeat.start()
        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        clean = False
        try:
            with use_runtime(jobs=1, cache=cache, retry=self.retry):
                while self._client is not None:
                    try:
                        response = self._client.call("acquire")
                    except TransportDown:
                        self._enter_dir_fallback()
                        return
                    index = response.get("index")
                    if index is None:
                        if response.get("complete"):
                            clean = True
                            return
                        # Every pending cell is validly leased elsewhere;
                        # poll so this worker can steal from a straggler.
                        time.sleep(self.poll_interval)
                        continue
                    if response.get("victim") is not None:
                        self.steals += 1
                        self._journal_write(
                            {
                                "kind": "event",
                                "event": "steal",
                                "index": int(index),
                                "worker": self.worker_id,
                                "victim": response["victim"],
                            }
                        )
                    if self._client is None:
                        return  # the event upload above fell back
                    self._run_cell(int(index))
        finally:
            if self._client is not None:
                self.heartbeat.stop(left=clean)
                self.close()

    def _run_dir(self) -> int:
        """Claim against the shared directory until the grid completes."""
        from repro.runtime.context import use_runtime

        self.heartbeat.start()
        cache = ResultCache(self.cache_dir) if self.cache_dir else None
        try:
            with use_runtime(jobs=1, cache=cache, retry=self.retry):
                while True:
                    self.scanner.scan()
                    if len(self.scanner.done) >= len(self.items):
                        break
                    claim = self._claim_next()
                    if claim is None:
                        time.sleep(self.poll_interval)
                        continue
                    index, victim = claim
                    if victim is not None:
                        self.steals += 1
                        self._journal_write(
                            {
                                "kind": "event",
                                "event": "steal",
                                "index": index,
                                "worker": self.worker_id,
                                "victim": victim,
                            }
                        )
                    # The victim may have finished between our scan and
                    # the steal; re-scan so a completed cell is never
                    # recomputed.
                    self.scanner.scan()
                    if index in self.scanner.done:
                        continue
                    self._run_cell(index)
        finally:
            self.heartbeat.stop(left=True)
            self.close()
        return self.cells_computed


def _forked_worker_main(
    fabric_dir: str,
    worker_id: str,
    poll_interval: float,
    retry: RetryPolicy | None,
) -> None:
    """Entry point of a coordinator-forked worker process."""
    # Nested sweeps inside a cell must stay serial in here.
    _executors._IN_WORKER = True
    worker = FabricWorker(
        fabric_dir,
        worker_id=worker_id,
        fn=_FABRIC_FN,
        poll_interval=poll_interval,
        retry=retry,
    )
    worker.run()


# ----------------------------------------------------------------------
# Coordinator.


@dataclass
class FabricReport:
    """Structured outcome of one fabric run (the CLI's trailer lines)."""

    label: str
    n_items: int
    fabric_dir: Path
    sweep_id: str
    workers_spawned: int = 0
    resumed: int = 0
    computed: int = 0
    claims: int = 0
    steals: int = 0
    reclaims: int = 0
    corrupt_lines: int = 0
    degraded: bool = False
    warning: str | None = None
    per_worker: dict[str, int] = field(default_factory=dict)
    failed: dict[int, str] = field(default_factory=dict)
    wall_seconds: float = 0.0
    endpoint: str | None = None
    transport: dict | None = None

    def render(self) -> str:
        lines = [
            f"fabric: {self.n_items} cells ({self.resumed} resumed, "
            f"{self.computed} computed) in {self.wall_seconds:.1f}s; "
            f"{self.claims} leases, {self.steals} steals, "
            f"{self.reclaims} reclaims, {self.corrupt_lines} corrupt lines"
        ]
        if self.endpoint is not None:
            t = self.transport or {}
            lines.append(
                f"  endpoint {self.endpoint}: "
                f"{t.get('connections', 0)} connections, "
                f"{t.get('frames_in', 0)} frames in / "
                f"{t.get('frames_out', 0)} out, "
                f"{t.get('uploads', 0)} uploads "
                f"({t.get('uploads_deduped', 0)} deduped), "
                f"{t.get('client_reconnects', 0)} worker reconnects, "
                f"{t.get('client_retransmitted_frames', 0)} retransmits, "
                f"{t.get('client_partitions', 0)} partitions, "
                f"{t.get('client_backoff_seconds', 0.0):.1f}s backoff"
            )
        for worker in sorted(self.per_worker):
            count = self.per_worker[worker]
            rate = count / self.wall_seconds if self.wall_seconds > 0 else 0.0
            lines.append(
                f"  worker {worker}: {count} cells ({rate:.2f} cells/s)"
            )
        if self.degraded:
            lines.append(f"  WARNING: {self.warning or 'degraded run'}")
        for index in sorted(self.failed):
            lines.append(f"  cell {index} FAILED: {self.failed[index]}")
        return "\n".join(lines)


def _publish_fabric_telemetry(report: FabricReport) -> None:
    """Fold the fabric counters into the ambient telemetry aggregate."""
    from repro.runtime.context import current_runtime

    telemetry = current_runtime().telemetry
    if telemetry is None:
        return
    from repro.telemetry import RunTelemetry

    run = RunTelemetry()
    registry = run.registry
    registry.counter("fabric/cells-computed").inc(report.computed)
    registry.counter("fabric/cells-resumed").inc(report.resumed)
    registry.counter("fabric/lease-claims").inc(report.claims)
    registry.counter("fabric/lease-steals").inc(report.steals)
    registry.counter("fabric/lease-reclaims").inc(report.reclaims)
    registry.counter("fabric/corrupt-lines").inc(report.corrupt_lines)
    registry.counter("fabric/cells-failed").inc(len(report.failed))
    registry.gauge("fabric/workers").set(float(report.workers_spawned))
    registry.gauge("fabric/degraded").set(1.0 if report.degraded else 0.0)
    registry.gauge("fabric/wall-seconds").set(report.wall_seconds)
    if report.transport:
        t = report.transport
        for name, key in (
            ("fabric/transport-connections", "connections"),
            ("fabric/transport-frames-in", "frames_in"),
            ("fabric/transport-frames-out", "frames_out"),
            ("fabric/transport-frame-errors", "frame_errors"),
            ("fabric/transport-uploads", "uploads"),
            ("fabric/transport-uploads-deduped", "uploads_deduped"),
            ("fabric/transport-reconnects", "client_reconnects"),
            ("fabric/transport-retransmitted-frames",
             "client_retransmitted_frames"),
            ("fabric/transport-partitions", "client_partitions"),
        ):
            registry.counter(name).inc(int(t.get(key, 0)))
        registry.gauge("fabric/transport-backoff-seconds").set(
            float(t.get("client_backoff_seconds", 0.0))
        )
    for worker in sorted(report.per_worker):
        registry.counter(f"fabric/cells-by/{worker}").inc(
            report.per_worker[worker]
        )
    telemetry.add_run(f"fabric:{report.sweep_id[:12]}", run)


def _sweep_label(fn: Callable) -> str:
    module = getattr(fn, "__module__", "?")
    name = getattr(fn, "__qualname__", repr(fn))
    return f"{module}.{name}"


def run_fabric(
    fn: Callable,
    items: Sequence[object],
    config: FabricConfig | None = None,
    label: str | None = None,
    fn_ref: str | None = None,
    retry: RetryPolicy | None = None,
) -> tuple[list[object | None], FabricReport]:
    """Run one sweep through the distributed fabric.

    Returns ``(results, report)`` with ``results`` in item order --
    bit-identical to ``SerialExecutor().map(fn, items)`` for every cell
    that succeeds (permanently failed cells hold ``None`` and are
    listed in ``report.failed``).

    The fabric directory is derived from the sweep's fingerprint, so
    rerunning an interrupted coordinator resumes it: every verified
    journal line is loaded back and only the missing cells are
    dispatched.  ``fn_ref`` (``module:qualname``) is resolved
    automatically for importable functions; grids carrying one accept
    externally joined ``repro worker`` processes.
    """
    config = config if config is not None else FabricConfig()
    items = list(items)
    if not items:
        raise ValueError("fabric sweep needs at least one item")
    if label is None:
        label = _sweep_label(fn)
    try:
        sweep_id = sweep_fingerprint(label, items)
    except TypeError as exc:
        raise FabricError(
            f"sweep items are not fingerprintable ({exc}); the fabric "
            f"cannot identify the grid across processes"
        ) from exc
    if fn_ref is None:
        fn_ref = function_ref(fn)

    cache_dir = config.cache_dir
    if cache_dir is None:
        from repro.runtime.context import current_runtime

        active_cache = current_runtime().cache
        if active_cache is not None:
            cache_dir = active_cache.directory
    if config.fabric_dir is not None:
        fabric_dir = Path(config.fabric_dir)
    else:
        root = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        fabric_dir = root / "fabric" / sweep_id[:16]
    config = FabricConfig(
        workers=config.workers,
        lease_ttl=config.lease_ttl,
        heartbeat_interval=config.heartbeat_interval,
        poll_interval=config.poll_interval,
        fabric_dir=fabric_dir,
        cache_dir=cache_dir,
        listen=config.listen,
    )

    started = time.monotonic()
    report = FabricReport(
        label=label, n_items=len(items), fabric_dir=fabric_dir, sweep_id=sweep_id
    )

    grid_path = fabric_dir / _GRID_FILE
    if grid_path.is_file():
        header, _ = load_grid(fabric_dir)
        if header.get("sweep") != sweep_id:
            raise FabricError(
                f"{fabric_dir} holds a different sweep "
                f"({header.get('sweep', '?')[:12]} != {sweep_id[:12]}); "
                f"point --fabric-dir elsewhere or remove it"
            )
    else:
        write_grid(fabric_dir, sweep_id, label, items, fn_ref, config)

    scanner = ResultsScanner(fabric_dir, len(items))
    scanner.scan()
    report.resumed = len(scanner.done)

    board = LeaseBoard(fabric_dir, "coordinator", config.lease_ttl)
    endpoint = None
    if config.listen is not None and len(scanner.done) < len(items):
        host, port = parse_endpoint(config.listen, allow_port_zero=True)
        endpoint = FabricEndpoint(fabric_dir, host, port)
        try:
            bound_port = endpoint.start()
        except TransportError as exc:
            raise FabricError(str(exc)) from exc
        report.endpoint = format_endpoint(host, bound_port)
        print(
            f"fabric endpoint listening on {report.endpoint} "
            f"(join with: repro worker --connect {report.endpoint})",
            flush=True,
        )
    processes: list = []
    global _FABRIC_FN
    try:
        pending = len(items) - len(scanner.done)
        can_fork = "fork" in multiprocessing.get_all_start_methods()
        if pending and config.workers > 0 and can_fork:
            context = multiprocessing.get_context("fork")
            _FABRIC_FN = fn
            try:
                for slot in range(config.workers):
                    process = context.Process(
                        target=_forked_worker_main,
                        args=(
                            str(fabric_dir),
                            f"w{slot}",
                            config.poll_interval,
                            retry,
                        ),
                        name=f"fabric-worker-{slot}",
                    )
                    process.start()
                    processes.append(process)
            finally:
                _FABRIC_FN = None
            report.workers_spawned = len(processes)
        elif pending and config.workers > 0 and not can_fork:
            report.degraded = True
            report.warning = (
                "platform has no fork start method; completed serially "
                "in-process"
            )

        while pending:
            scanner.scan()
            pending = len(items) - len(scanner.done)
            if not pending:
                break
            local_alive = any(p.is_alive() for p in processes)
            external_alive = _any_external_heartbeat(fabric_dir, processes)
            if not local_alive and not external_alive:
                if (
                    report.degraded
                    or time.monotonic() - started >= config.lease_ttl
                    or (report.workers_spawned and processes)
                ):
                    _complete_serially(
                        fn, items, scanner, board, report, fabric_dir
                    )
                    break
            time.sleep(config.poll_interval)
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
        deadline = time.monotonic() + 10.0
        for process in processes:
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(timeout=5.0)
        if endpoint is not None:
            # Linger briefly once the grid is done so TCP workers can
            # observe completion on their next acquire and say goodbye,
            # instead of finding a dead socket and walking the full
            # retry/fallback ladder for nothing.
            scanner.scan()
            if len(scanner.done) >= len(items):
                endpoint.drain()
            endpoint.stop()

    scanner.scan()
    results: list[object | None] = [scanner.cells.get(i) for i in range(len(items))]
    report.failed = {
        i: scanner.failed[i] for i in range(len(items)) if i in scanner.failed
    }
    report.computed = len(scanner.done) - report.resumed
    report.corrupt_lines = scanner.corrupt_lines
    report.per_worker = dict(scanner.per_worker)
    report.claims, report.steals = board.stats()
    report.steals -= report.reclaims  # coordinator takeovers counted apart
    if report.steals < 0:  # pragma: no cover - defensive
        report.steals = 0
    report.wall_seconds = time.monotonic() - started
    if endpoint is not None:
        report.transport = _collect_transport_stats(endpoint, fabric_dir)

    missing = [i for i in range(len(items)) if results[i] is None and i not in report.failed]
    if missing:
        raise FabricError(
            f"fabric run lost cells {missing[:8]}{'...' if len(missing) > 8 else ''}: "
            f"{len(scanner.done)}/{len(items)} complete"
        )
    _publish_fabric_telemetry(report)
    return results, report


def _collect_transport_stats(
    endpoint: FabricEndpoint, fabric_dir: Path
) -> dict:
    """Endpoint counters plus the worker-side counters each client
    shipped in its heartbeats (prefixed ``client_``)."""
    transport = endpoint.stats.to_json()
    totals = {
        "reconnects": 0,
        "retransmitted_frames": 0,
        "backoff_seconds": 0.0,
        "partitions": 0,
        "frame_errors": 0,
    }
    worker_dir = fabric_dir / _WORKER_DIR
    if worker_dir.is_dir():
        for path in worker_dir.glob("*.json"):
            payload = _read_json(path)
            client = (payload or {}).get("transport")
            if not isinstance(client, dict):
                continue
            for key, zero in totals.items():
                try:
                    totals[key] = totals[key] + type(zero)(client.get(key, 0))
                except (TypeError, ValueError):
                    pass
    transport.update({f"client_{key}": value for key, value in totals.items()})
    return transport


def _any_external_heartbeat(fabric_dir: Path, processes: list) -> bool:
    """A live worker we did not fork (an externally joined process)?"""
    worker_dir = fabric_dir / _WORKER_DIR
    if not worker_dir.is_dir():
        return False
    local = {f"fabric-worker-{i}" for i in range(len(processes))}
    now = time.time()
    for path in worker_dir.glob("*.json"):
        payload = _read_json(path)
        if payload is None or payload.get("left"):
            continue
        # Local workers are covered by is_alive(); treat a fresh
        # heartbeat from a dead local worker as stale once its process
        # object is gone.
        if any(
            p.name in local and p.is_alive() and p.pid == payload.get("pid")
            for p in processes
        ):
            continue
        if payload.get("pid") is not None and any(
            p.pid == payload.get("pid") for p in processes
        ):
            continue  # one of ours, already known dead
        if _heartbeat_payload_fresh(path, payload, now):
            return True
    return False


def _complete_serially(
    fn: Callable,
    items: list,
    scanner: ResultsScanner,
    board: LeaseBoard,
    report: FabricReport,
    fabric_dir: Path,
) -> None:
    """Degraded mode: every worker is dead, finish in-process.

    Pending cells run serially in the coordinator, journaled to
    ``results/coordinator.jsonl`` under reclaimed leases, so a later
    rerun (or late-joining worker) still sees a consistent journal.
    """
    report.degraded = True
    if report.warning is None:
        report.warning = (
            f"no live workers; coordinator completed "
            f"{len(items) - len(scanner.done)} pending cells serially "
            f"in-process"
        )
    worker = FabricWorker(
        fabric_dir,
        worker_id="coordinator",
        fn=fn,
        cache_dir=None,  # the coordinator's ambient cache context applies
        poll_interval=0.05,
    )
    # Reuse the coordinator's scanners/boards state where it matters:
    # the worker re-reads journals itself, so nothing is recomputed.
    try:
        for index in range(len(items)):
            worker.scanner.scan()
            if index in worker.scanner.done:
                continue
            claimed, victim = worker.board.try_claim(index)
            if victim is not None:
                report.reclaims += 1
            if not claimed:
                # Valid lease held by a worker that died without a
                # heartbeat lapse yet; take it anyway -- there is no
                # live owner, that is why we are here.
                lease = worker.board.read(index)
                worker.board.try_claim(index)
                if lease is not None:
                    report.reclaims += 1
            worker._run_cell(index)
    finally:
        worker.heartbeat.stop(left=True)
        worker.close()
