"""Append-only checkpoint journal for resumable sweeps.

Every supervised sweep writes one JSONL file next to the result cache
(``<cache_dir>/journal/<sweep_id>.jsonl``): one line per completed cell
carrying the cell's index, its item fingerprint, and the pickled result
guarded by a SHA-256 checksum.  A re-run with ``--resume`` loads the
journal, verifies every line, and hands the already-completed cells
back to :func:`repro.runtime.supervisor.supervised_map` so only the
missing cells are recomputed.

Failure policy mirrors the result cache: a torn or bit-rotted line
(a SIGINT can land mid-``write``) is *skipped and counted*, never
raised -- the cell it described is simply recomputed.  The journal file
is identified by :func:`sweep_fingerprint`, which covers the sweep
label, every item, and the simulation code salt, so a changed sweep
shape or edited simulator code can never resume stale cells.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.runtime.fingerprint import code_salt, stable_fingerprint

__all__ = ["JOURNAL_VERSION", "JournalStats", "SweepJournal", "sweep_fingerprint"]

#: Bump to orphan every existing journal file (format changes).
JOURNAL_VERSION = 1


def sweep_fingerprint(label: str, items: list) -> str:
    """Identity of one sweep: label + every item + simulation code salt.

    Raises ``TypeError`` (propagated from ``stable_fingerprint``) when an
    item is not fingerprintable; callers treat that as "this sweep
    cannot be journaled" rather than an error.
    """
    return stable_fingerprint(
        (JOURNAL_VERSION, code_salt(), label, [stable_fingerprint(i) for i in items])
    )


@dataclass
class JournalStats:
    """Per-context journal counters (the CLI's ``journal:`` line)."""

    resumed: int = 0
    recorded: int = 0
    corrupt: int = 0

    def render(self) -> str:
        return (
            f"journal: {self.resumed} resumed, {self.recorded} recorded, "
            f"{self.corrupt} corrupt"
        )


class SweepJournal:
    """One sweep's append-only completion log.

    Parameters
    ----------
    directory:
        Journal root (created lazily on first record).
    sweep_id:
        Output of :func:`sweep_fingerprint` for this sweep.
    n_items:
        Sweep size; used to reject out-of-range indices on load.
    resume:
        When True the existing file is kept and appended to; when False
        a fresh run truncates it (its cells are being recomputed).
    """

    def __init__(
        self,
        directory: str | Path,
        sweep_id: str,
        n_items: int,
        resume: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.sweep_id = sweep_id
        self.path = self.directory / f"{sweep_id}.jsonl"
        self.n_items = int(n_items)
        self.resume = resume
        self.corrupt_lines = 0
        self._handle: IO[str] | None = None

    # ------------------------------------------------------------------
    def load(self) -> dict[int, object]:
        """Verified completed cells (``index -> result``) from disk.

        Lines that fail JSON parsing, checksum verification, index
        bounds, or unpickling are counted in ``corrupt_lines`` and
        skipped.  Later lines win on duplicate indices (a re-run may
        have re-recorded a cell).
        """
        results: dict[int, object] = {}
        if not self.path.is_file():
            return results
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            self.corrupt_lines += 1
            return results
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                if entry.get("kind") != "cell":
                    continue  # header / future record kinds
                index = int(entry["index"])
                if not 0 <= index < self.n_items:
                    raise ValueError(f"index {index} out of range")
                data = base64.b64decode(entry["data"], validate=True)
                if hashlib.sha256(data).hexdigest() != entry["sha"]:
                    raise ValueError("checksum mismatch")
                results[index] = pickle.loads(data)
            except Exception:
                self.corrupt_lines += 1
        return results

    # ------------------------------------------------------------------
    def _open(self) -> IO[str]:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            fresh = not (self.resume and self.path.exists())
            self._handle = self.path.open("a" if not fresh else "w", encoding="utf-8")
            if fresh:
                header = {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "sweep": self.sweep_id,
                    "n_items": self.n_items,
                }
                self._handle.write(json.dumps(header) + "\n")
                self._handle.flush()
        return self._handle

    def record(self, index: int, value: object) -> None:
        """Append one completed cell; flushed line-by-line so a crash
        loses at most the cell being written."""
        try:
            data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return  # unpicklable result: cell simply is not resumable
        entry = {
            "kind": "cell",
            "index": int(index),
            "sha": hashlib.sha256(data).hexdigest(),
            "data": base64.b64encode(data).decode("ascii"),
        }
        handle = self._open()
        handle.write(json.dumps(entry) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                self._handle.close()
            finally:
                self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepJournal({str(self.path)!r}, n_items={self.n_items})"
