"""Append-only checkpoint journal for resumable sweeps.

Every supervised sweep writes one JSONL file next to the result cache
(``<cache_dir>/journal/<sweep_id>.jsonl``): one line per completed cell
carrying the cell's index, its item fingerprint, and the pickled result
guarded by a SHA-256 checksum.  A re-run with ``--resume`` loads the
journal, verifies every line, and hands the already-completed cells
back to :func:`repro.runtime.supervisor.supervised_map` so only the
missing cells are recomputed.

Failure policy mirrors the result cache: a torn or bit-rotted line
(a SIGINT can land mid-``write``) is *skipped and counted*, never
raised -- the cell it described is simply recomputed.  The journal file
is identified by :func:`sweep_fingerprint`, which covers the sweep
label, every item, and the simulation code salt, so a changed sweep
shape or edited simulator code can never resume stale cells.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import IO

from repro.runtime.fingerprint import code_salt, stable_fingerprint

__all__ = [
    "JOURNAL_VERSION",
    "JournalStats",
    "SweepJournal",
    "sweep_fingerprint",
    "encode_cell_entry",
    "decode_cell_entry",
    "CompactionStats",
    "compact_journal",
]

#: Bump to orphan every existing journal file (format changes).
JOURNAL_VERSION = 1


def encode_cell_entry(index: int, value: object) -> dict | None:
    """One completed cell as a checksummed JSONL-ready record.

    Returns None when ``value`` cannot be pickled (the cell simply is
    not resumable).  The format is shared between :class:`SweepJournal`
    and the fabric's per-worker result journals
    (:mod:`repro.runtime.fabric`), so either side can load the other's
    records.
    """
    try:
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return None
    return {
        "kind": "cell",
        "index": int(index),
        "sha": hashlib.sha256(data).hexdigest(),
        "data": base64.b64encode(data).decode("ascii"),
    }


def decode_cell_entry(entry: dict, n_items: int) -> tuple[int, object]:
    """Verify and unpickle one ``kind == "cell"`` record.

    Raises on any corruption (bad index, checksum mismatch, unpicklable
    payload); callers count-and-skip, mirroring the cache's
    corruption-is-a-miss policy.
    """
    index = int(entry["index"])
    if not 0 <= index < n_items:
        raise ValueError(f"index {index} out of range")
    data = base64.b64decode(entry["data"], validate=True)
    if hashlib.sha256(data).hexdigest() != entry["sha"]:
        raise ValueError("checksum mismatch")
    return index, pickle.loads(data)


def sweep_fingerprint(label: str, items: list) -> str:
    """Identity of one sweep: label + every item + simulation code salt.

    Raises ``TypeError`` (propagated from ``stable_fingerprint``) when an
    item is not fingerprintable; callers treat that as "this sweep
    cannot be journaled" rather than an error.
    """
    return stable_fingerprint(
        (JOURNAL_VERSION, code_salt(), label, [stable_fingerprint(i) for i in items])
    )


@dataclass
class JournalStats:
    """Per-context journal counters (the CLI's ``journal:`` line)."""

    resumed: int = 0
    recorded: int = 0
    corrupt: int = 0

    def render(self) -> str:
        return (
            f"journal: {self.resumed} resumed, {self.recorded} recorded, "
            f"{self.corrupt} corrupt"
        )


class SweepJournal:
    """One sweep's append-only completion log.

    Parameters
    ----------
    directory:
        Journal root (created lazily on first record).
    sweep_id:
        Output of :func:`sweep_fingerprint` for this sweep.
    n_items:
        Sweep size; used to reject out-of-range indices on load.
    resume:
        When True the existing file is kept and appended to; when False
        a fresh run truncates it (its cells are being recomputed).
    """

    def __init__(
        self,
        directory: str | Path,
        sweep_id: str,
        n_items: int,
        resume: bool = False,
    ) -> None:
        self.directory = Path(directory)
        self.sweep_id = sweep_id
        self.path = self.directory / f"{sweep_id}.jsonl"
        self.n_items = int(n_items)
        self.resume = resume
        self.corrupt_lines = 0
        self._handle: IO[str] | None = None

    # ------------------------------------------------------------------
    def load(self) -> dict[int, object]:
        """Verified completed cells (``index -> result``) from disk.

        Lines that fail JSON parsing, checksum verification, index
        bounds, or unpickling are counted in ``corrupt_lines`` and
        skipped.  Later lines win on duplicate indices (a re-run may
        have re-recorded a cell).
        """
        results: dict[int, object] = {}
        if not self.path.is_file():
            return results
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            self.corrupt_lines += 1
            return results
        for line in lines:
            if not line.strip():
                continue
            try:
                entry = json.loads(line)
                if entry.get("kind") != "cell":
                    continue  # header / event / future record kinds
                index, value = decode_cell_entry(entry, self.n_items)
                results[index] = value
            except Exception:
                self.corrupt_lines += 1
        return results

    # ------------------------------------------------------------------
    def _open(self) -> IO[str]:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            fresh = not (self.resume and self.path.exists())
            self._handle = self.path.open("a" if not fresh else "w", encoding="utf-8")
            if fresh:
                header = {
                    "kind": "header",
                    "version": JOURNAL_VERSION,
                    "sweep": self.sweep_id,
                    "n_items": self.n_items,
                }
                self._handle.write(json.dumps(header) + "\n")
                self._handle.flush()
        return self._handle

    def record(self, index: int, value: object) -> None:
        """Append one completed cell; flushed line-by-line so a crash
        loses at most the cell being written."""
        entry = encode_cell_entry(index, value)
        if entry is None:
            return  # unpicklable result: cell simply is not resumable
        handle = self._open()
        handle.write(json.dumps(entry) + "\n")
        handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                self._handle.close()
            finally:
                self._handle = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SweepJournal({str(self.path)!r}, n_items={self.n_items})"


# ----------------------------------------------------------------------
@dataclass
class CompactionStats:
    """Outcome of one :func:`compact_journal` pass."""

    path: Path
    lines_before: int = 0
    lines_after: int = 0
    bytes_before: int = 0
    bytes_after: int = 0
    dropped_superseded: int = 0
    dropped_events: int = 0
    dropped_corrupt: int = 0

    @property
    def bytes_reclaimed(self) -> int:
        return max(0, self.bytes_before - self.bytes_after)

    def render(self) -> str:
        return (
            f"{self.path.name}: {self.lines_before} -> {self.lines_after} lines "
            f"({self.dropped_superseded} superseded, {self.dropped_events} "
            f"events, {self.dropped_corrupt} corrupt); "
            f"reclaimed {self.bytes_reclaimed} bytes"
        )


def compact_journal(path: str | Path) -> CompactionStats:
    """Rewrite one journal keeping only the last record per cell.

    Retried cells, fabric steals and coordinator restarts all append
    fresh records for indices that already have one, and fabric worker
    journals additionally carry ``event`` lines (claims, steals, lease
    reclaims) that matter only while the run is live.  Compaction keeps:

    * the first ``header`` line, verbatim;
    * the *last* ``cell`` line per index (later lines win on load, so
      dropping earlier duplicates cannot change a resume);
    * the last ``failed`` line per index, only for indices with no
      ``cell`` record (a later success supersedes the failure).

    Everything else -- event/lease/retry lines, unparsable or torn
    lines -- is dropped and counted.  The rewrite is atomic (temp file
    + ``os.replace``); an untouched journal (nothing to drop) is left
    in place byte-for-byte.  Compacting a journal while its sweep is
    still running can drop the in-flight line, so the CLI surfaces this
    as a maintenance verb (``repro cache prune --compact-journals``),
    not something a live run does to itself.
    """
    path = Path(path)
    raw = path.read_bytes()
    text = raw.decode("utf-8", errors="replace")
    lines = text.splitlines()
    stats = CompactionStats(
        path=path, lines_before=len(lines), bytes_before=len(raw)
    )

    header: str | None = None
    cells: dict[int, str] = {}
    failed: dict[int, str] = {}
    order: list[int] = []  # first-seen index order, for a stable output
    seen: set[int] = set()
    for line in lines:
        if not line.strip():
            stats.dropped_corrupt += 1
            continue
        try:
            entry = json.loads(line)
            kind = entry.get("kind")
            if kind == "header":
                if header is None:
                    header = line
                else:
                    stats.dropped_superseded += 1
                continue
            if kind in ("cell", "failed"):
                index = int(entry["index"])
                table = cells if kind == "cell" else failed
                if index in table:
                    stats.dropped_superseded += 1
                if index not in seen:
                    seen.add(index)
                    order.append(index)
                table[index] = line
                continue
            # event / lease / retry / unknown structured kinds.
            stats.dropped_events += 1
        except Exception:
            stats.dropped_corrupt += 1

    kept: list[str] = [] if header is None else [header]
    for index in order:
        if index in cells:
            kept.append(cells[index])
            if index in failed:
                stats.dropped_superseded += 1
        else:
            kept.append(failed[index])
    stats.lines_after = len(kept)

    if (
        stats.lines_after == stats.lines_before
        and stats.dropped_corrupt == 0
    ):
        stats.bytes_after = stats.bytes_before
        return stats

    payload = "".join(line + "\n" for line in kept)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    stats.bytes_after = len(payload.encode("utf-8"))
    return stats
