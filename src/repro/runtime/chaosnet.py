"""In-process chaos proxy for the fabric's TCP transport.

A :class:`ChaosProxy` sits between a
:class:`~repro.runtime.transport.TransportClient` and a
:class:`~repro.runtime.transport.FabricEndpoint` and injects network
faults *at frame granularity*: it parses the transport's own
length-prefixed framing on both directions, so a "drop" loses exactly
one RPC request or response, a "reset" tears a connection mid-frame
(half the bytes, then an abortive close), and a "duplicate" delivers
one frame twice -- the precise failure modes the transport's
at-least-once retransmission, frame checksums and request-id
correlation claim to survive.

Faults are declared up front in a :class:`NetFaultPlan` -- the same
frozen-dataclass, validated, ``describe()``-able style as
:class:`repro.faults.FaultPlan` -- and drawn from per-connection
deterministic RNGs, so a failing CI run replays exactly.

The proxy is plain threads and blocking sockets (the client side is
synchronous anyway); it is a test/CI instrument, not a production
relay.

Typical use::

    endpoint = FabricEndpoint(fabric_dir)          # the real server
    port = endpoint.start()
    proxy = ChaosProxy(
        "127.0.0.1", port,
        plan=NetFaultPlan(
            drop_probability=0.05,
            duplicate_probability=0.05,
            partitions=(PartitionWindow(start=2.0, duration=1.0),),
            seed=7,
        ),
    )
    chaos_port = proxy.start()
    client = TransportClient(("127.0.0.1", chaos_port), "w0")
"""

from __future__ import annotations

import random
import socket
import struct
import threading
import time
from dataclasses import dataclass, field

from repro.runtime.transport import MAX_FRAME_BYTES, FrameError

__all__ = [
    "NetFaultPlan",
    "PartitionWindow",
    "ChaosStats",
    "ChaosProxy",
]

_LEN = struct.Struct(">I")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class PartitionWindow:
    """One full network partition: ``[start, start + duration)`` seconds
    after the proxy starts, every connection is severed and new ones
    are refused."""

    start: float
    duration: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ValueError(f"partition start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ValueError(
                f"partition duration must be positive, got {self.duration}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    def contains(self, elapsed: float) -> bool:
        return self.start <= elapsed < self.end


@dataclass(frozen=True)
class NetFaultPlan:
    """Declarative description of the network faults to inject.

    Parameters
    ----------
    latency:
        Fixed forwarding delay per frame, seconds.
    jitter:
        Extra uniform ``[0, jitter)`` delay per frame.
    drop_probability:
        Chance a frame is silently discarded (the receiver sees
        nothing; the sender's RPC times out and retransmits).
    duplicate_probability:
        Chance a forwarded frame is delivered twice.
    reset_probability:
        Chance a frame is torn: roughly half its bytes are forwarded,
        then the connection is abortively closed in both directions.
    partitions:
        Non-overlapping :class:`PartitionWindow` instances (relative to
        proxy start) during which the link is fully severed.
    seed:
        Root of the per-connection deterministic RNGs.
    """

    latency: float = 0.0
    jitter: float = 0.0
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    reset_probability: float = 0.0
    partitions: tuple[PartitionWindow, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.jitter < 0:
            raise ValueError(f"jitter must be >= 0, got {self.jitter}")
        _check_probability("drop_probability", self.drop_probability)
        _check_probability("duplicate_probability", self.duplicate_probability)
        _check_probability("reset_probability", self.reset_probability)
        if self.drop_probability + self.reset_probability > 1.0:
            raise ValueError(
                "drop_probability + reset_probability must not exceed 1"
            )
        ordered = sorted(self.partitions, key=lambda w: w.start)
        for before, after in zip(ordered, ordered[1:]):
            if after.start < before.end:
                raise ValueError(
                    f"partition windows overlap: "
                    f"[{before.start}, {before.end}) and "
                    f"[{after.start}, {after.end})"
                )
        object.__setattr__(self, "partitions", tuple(ordered))

    @property
    def is_noop(self) -> bool:
        return (
            self.latency == 0.0
            and self.jitter == 0.0
            and self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.reset_probability == 0.0
            and not self.partitions
        )

    def describe(self) -> str:
        if self.is_noop:
            return "no network faults"
        parts = []
        if self.latency or self.jitter:
            parts.append(f"latency {self.latency:g}s+U[0,{self.jitter:g})")
        if self.drop_probability:
            parts.append(f"drop {self.drop_probability:.0%}")
        if self.duplicate_probability:
            parts.append(f"duplicate {self.duplicate_probability:.0%}")
        if self.reset_probability:
            parts.append(f"mid-frame reset {self.reset_probability:.0%}")
        for window in self.partitions:
            parts.append(
                f"partition [{window.start:g}s, {window.end:g}s)"
            )
        return ", ".join(parts)


@dataclass
class ChaosStats:
    """What the proxy actually did (all counters are per proxy)."""

    connections: int = 0
    refused: int = 0
    frames_forwarded: int = 0
    frames_dropped: int = 0
    frames_duplicated: int = 0
    resets: int = 0
    partitions_enforced: int = 0
    connections_severed: int = 0
    bytes_forwarded: int = 0
    delay_seconds: float = 0.0


@dataclass
class _Link:
    """One proxied connection pair (downstream client, upstream server)."""

    down: socket.socket
    up: socket.socket
    lock: threading.Lock = field(default_factory=threading.Lock)
    dead: bool = False

    def abort(self) -> None:
        """Abortive close of both sides (RST where the stack allows)."""
        with self.lock:
            if self.dead:
                return
            self.dead = True
            for sock in (self.down, self.up):
                try:
                    sock.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                except OSError:
                    pass
                try:
                    sock.close()
                except OSError:
                    pass


class ChaosProxy:
    """Frame-aware TCP fault injector between one client and one server.

    ``start()`` binds (ephemeral port by default), launches the accept
    loop and the partition watchdog on daemon threads, and returns the
    port to point clients at.  Faults apply independently per frame and
    per direction; the RNG for connection ``n``'s direction ``d`` is
    seeded with ``(plan.seed, n, d)`` so runs replay deterministically
    regardless of thread scheduling.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: NetFaultPlan | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.upstream = (upstream_host, int(upstream_port))
        self.plan = plan if plan is not None else NetFaultPlan()
        self.host = host
        self.requested_port = int(port)
        self.port: int | None = None
        self.stats = ChaosStats()
        self.started_at: float | None = None
        self._listener: socket.socket | None = None
        self._links: list[_Link] = []
        self._links_lock = threading.Lock()
        self._stopping = threading.Event()
        self._threads: list[threading.Thread] = []

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return 0.0 if self.started_at is None else time.monotonic() - self.started_at

    def in_partition(self, elapsed: float | None = None) -> bool:
        at = self.elapsed() if elapsed is None else elapsed
        return any(w.contains(at) for w in self.plan.partitions)

    # ------------------------------------------------------------------
    def start(self) -> int:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.requested_port))
        listener.listen(32)
        listener.settimeout(0.2)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self.started_at = time.monotonic()
        self._spawn(self._accept_loop, "chaosnet-accept")
        if self.plan.partitions:
            self._spawn(self._partition_watchdog, "chaosnet-partition")
        return self.port

    def stop(self) -> None:
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        self._sever_all(count=False)
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads.clear()

    def _spawn(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        conn_index = 0
        while not self._stopping.is_set():
            try:
                down, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            if self.in_partition():
                # The network is partitioned: accept and immediately
                # sever, so the client sees a dead link, not a server.
                self.stats.refused += 1
                try:
                    down.close()
                except OSError:
                    pass
                continue
            try:
                up = socket.create_connection(self.upstream, timeout=5.0)
            except OSError:
                self.stats.refused += 1
                try:
                    down.close()
                except OSError:
                    pass
                continue
            self.stats.connections += 1
            link = _Link(down=down, up=up)
            with self._links_lock:
                self._links.append(link)
            for src, dst, direction in (
                (down, up, 0),  # client -> server
                (up, down, 1),  # server -> client
            ):
                rng = random.Random(
                    f"{self.plan.seed}:{conn_index}:{direction}"
                )
                self._spawn(
                    lambda s=src, d=dst, r=rng, li=link: self._pump(s, d, r, li),
                    f"chaosnet-pump-{conn_index}-{direction}",
                )
            conn_index += 1

    def _partition_watchdog(self) -> None:
        for window in self.plan.partitions:
            while not self._stopping.wait(0.01):
                if self.elapsed() >= window.start:
                    break
            if self._stopping.is_set():
                return
            self.stats.partitions_enforced += 1
            self._sever_all(count=True)
            while not self._stopping.wait(0.01):
                if self.elapsed() >= window.end:
                    break
            if self._stopping.is_set():
                return

    def _sever_all(self, count: bool) -> None:
        with self._links_lock:
            links, self._links = self._links, []
        for link in links:
            if count and not link.dead:
                self.stats.connections_severed += 1
            link.abort()

    # ------------------------------------------------------------------
    def _recv_exact(self, sock: socket.socket, n: int) -> bytes | None:
        chunks = bytearray()
        while len(chunks) < n:
            try:
                chunk = sock.recv(n - len(chunks))
            except OSError:
                return None
            if not chunk:
                return None
            chunks += chunk
        return bytes(chunks)

    def _pump(
        self,
        src: socket.socket,
        dst: socket.socket,
        rng: random.Random,
        link: _Link,
    ) -> None:
        plan = self.plan
        while not self._stopping.is_set() and not link.dead:
            header = self._recv_exact(src, _LEN.size)
            if header is None:
                break
            (length,) = _LEN.unpack(header)
            if length > MAX_FRAME_BYTES:
                raise FrameError(
                    f"proxied frame of {length} bytes exceeds the transport "
                    f"maximum; not a transport stream?"
                )
            body = self._recv_exact(src, length)
            if body is None:
                break
            frame = header + body
            if self.in_partition():
                break  # watchdog is severing; don't leak a last frame
            delay = plan.latency + (
                rng.uniform(0.0, plan.jitter) if plan.jitter else 0.0
            )
            if delay > 0:
                self.stats.delay_seconds += delay
                if self._stopping.wait(delay):
                    break
            roll = rng.random()
            if roll < plan.drop_probability:
                self.stats.frames_dropped += 1
                continue
            if roll < plan.drop_probability + plan.reset_probability:
                # Mid-frame reset: half the frame, then an abortive
                # close of the whole link.
                try:
                    dst.sendall(frame[: max(1, len(frame) // 2)])
                except OSError:
                    pass
                self.stats.resets += 1
                break
            try:
                dst.sendall(frame)
                self.stats.frames_forwarded += 1
                self.stats.bytes_forwarded += len(frame)
                if rng.random() < plan.duplicate_probability:
                    dst.sendall(frame)
                    self.stats.frames_duplicated += 1
            except OSError:
                break
        link.abort()
