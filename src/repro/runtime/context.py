"""The ambient runtime context: which executor and cache are active.

Experiment drivers never name an executor or a cache; they call
:func:`repro.analysis.sweep.sweep` and :func:`run_simulation`, which
consult the innermost :func:`use_runtime` context.  The default context
is the legacy behaviour exactly: serial execution, no cache.

::

    with use_runtime(jobs=8, cache_dir="~/.cache/repro/results") as ctx:
        mse, latency = figure2()          # 30 cells fan out over 8 workers
    print(ctx.cache.stats.render())       # cache: 30 hits, 0 misses, ...
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.runtime.cache import ResultCache
from repro.runtime.executors import Executor, ParallelExecutor, SerialExecutor
from repro.runtime.journal import JournalStats
from repro.runtime.supervisor import FailureReport, RetryPolicy
from repro.telemetry import TelemetryAggregate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.config import SimulationConfig
    from repro.sim.results import SimulationResult

__all__ = [
    "RuntimeStats",
    "RuntimeContext",
    "current_runtime",
    "use_runtime",
    "run_simulation",
]


@dataclass
class RuntimeStats:
    """Counters for one context (worker deltas fold in here too)."""

    simulations: int = 0
    """Actual simulator invocations (cache hits do not count)."""

    sim_seconds: float = 0.0
    """Wall-clock seconds spent inside the simulator (cache hits do
    not count; for retried items, only the successful attempt)."""

    def snapshot(self) -> "RuntimeStats":
        """A frozen copy, for before/after delta computation."""
        return RuntimeStats(self.simulations, self.sim_seconds)

    def delta_since(self, before: "RuntimeStats") -> "RuntimeStats":
        """What accrued since ``before`` (a worker's contribution)."""
        return RuntimeStats(
            self.simulations - before.simulations,
            self.sim_seconds - before.sim_seconds,
        )

    def merge(self, delta: "RuntimeStats") -> None:
        """Fold a worker's delta into this (parent) counter set."""
        self.simulations += delta.simulations
        self.sim_seconds += delta.sim_seconds


@dataclass
class RuntimeContext:
    """One executor/cache pairing, active within a ``use_runtime`` block."""

    executor: Executor = field(default_factory=SerialExecutor)
    cache: ResultCache | None = None
    stats: RuntimeStats = field(default_factory=RuntimeStats)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    journal_dir: Path | None = None
    """Checkpoint-journal root; None disables journaling entirely."""
    resume: bool = False
    """Load completed cells from the journal instead of recomputing."""
    journal_stats: JournalStats = field(default_factory=JournalStats)
    failure_reports: list[FailureReport] = field(default_factory=list)
    """One report per sweep that quarantined cells or degraded."""
    telemetry: TelemetryAggregate | None = None
    """Run telemetry collector; None (the default) disables
    instrumentation entirely -- simulations take the legacy code paths
    with a single flag check."""


_DEFAULT = RuntimeContext()
_STACK: list[RuntimeContext] = []


def current_runtime() -> RuntimeContext:
    """The innermost active context (or the serial, cacheless default)."""
    return _STACK[-1] if _STACK else _DEFAULT


@contextmanager
def use_runtime(
    jobs: int = 1,
    cache: ResultCache | None = None,
    cache_dir: str | Path | None = None,
    chunk_size: int | None = None,
    retry: RetryPolicy | None = None,
    journal_dir: str | Path | None = None,
    resume: bool = False,
    telemetry: bool = False,
) -> Iterator[RuntimeContext]:
    """Activate an executor/cache pairing for the enclosed experiments.

    Parameters
    ----------
    jobs:
        Worker processes; 1 keeps the exact serial loop.
    cache:
        A ready :class:`ResultCache`, or None.
    cache_dir:
        Convenience: build a :class:`ResultCache` rooted here (ignored
        when ``cache`` is given).
    chunk_size:
        Forwarded to :class:`ParallelExecutor`.
    retry:
        A :class:`~repro.runtime.supervisor.RetryPolicy`; the default
        (None) keeps the unsupervised fail-fast behaviour.
    journal_dir:
        Checkpoint-journal root.  Sweeps append completed cells here
        so an interrupted run can be resumed; None disables journaling.
    resume:
        Load journaled cells instead of recomputing them (needs
        ``journal_dir``).
    telemetry:
        Collect per-run instrumentation (occupancy series, latency
        histograms, engine counters) into ``ctx.telemetry``.  Changes
        cache identities: instrumented results are cached under
        distinct keys from plain ones.
    """
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    executor: Executor
    if jobs <= 1:
        executor = SerialExecutor()
    else:
        executor = ParallelExecutor(jobs, chunk_size=chunk_size)
    context = RuntimeContext(
        executor=executor,
        cache=cache,
        retry=retry if retry is not None else RetryPolicy(),
        journal_dir=Path(journal_dir) if journal_dir is not None else None,
        resume=resume,
        telemetry=TelemetryAggregate() if telemetry else None,
    )
    _STACK.append(context)
    try:
        yield context
    finally:
        _STACK.pop()


def run_simulation(config: "SimulationConfig") -> "SimulationResult":
    """Run one simulation through the active cache, counting invocations.

    This is the seam every experiment driver uses instead of
    constructing :class:`~repro.sim.simulator.SensorNetworkSimulator`
    directly: with a cache active, a previously computed
    ``(config, seed, code version)`` cell is served from disk without
    touching the simulator at all.
    """
    context = current_runtime()
    if context.telemetry is not None and not config.record_telemetry:
        # The flag participates in cache fingerprints, so instrumented
        # and plain results never alias under the same key.
        from dataclasses import replace

        config = replace(config, record_telemetry=True)
    if context.cache is not None:
        cached = context.cache.get(config)
        if cached is not None:
            _publish_telemetry(context, config, cached)
            return cached
    from repro.sim.simulator import SensorNetworkSimulator

    # time.monotonic throughout the runtime: the supervisor's deadlines
    # use it, so cache-entry `elapsed` must tick on the same clock.
    started = time.monotonic()
    result = SensorNetworkSimulator(config).run()
    elapsed = time.monotonic() - started
    context.stats.simulations += 1
    context.stats.sim_seconds += elapsed
    if context.cache is not None:
        context.cache.put(config, result, elapsed)
    _publish_telemetry(context, config, result)
    return result


def _publish_telemetry(
    context: RuntimeContext,
    config: "SimulationConfig",
    result: "SimulationResult",
) -> None:
    """Publish a run's telemetry under its config fingerprint.

    The key is a pure configuration fingerprint (no code salt): the
    manifest identifies *what* was simulated; code identity travels
    separately as ``git describe``.
    """
    if context.telemetry is None or result.telemetry is None:
        return
    from repro.runtime.fingerprint import stable_fingerprint

    context.telemetry.add_run(stable_fingerprint(config), result.telemetry)
