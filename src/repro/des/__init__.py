"""Discrete-event simulation (DES) engine.

This subpackage is the bottom-most substrate of the reproduction: a
deterministic, dependency-free discrete-event simulator in the style of
SimPy (which is not available in this offline environment).  It provides

* :class:`~repro.des.engine.Simulator` -- a binary-heap event scheduler
  with a floating-point clock, event cancellation, run-until semantics
  and stable FIFO tie-breaking for simultaneous events,
* :class:`~repro.des.process.Process` -- generator-based cooperative
  processes layered on top of the scheduler (``yield Timeout(5)``),
* :class:`~repro.des.rng.RngRegistry` -- named, independently seeded
  random streams so that components (traffic, per-node delays, ...)
  draw from decoupled generators and experiments are reproducible.

The paper's evaluation ("we have developed a detailed event-driven
simulator", Section 5) runs on exactly this kind of engine.
"""

from repro.des.engine import Simulator, EventHandle
from repro.des.errors import (
    DesError,
    EventCancelled,
    SchedulingInPastError,
    SimulationFinished,
)
from repro.des.process import Process, Timeout, WaitEvent, ProcessEvent
from repro.des.rng import RngRegistry
from repro.des.timers import BackoffTimer, PeriodicTimer

__all__ = [
    "Simulator",
    "EventHandle",
    "BackoffTimer",
    "PeriodicTimer",
    "Process",
    "Timeout",
    "WaitEvent",
    "ProcessEvent",
    "RngRegistry",
    "DesError",
    "EventCancelled",
    "SchedulingInPastError",
    "SimulationFinished",
]
