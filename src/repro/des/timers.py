"""Timer utilities layered on the event scheduler.

Protocol state machines (link ARQ, keep-alives, watchdogs) all need
the same two shapes of timer, so they live here once:

* :class:`BackoffTimer` -- a restartable one-shot timer whose timeout
  grows by a multiplicative backoff factor on every restart; the
  stop-and-wait ARQ arms one per hop transfer;
* :class:`PeriodicTimer` -- a fixed-interval repeating timer with
  clean cancellation, for housekeeping processes.

Both are thin wrappers over :class:`repro.des.engine.Simulator`
scheduling: they own exactly one pending :class:`EventHandle` at a
time, so cancelling the timer cancels the underlying event and never
leaks a stale callback into the heap.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.des.engine import EventHandle, Simulator

__all__ = ["BackoffTimer", "PeriodicTimer"]


class BackoffTimer:
    """A restartable one-shot timer with exponential backoff.

    Parameters
    ----------
    sim:
        The event scheduler to arm timers on.
    base_timeout:
        Timeout of the first arming.
    backoff:
        Multiplicative growth per restart (1.0 = constant timeout).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> timer = BackoffTimer(sim, base_timeout=2.0, backoff=2.0)
    >>> _ = timer.start(fired.append, "first")
    >>> _ = sim.run()
    >>> fired, sim.now, timer.next_timeout()
    (['first'], 2.0, 4.0)
    """

    def __init__(
        self, sim: Simulator, base_timeout: float, backoff: float = 1.0
    ) -> None:
        if base_timeout <= 0:
            raise ValueError(f"base timeout must be positive, got {base_timeout}")
        if backoff < 1.0:
            raise ValueError(f"backoff must be >= 1, got {backoff}")
        self._sim = sim
        self._base_timeout = float(base_timeout)
        self._backoff = float(backoff)
        self._armings = 0
        self._handle: EventHandle | None = None

    # ------------------------------------------------------------------
    @property
    def armings(self) -> int:
        """How many times the timer has been started so far."""
        return self._armings

    @property
    def pending(self) -> bool:
        """True while an arming is waiting to fire."""
        return self._handle is not None and self._handle.pending

    def next_timeout(self) -> float:
        """The timeout the *next* :meth:`start` call would use."""
        return self._base_timeout * self._backoff**self._armings

    # ------------------------------------------------------------------
    def start(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Arm the timer; the previous arming (if pending) is cancelled."""
        self.cancel()
        handle = self._sim.schedule_after(self.next_timeout(), callback, *args)
        self._armings += 1
        self._handle = handle
        return handle

    def cancel(self) -> bool:
        """Cancel the pending arming, if any; True if one was cancelled."""
        if self._handle is not None and self._handle.pending:
            self._handle.cancel()
            self._handle = None
            return True
        self._handle = None
        return False

    def reset(self) -> None:
        """Cancel and forget the backoff history (timeouts start over)."""
        self.cancel()
        self._armings = 0


class PeriodicTimer:
    """A repeating timer firing every ``interval`` until stopped.

    The callback runs once per period; stopping from *inside* the
    callback is supported (the next arming is simply never scheduled).
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., None],
        *args: Any,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._args = args
        self._handle: EventHandle | None = None
        self._running = False
        self.fired = 0

    @property
    def running(self) -> bool:
        """True between :meth:`start` and :meth:`stop`."""
        return self._running

    def start(self) -> None:
        """Begin firing ``interval`` from now; idempotent."""
        if self._running:
            return
        self._running = True
        self._handle = self._sim.schedule_after(self._interval, self._tick)

    def stop(self) -> None:
        """Stop firing; the pending arming is cancelled."""
        self._running = False
        if self._handle is not None and self._handle.pending:
            self._handle.cancel()
        self._handle = None

    def _tick(self) -> None:
        if not self._running:  # stopped while the event was in flight
            return
        self.fired += 1
        self._callback(*self._args)
        if self._running:
            self._handle = self._sim.schedule_after(self._interval, self._tick)
