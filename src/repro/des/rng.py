"""Named, independently seeded random-number streams.

Reproducible stochastic simulation needs more than a single seeded
generator: if the traffic source and the per-node delay draws share one
stream, adding a node perturbs every subsequent draw and two runs are no
longer comparable ("common random numbers" breaks).  The registry hands
out one :class:`numpy.random.Generator` per *named* stream, derived from
a root :class:`numpy.random.SeedSequence` via ``spawn``-style child
sequences keyed by the stream name, so that

* the same ``(root_seed, name)`` pair always yields the same stream,
* distinct names yield statistically independent streams, and
* creating streams in a different order does not change any stream.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Registry of named, decoupled random streams.

    Parameters
    ----------
    seed:
        Root seed for the whole simulation.  Two registries built from
        the same seed produce identical streams for identical names.

    Examples
    --------
    >>> rng = RngRegistry(seed=7)
    >>> a = rng.stream("traffic/S1")
    >>> b = rng.stream("delay/node-3")
    >>> a is rng.stream("traffic/S1")   # streams are cached
    True
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was built from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The child seed is derived from the root seed and a stable hash
        of the name, so stream identity is order-independent.
        """
        if not isinstance(name, str) or not name:
            raise ValueError("stream name must be a non-empty string")
        generator = self._streams.get(name)
        if generator is None:
            child = np.random.SeedSequence(
                entropy=self._seed,
                spawn_key=(zlib.crc32(name.encode("utf-8")),),
            )
            generator = np.random.Generator(np.random.PCG64(child))
            self._streams[name] = generator
        return generator

    def names(self) -> list[str]:
        """Names of all streams created so far, in creation order."""
        return list(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
