"""Exception hierarchy for the DES engine."""


class DesError(Exception):
    """Base class for all discrete-event-simulation errors."""


class SchedulingInPastError(DesError):
    """An event was scheduled strictly before the current simulation time."""


class SimulationFinished(DesError):
    """Raised inside a process that is resumed after the simulation ended."""


class EventCancelled(DesError):
    """Raised inside a process whose pending event was cancelled."""
