"""Generator-based cooperative processes on top of the event scheduler.

The callback API in :mod:`repro.des.engine` is sufficient for the WSN
simulator, but sequential behaviours (a source emitting packets forever,
a test harness staging several phases) read far more naturally as
coroutines.  A :class:`Process` wraps a generator that yields *wait
requests*:

``yield Timeout(5.0)``
    resume the process 5 time units later;
``yield WaitEvent(ev)``
    resume when another process (or callback code) triggers ``ev``;
``yield other_process``
    resume when ``other_process`` terminates (join semantics).

This mirrors the SimPy programming model closely enough that the
examples read like standard DES textbook code.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.des.engine import EventHandle, Simulator
from repro.des.errors import DesError, EventCancelled

__all__ = ["Timeout", "WaitEvent", "ProcessEvent", "Process"]


class Timeout:
    """Wait request: resume the yielding process after ``delay``."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"Timeout delay must be non-negative, got {delay!r}")
        self.delay = float(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Timeout({self.delay:g})"


class ProcessEvent:
    """A one-shot event that processes can wait on.

    Calling :meth:`trigger` resumes every waiter with the given value.
    Triggering twice is an error: one-shot events model "the thing
    happened", and double-triggering almost always indicates a logic
    bug in the simulation scenario.
    """

    __slots__ = ("_triggered", "_value", "_waiters")

    def __init__(self) -> None:
        self._triggered = False
        self._value: Any = None
        self._waiters: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        """True once :meth:`trigger` has been called."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value passed to :meth:`trigger` (None before that)."""
        return self._value

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all waiting processes."""
        if self._triggered:
            raise DesError("ProcessEvent triggered twice")
        self._triggered = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)

    def _add_waiter(self, resume: Callable[[Any], None]) -> None:
        if self._triggered:
            resume(self._value)
        else:
            self._waiters.append(resume)


class WaitEvent:
    """Wait request: resume when ``event`` is triggered."""

    __slots__ = ("event",)

    def __init__(self, event: ProcessEvent) -> None:
        self.event = event


class Process:
    """A running generator-based process.

    Parameters
    ----------
    sim:
        The simulator whose clock drives the process.
    generator:
        A generator yielding :class:`Timeout`, :class:`WaitEvent`,
        :class:`ProcessEvent` or :class:`Process` wait requests.

    Notes
    -----
    The process starts *immediately upon construction* at the current
    simulation time (its body runs up to the first yield), matching
    SimPy's ``env.process`` semantics.
    """

    def __init__(self, sim: Simulator, generator: Generator[Any, Any, Any]) -> None:
        self._sim = sim
        self._generator = generator
        self._finished = ProcessEvent()
        self._pending_handle: EventHandle | None = None
        self._resume(None)

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True while the underlying generator has not terminated."""
        return not self._finished.triggered

    @property
    def finished(self) -> ProcessEvent:
        """Event triggered (with the return value) on termination."""
        return self._finished

    @property
    def result(self) -> Any:
        """The generator's return value; None until termination."""
        return self._finished.value

    def interrupt(self) -> None:
        """Throw :class:`EventCancelled` into the process.

        If the process is waiting on a timeout, that timeout is
        cancelled first.  A process may catch the exception to clean up
        and continue; otherwise it terminates.
        """
        if not self.alive:
            return
        if self._pending_handle is not None:
            self._pending_handle.cancel()
            self._pending_handle = None
        try:
            request = self._generator.throw(EventCancelled())
        except (StopIteration, EventCancelled) as stop:
            self._finish(getattr(stop, "value", None))
        else:
            self._dispatch(request)

    # ------------------------------------------------------------------
    def _resume(self, value: Any) -> None:
        self._pending_handle = None
        try:
            request = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
        else:
            self._dispatch(request)

    def _dispatch(self, request: Any) -> None:
        if isinstance(request, Timeout):
            self._pending_handle = self._sim.schedule_after(
                request.delay, self._resume, None
            )
        elif isinstance(request, WaitEvent):
            request.event._add_waiter(self._resume)
        elif isinstance(request, ProcessEvent):
            request._add_waiter(self._resume)
        elif isinstance(request, Process):
            request._finished._add_waiter(self._resume)
        else:
            raise DesError(
                f"process yielded {request!r}; expected Timeout, WaitEvent, "
                "ProcessEvent or Process"
            )

    def _finish(self, value: Any) -> None:
        if not self._finished.triggered:
            self._finished.trigger(value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "finished"
        return f"Process({self._generator.__name__ if hasattr(self._generator, '__name__') else 'gen'}, {state})"
