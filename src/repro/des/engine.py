"""The event scheduler at the heart of the simulation engine.

The design is a *calendar of per-lane event heaps* behind the classic
event-list interface:

* every event belongs to a **lane** (callers pass any hashable key --
  the sensor-network simulator uses the node id; ``None`` is the shared
  default lane).  Each lane keeps its own binary heap ordered by
  ``(time, sequence)``, where the monotonically increasing **global**
  sequence number gives *stable FIFO order for simultaneous events*
  across all lanes -- essential so that, e.g., a packet arrival and a
  buffer-timer expiry at the same instant resolve deterministically,
  and so that lane assignment can never change execution order;
* a small top-level heap holds one ``(time, sequence, lane)`` entry per
  lane head.  An entry is *valid* iff it still equals its lane's
  current head; anything else is skipped as stale.  Pushing a
  duplicate entry for an unchanged head is therefore harmless, which
  keeps every operation O(log n) without back-pointers;
* cancellation is **O(1) and lazy**: a cancelled event stays in its
  lane's heap but is discarded (and counted in :attr:`Simulator.\
events_skipped`) when it surfaces.  RCAD preempts buffered packets
  constantly, so cancellation must never touch the heap;
* lanes whose tombstone count crosses a threshold are **compacted**:
  the lane heap is rebuilt without its cancelled entries (each counted
  as skipped, preserving the invariant that at drain time
  ``events_skipped`` equals the total number of cancellations).  This
  bounds memory under sustained preemption churn, where the old
  single-heap design grew without bound until pop time;
* the clock is a float in abstract "time units" matching the paper
  (per-hop transmission delay tau = 1 time unit).
"""

from __future__ import annotations

import heapq
import math
from typing import Any, Callable

from repro.des.errors import SchedulingInPastError

__all__ = ["Simulator", "EventHandle"]


class _Lane:
    """One per-key event calendar: a heap plus its tombstone count."""

    __slots__ = ("key", "heap", "dead")

    def __init__(self, key: Any) -> None:
        self.key = key
        self.heap: list[tuple[float, int, "EventHandle"]] = []
        self.dead = 0  # cancelled entries still sitting in ``heap``

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Lane({self.key!r}, size={len(self.heap)}, dead={self.dead})"


class EventHandle:
    """Handle to a scheduled event, usable to cancel or inspect it.

    Handles are returned by :meth:`Simulator.schedule`.  They expose the
    scheduled time (``when``) and cancellation state; RCAD uses the
    scheduled release time of every buffered packet to pick the victim
    with the shortest remaining delay.
    """

    __slots__ = ("when", "callback", "args", "_cancelled", "_fired", "seq", "_owner", "_lane")

    def __init__(
        self,
        when: float,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        seq: int,
    ) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.seq = seq
        self._cancelled = False
        self._fired = False
        self._owner: "Simulator | None" = None
        self._lane: _Lane | None = None

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it was still pending."""
        if self._cancelled or self._fired:
            return False
        self._cancelled = True
        owner = self._owner
        if owner is not None:
            owner._note_cancel(self)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(when={self.when:g}, seq={self.seq}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(2.0, seen.append, "b")
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> sim.run()
    2
    >>> seen
    ['a', 'b']
    >>> sim.now
    2.0
    """

    #: A lane is compacted when at least this many tombstones have
    #: accumulated *and* they outnumber the live entries (see
    #: :meth:`_compact`).  64 keeps tiny lanes from churning rebuilds
    #: while bounding any lane's garbage to ``max(64, live entries)``.
    COMPACT_MIN_DEAD = 64

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._lanes: dict[Any, _Lane] = {}
        self._top: list[tuple[float, int, _Lane]] = []
        self._next_seq = 0
        self._live = 0
        self._events_processed = 0
        self._events_scheduled = 0
        self._events_skipped = 0
        self._last_event_time = float(start_time)
        self._running = False

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of event callbacks executed so far."""
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever scheduled."""
        return self._events_scheduled

    @property
    def events_skipped(self) -> int:
        """Cancelled events discarded (lazily at pop, or by compaction).

        ``events_skipped / events_scheduled`` is the cancellation ratio;
        under RCAD it measures how often preemption outran the release
        timers -- a direct view of the effective-mu adaptation.  Once
        the event list drains, every cancellation has been counted.
        """
        return self._events_skipped

    @property
    def last_event_time(self) -> float:
        """Time of the most recently executed event.

        Unlike :attr:`now`, this does not jump to the horizon after a
        :meth:`run_until` call -- it marks when activity actually
        ended, which is what time-averaged statistics should divide by.
        """
        return self._last_event_time

    @property
    def pending_count(self) -> int:
        """Number of events that are scheduled and not cancelled.

        O(1): maintained on every schedule / cancel / fire.
        """
        return self._live

    @property
    def heap_size(self) -> int:
        """Total entries across all lane heaps, *including* tombstones.

        ``heap_size - pending_count`` is the garbage currently awaiting
        lazy discard; compaction keeps it bounded (tests rely on this).
        """
        return sum(len(lane.heap) for lane in self._lanes.values())

    def peek(self) -> float:
        """Time of the next pending event, or ``math.inf`` if none.

        Cancelled events surfacing at lane heads are discarded (and
        counted as skipped) on the way.
        """
        top = self._top
        while top:
            when, seq, lane = top[0]
            lheap = lane.heap
            if not lheap or lheap[0][0] != when or lheap[0][1] != seq:
                heapq.heappop(top)  # stale: the lane head moved on
                continue
            if lheap[0][2].pending:
                return when
            heapq.heappop(lheap)  # cancelled lane head
            lane.dead -= 1
            self._events_skipped += 1
            heapq.heappop(top)
            if lheap:
                head = lheap[0]
                heapq.heappush(top, (head[0], head[1], lane))
        return math.inf

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        lane: Any = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        ``lane`` (keyword-only, any hashable) names the event calendar
        to file the event under; it is purely a performance hint --
        events fire in global ``(when, seq)`` order regardless of lane
        assignment.  The simulator lanes by node id so that RCAD's
        cancellation tombstones stay local and compactable.

        Raises
        ------
        ValueError
            If ``when`` is NaN (checked first: NaN would slip past the
            in-the-past comparison below, surfacing much later as a
            confusing heap-order corruption).
        SchedulingInPastError
            If ``when`` is before the current simulation time.  Events
            at exactly :attr:`now` are allowed and run in FIFO order
            after the currently executing event returns.
        """
        when = float(when)
        if math.isnan(when):
            raise ValueError("cannot schedule an event at time NaN")
        if when < self._now:
            raise SchedulingInPastError(
                f"cannot schedule at t={when:g}; clock is already at t={self._now:g}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        handle = EventHandle(when, callback, args, seq)
        handle._owner = self
        lane_obj = self._lanes.get(lane)
        if lane_obj is None:
            lane_obj = self._lanes[lane] = _Lane(lane)
        handle._lane = lane_obj
        lheap = lane_obj.heap
        heapq.heappush(lheap, (when, seq, handle))
        if lheap[0][1] == seq:
            # The new event became its lane's head: surface it topside.
            # (Any previous top entry for this lane just went stale.)
            heapq.heappush(self._top, (when, seq, lane_obj))
        self._events_scheduled += 1
        self._live += 1
        return handle

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        lane: Any = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay:g}")
        return self.schedule(self._now + delay, callback, *args, lane=lane)

    # ------------------------------------------------------------------
    # cancellation bookkeeping
    # ------------------------------------------------------------------
    def _note_cancel(self, handle: EventHandle) -> None:
        """O(1) cancel accounting; compacts the lane past the threshold."""
        self._live -= 1
        lane = handle._lane
        if lane is None:  # pragma: no cover - handles are always laned
            return
        lane.dead += 1
        if lane.dead >= self.COMPACT_MIN_DEAD and lane.dead * 2 > len(lane.heap):
            self._compact(lane)

    def _compact(self, lane: _Lane) -> None:
        """Rebuild one lane's heap without its cancelled entries.

        Every dropped tombstone counts as skipped -- exactly what lazy
        discard would eventually have reported -- so the
        scheduled/processed/skipped ledger is identical whether an
        event dies here or at pop time.
        """
        live = [item for item in lane.heap if item[2].pending]
        self._events_skipped += len(lane.heap) - len(live)
        heapq.heapify(live)
        lane.heap = live
        lane.dead = 0
        if live:
            head = live[0]
            # Re-surface the head: if compaction removed the old head,
            # its top entry is now stale; if not, this is a harmless
            # duplicate of a still-valid entry.
            heapq.heappush(self._top, (head[0], head[1], lane))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns True if an event ran, False if the event list is empty.
        """
        top = self._top
        while top:
            when, seq, lane = heapq.heappop(top)
            lheap = lane.heap
            if not lheap or lheap[0][0] != when or lheap[0][1] != seq:
                continue  # stale: the lane head changed since this was pushed
            handle = heapq.heappop(lheap)[2]
            if lheap:
                head = lheap[0]
                heapq.heappush(top, (head[0], head[1], lane))
            if handle._cancelled:
                lane.dead -= 1
                self._events_skipped += 1
                continue
            self._live -= 1
            self._now = when
            self._last_event_time = when
            handle._fired = True
            handle.callback(*handle.args)
            self._events_processed += 1
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the event list drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while max_events is None or executed < max_events:
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return executed

    def run_until(self, until: float) -> int:
        """Run all events scheduled at or before ``until``.

        The clock is left at ``until`` (or its current value if that is
        later), matching the convention that a horizon-bounded run
        "consumes" the full horizon.  Returns the number of events
        executed by this call.
        """
        until = float(until)
        executed = 0
        self._running = True
        try:
            while True:
                next_time = self.peek()
                if next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until > self._now:
            self._now = until
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:g}, pending={self.pending_count})"
