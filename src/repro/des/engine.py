"""The event scheduler at the heart of the simulation engine.

The design is a classic event-list simulator:

* a binary heap orders pending events by ``(time, sequence)`` where the
  monotonically increasing sequence number gives *stable FIFO order for
  simultaneous events* -- essential so that, e.g., a packet arrival and
  a buffer-timer expiry at the same instant resolve deterministically;
* cancellation is *lazy*: a cancelled event stays in the heap but is
  skipped when popped.  RCAD preempts buffered packets constantly, so
  cancellation must be O(1);
* the clock is a float in abstract "time units" matching the paper
  (per-hop transmission delay tau = 1 time unit).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable

from repro.des.errors import SchedulingInPastError

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """Handle to a scheduled event, usable to cancel or inspect it.

    Handles are returned by :meth:`Simulator.schedule`.  They expose the
    scheduled time (``when``) and cancellation state; RCAD uses the
    scheduled release time of every buffered packet to pick the victim
    with the shortest remaining delay.
    """

    __slots__ = ("when", "callback", "args", "_cancelled", "_fired", "seq")

    def __init__(
        self,
        when: float,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        seq: int,
    ) -> None:
        self.when = when
        self.callback = callback
        self.args = args
        self.seq = seq
        self._cancelled = False
        self._fired = False

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the event's callback has run."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> bool:
        """Cancel the event.  Returns True if it was still pending."""
        if self.pending:
            self._cancelled = True
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle(when={self.when:g}, seq={self.seq}, {state})"


class Simulator:
    """A deterministic discrete-event simulator.

    Examples
    --------
    >>> sim = Simulator()
    >>> seen = []
    >>> _ = sim.schedule(2.0, seen.append, "b")
    >>> _ = sim.schedule(1.0, seen.append, "a")
    >>> sim.run()
    2
    >>> seen
    ['a', 'b']
    >>> sim.now
    2.0
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[tuple[float, int, EventHandle]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        self._events_scheduled = 0
        self._events_skipped = 0
        self._last_event_time = float(start_time)
        self._running = False

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of event callbacks executed so far."""
        return self._events_processed

    @property
    def events_scheduled(self) -> int:
        """Number of events ever pushed onto the heap."""
        return self._events_scheduled

    @property
    def events_skipped(self) -> int:
        """Cancelled events lazily discarded when popped.

        ``events_skipped / events_scheduled`` is the cancellation ratio;
        under RCAD it measures how often preemption outran the release
        timers -- a direct view of the effective-mu adaptation.
        """
        return self._events_skipped

    @property
    def last_event_time(self) -> float:
        """Time of the most recently executed event.

        Unlike :attr:`now`, this does not jump to the horizon after a
        :meth:`run_until` call -- it marks when activity actually
        ended, which is what time-averaged statistics should divide by.
        """
        return self._last_event_time

    @property
    def pending_count(self) -> int:
        """Number of events that are scheduled and not cancelled.

        O(n): intended for tests and debugging, not hot paths.
        """
        return sum(1 for _, _, handle in self._heap if handle.pending)

    def peek(self) -> float:
        """Time of the next pending event, or ``math.inf`` if none."""
        while self._heap:
            when, _, handle = self._heap[0]
            if handle.pending:
                return when
            heapq.heappop(self._heap)
            self._events_skipped += 1
        return math.inf

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self, when: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``when``.

        Raises
        ------
        SchedulingInPastError
            If ``when`` is before the current simulation time.  Events
            at exactly :attr:`now` are allowed and run in FIFO order
            after the currently executing event returns.
        """
        when = float(when)
        if when < self._now:
            raise SchedulingInPastError(
                f"cannot schedule at t={when:g}; clock is already at t={self._now:g}"
            )
        if math.isnan(when):
            raise ValueError("cannot schedule an event at time NaN")
        handle = EventHandle(when, callback, args, next(self._seq))
        heapq.heappush(self._heap, (when, handle.seq, handle))
        self._events_scheduled += 1
        return handle

    def schedule_after(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise SchedulingInPastError(f"negative delay {delay:g}")
        return self.schedule(self._now + delay, callback, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the single next pending event.

        Returns True if an event ran, False if the event list is empty.
        """
        while self._heap:
            when, _, handle = heapq.heappop(self._heap)
            if not handle.pending:
                self._events_skipped += 1
                continue
            self._now = when
            self._last_event_time = when
            handle._fired = True
            handle.callback(*handle.args)
            self._events_processed += 1
            return True
        return False

    def run(self, max_events: int | None = None) -> int:
        """Run until the event list drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        executed = 0
        self._running = True
        try:
            while max_events is None or executed < max_events:
                if not self.step():
                    break
                executed += 1
        finally:
            self._running = False
        return executed

    def run_until(self, until: float) -> int:
        """Run all events scheduled at or before ``until``.

        The clock is left at ``until`` (or its current value if that is
        later), matching the convention that a horizon-bounded run
        "consumes" the full horizon.  Returns the number of events
        executed by this call.
        """
        until = float(until)
        executed = 0
        self._running = True
        try:
            while True:
                next_time = self.peek()
                if next_time > until:
                    break
                self.step()
                executed += 1
        finally:
            self._running = False
        if until > self._now:
            self._now = until
        return executed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:g}, pending={self.pending_count})"
