"""Source traffic models.

The paper's analysis assumes Poisson packet creation (Sections 3-4)
while its simulations use "a realistic sensor traffic model where
packets are periodically transmitted by each source" (Section 5.2).
Both are provided, together with the richer models needed for the
extension experiments:

* :class:`~repro.traffic.generators.PeriodicTraffic` -- fixed
  inter-arrival 1/lambda (the Figure 2/3 workload),
* :class:`~repro.traffic.generators.PoissonTraffic` -- Exp(lambda)
  gaps (the analytic model),
* :class:`~repro.traffic.generators.JitteredPeriodicTraffic` --
  periodic with bounded uniform jitter,
* :class:`~repro.traffic.generators.OnOffTraffic` -- bursty
  exponential on/off phases (event-driven sensing),
* :class:`~repro.traffic.generators.MarkovOnOffTraffic` -- two-state
  Markov-modulated on/off bursts with a streaming ``iter_gaps`` API
  (the service load generator's overload workload),
* :class:`~repro.traffic.generators.MMPPTraffic` -- Markov-modulated
  Poisson process, the classic bursty-aggregate model,
* :class:`~repro.traffic.generators.TraceTraffic` -- replay of an
  explicit creation-time list.
"""

from repro.traffic.generators import (
    JitteredPeriodicTraffic,
    MarkovOnOffTraffic,
    MMPPTraffic,
    OnOffTraffic,
    PeriodicTraffic,
    PoissonTraffic,
    TraceTraffic,
    TrafficModel,
)

__all__ = [
    "TrafficModel",
    "PeriodicTraffic",
    "PoissonTraffic",
    "JitteredPeriodicTraffic",
    "OnOffTraffic",
    "MarkovOnOffTraffic",
    "MMPPTraffic",
    "TraceTraffic",
]
