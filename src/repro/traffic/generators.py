"""Creation-time generators for source nodes.

Every model implements :class:`TrafficModel`: given a packet budget, a
horizon and a random stream, produce the sorted creation times of one
source's packets.  The simulator turns each creation time into a packet
injected at the source node.
"""

from __future__ import annotations

import abc
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "TrafficModel",
    "PeriodicTraffic",
    "PoissonTraffic",
    "JitteredPeriodicTraffic",
    "OnOffTraffic",
    "MarkovOnOffTraffic",
    "MMPPTraffic",
    "TraceTraffic",
]


class TrafficModel(abc.ABC):
    """Interface for source packet-creation processes."""

    @abc.abstractmethod
    def creation_times(
        self, n_packets: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Sorted creation times of the first ``n_packets`` packets."""

    @abc.abstractmethod
    def mean_rate(self) -> float:
        """Long-run packet creation rate lambda (packets per time unit)."""

    @staticmethod
    def _check_count(n_packets: int) -> None:
        if n_packets < 0:
            raise ValueError(f"packet count must be non-negative, got {n_packets}")


class PeriodicTraffic(TrafficModel):
    """Fixed inter-arrival traffic: the paper's simulation workload.

    "Each source generated a total of 1000 packets at periodic
    intervals with an inter-arrival time of 1/lambda time units"
    (Section 5.2).

    Parameters
    ----------
    interval:
        1/lambda, the gap between consecutive packets.
    phase:
        Creation time of the first packet (defaults to one interval in,
        so sources started together do not all fire at t = 0).
    """

    def __init__(self, interval: float, phase: float | None = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self.phase = float(phase) if phase is not None else float(interval)
        if self.phase < 0:
            raise ValueError(f"phase must be non-negative, got {self.phase}")

    def creation_times(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(n_packets)
        return self.phase + self.interval * np.arange(n_packets, dtype=float)

    def mean_rate(self) -> float:
        return 1.0 / self.interval


class PoissonTraffic(TrafficModel):
    """Poisson(lambda) creation: Exp(1/lambda) independent gaps."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    def creation_times(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(n_packets)
        gaps = rng.exponential(1.0 / self.rate, size=n_packets)
        return np.cumsum(gaps)

    def mean_rate(self) -> float:
        return self.rate


class JitteredPeriodicTraffic(TrafficModel):
    """Periodic traffic with bounded uniform jitter per packet.

    Models sensing duty cycles with clock drift: packet j is created at
    ``phase + j * interval + U(-jitter, +jitter)``.  Jitter must stay
    below half the interval so creation order is preserved.
    """

    def __init__(self, interval: float, jitter: float, phase: float | None = None) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if not 0 <= jitter < interval / 2:
            raise ValueError(
                f"jitter must be in [0, interval/2) = [0, {interval / 2}), got {jitter}"
            )
        self.interval = float(interval)
        self.jitter = float(jitter)
        self.phase = float(phase) if phase is not None else float(interval)

    def creation_times(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(n_packets)
        base = self.phase + self.interval * np.arange(n_packets, dtype=float)
        if self.jitter > 0:
            base = base + rng.uniform(-self.jitter, self.jitter, size=n_packets)
        return np.maximum(base, 0.0)

    def mean_rate(self) -> float:
        return 1.0 / self.interval


class OnOffTraffic(TrafficModel):
    """Bursty on/off traffic (event-driven sensing).

    The source alternates exponential ON phases (packets generated as
    Poisson with ``burst_rate``) and exponential OFF phases (silence) --
    the natural model for "an animal walked past the sensor": bursts of
    observations separated by quiet periods.
    """

    def __init__(
        self,
        burst_rate: float,
        mean_on: float,
        mean_off: float,
    ) -> None:
        if burst_rate <= 0:
            raise ValueError(f"burst rate must be positive, got {burst_rate}")
        if mean_on <= 0 or mean_off < 0:
            raise ValueError("mean_on must be positive and mean_off non-negative")
        self.burst_rate = float(burst_rate)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)

    def creation_times(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(n_packets)
        times: list[float] = []
        t = 0.0
        while len(times) < n_packets:
            on_end = t + rng.exponential(self.mean_on)
            while True:
                t += rng.exponential(1.0 / self.burst_rate)
                if t >= on_end or len(times) >= n_packets:
                    break
                times.append(t)
            t = on_end + (rng.exponential(self.mean_off) if self.mean_off > 0 else 0.0)
        return np.asarray(times[:n_packets])

    def mean_rate(self) -> float:
        duty_cycle = self.mean_on / (self.mean_on + self.mean_off)
        return self.burst_rate * duty_cycle


class MarkovOnOffTraffic(TrafficModel):
    """Two-state Markov-modulated on/off traffic with a streaming API.

    A continuous-time two-state Markov chain modulates the Poisson
    creation rate: ``burst_rate`` while ON, ``base_rate`` (default 0,
    i.e. silence) while OFF, with exponential sojourn times
    ``mean_on`` / ``mean_off``.  With ``base_rate=0`` this is the
    classic interrupted Poisson process -- the standard model for
    overload bursts riding on a quiet baseline.

    Unlike the batch-only models above, this generator also exposes
    :meth:`iter_gaps`, an *unbounded* stream of inter-arrival gaps.
    That is the form a live load generator needs: the streaming
    service's closed-loop driver pulls gaps one at a time for as long
    as the run lasts, with no packet budget fixed up front.
    ``creation_times`` is implemented on top of the same stream, so a
    batch prefix and a streamed prefix from equal seeds are identical.

    Parameters
    ----------
    burst_rate:
        Poisson creation rate while the chain is ON.
    mean_on, mean_off:
        Mean sojourn times of the ON and OFF states.
    base_rate:
        Poisson creation rate while OFF; must be smaller than
        ``burst_rate`` (0 = silent OFF periods).
    """

    def __init__(
        self,
        burst_rate: float,
        mean_on: float,
        mean_off: float,
        base_rate: float = 0.0,
    ) -> None:
        if burst_rate <= 0:
            raise ValueError(f"burst rate must be positive, got {burst_rate}")
        if mean_on <= 0 or mean_off <= 0:
            raise ValueError("mean_on and mean_off must be positive")
        if not 0 <= base_rate < burst_rate:
            raise ValueError(
                f"base rate must be in [0, burst_rate), got {base_rate}"
            )
        self.burst_rate = float(burst_rate)
        self.mean_on = float(mean_on)
        self.mean_off = float(mean_off)
        self.base_rate = float(base_rate)

    def iter_gaps(self, rng: np.random.Generator) -> Iterator[float]:
        """Yield inter-arrival gaps forever (never raises StopIteration).

        Implementation: thinning-free phase walk.  Within a phase the
        gap is exponential at the phase rate; when the next arrival
        would land past the phase boundary the walk crosses into the
        next phase and re-draws from the boundary (memorylessness makes
        the re-draw exact, not an approximation).
        """
        on = bool(rng.integers(2))
        t = 0.0
        last_arrival = 0.0
        phase_end = t + rng.exponential(self.mean_on if on else self.mean_off)
        while True:
            rate = self.burst_rate if on else self.base_rate
            if rate > 0:
                candidate = t + rng.exponential(1.0 / rate)
                if candidate < phase_end:
                    t = candidate
                    yield t - last_arrival
                    last_arrival = t
                    continue
            # no arrival before the phase flips: cross the boundary.
            t = phase_end
            on = not on
            phase_end = t + rng.exponential(self.mean_on if on else self.mean_off)

    def creation_times(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(n_packets)
        gaps = self.iter_gaps(rng)
        times = np.empty(n_packets, dtype=float)
        t = 0.0
        for i in range(n_packets):
            t += next(gaps)
            times[i] = t
        return times

    def mean_rate(self) -> float:
        duty = self.mean_on / (self.mean_on + self.mean_off)
        return self.burst_rate * duty + self.base_rate * (1.0 - duty)


class MMPPTraffic(TrafficModel):
    """Markov-modulated Poisson process over a finite set of states.

    Parameters
    ----------
    rates:
        Poisson rate in each modulating state.
    mean_holding:
        Mean sojourn time in each state (exponential holding).
    transition:
        Row-stochastic jump matrix between states (diagonal ignored and
        renormalized); defaults to uniform jumps to the other states.
    """

    def __init__(
        self,
        rates: Sequence[float],
        mean_holding: Sequence[float],
        transition: np.ndarray | None = None,
    ) -> None:
        self.rates = np.asarray(rates, dtype=float)
        self.mean_holding = np.asarray(mean_holding, dtype=float)
        if self.rates.ndim != 1 or self.rates.size < 2:
            raise ValueError("need at least two modulating states")
        if self.rates.shape != self.mean_holding.shape:
            raise ValueError("rates and mean_holding must have the same length")
        if np.any(self.rates < 0) or np.any(self.mean_holding <= 0):
            raise ValueError("rates must be >= 0 and holding times > 0")
        n = self.rates.size
        if transition is None:
            transition = (np.ones((n, n)) - np.eye(n)) / (n - 1)
        transition = np.asarray(transition, dtype=float)
        if transition.shape != (n, n):
            raise ValueError(f"transition matrix must be {n}x{n}")
        np.fill_diagonal(transition, 0.0)
        row_sums = transition.sum(axis=1, keepdims=True)
        if np.any(row_sums == 0):
            raise ValueError("every state needs at least one outgoing transition")
        self.transition = transition / row_sums

    def creation_times(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(n_packets)
        times: list[float] = []
        state = int(rng.integers(self.rates.size))
        t = 0.0
        while len(times) < n_packets:
            hold = rng.exponential(self.mean_holding[state])
            rate = self.rates[state]
            if rate > 0:
                phase_end = t + hold
                while True:
                    t += rng.exponential(1.0 / rate)
                    if t >= phase_end or len(times) >= n_packets:
                        break
                    times.append(t)
                t = phase_end
            else:
                t += hold
            state = int(rng.choice(self.rates.size, p=self.transition[state]))
        return np.asarray(times[:n_packets])

    def mean_rate(self) -> float:
        # Stationary distribution of the embedded semi-Markov process,
        # weighted by holding times.
        eigenvalues, eigenvectors = np.linalg.eig(self.transition.T)
        idx = int(np.argmin(np.abs(eigenvalues - 1.0)))
        pi = np.real(eigenvectors[:, idx])
        pi = np.abs(pi) / np.abs(pi).sum()
        weights = pi * self.mean_holding
        weights = weights / weights.sum()
        return float(np.dot(weights, self.rates))


class TraceTraffic(TrafficModel):
    """Replay an explicit list of creation times.

    Used to feed recorded or adversarially crafted workloads into the
    simulator; the rate is estimated from the trace span.
    """

    def __init__(self, times: Sequence[float]) -> None:
        trace = np.sort(np.asarray(times, dtype=float))
        if trace.size == 0:
            raise ValueError("trace must contain at least one creation time")
        if np.any(trace < 0):
            raise ValueError("creation times must be non-negative")
        self.trace = trace

    def creation_times(self, n_packets: int, rng: np.random.Generator) -> np.ndarray:
        self._check_count(n_packets)
        if n_packets > self.trace.size:
            raise ValueError(
                f"trace has only {self.trace.size} packets, {n_packets} requested"
            )
        return self.trace[:n_packets].copy()

    def mean_rate(self) -> float:
        if self.trace.size < 2:
            return 0.0
        span = self.trace[-1] - self.trace[0]
        return float((self.trace.size - 1) / span) if span > 0 else float("inf")
