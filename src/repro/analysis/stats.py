"""Replication statistics: summaries and confidence intervals."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["SummaryStats", "summarize", "bootstrap_ci"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean with a symmetric confidence interval."""

    mean: float
    std: float
    n: int
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


def summarize(samples: Sequence[float], confidence: float = 0.95) -> SummaryStats:
    """Student-t confidence interval for the mean of ``samples``.

    With a single sample the interval degenerates to the point itself.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    values = np.asarray(samples, dtype=float)
    if values.size == 0:
        raise ValueError("cannot summarize an empty sample")
    mean = float(values.mean())
    if values.size == 1:
        return SummaryStats(mean, 0.0, 1, mean, mean, confidence)
    std = float(values.std(ddof=1))
    sem = std / math.sqrt(values.size)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=values.size - 1))
    return SummaryStats(
        mean=mean,
        std=std,
        n=int(values.size),
        ci_low=mean - t_crit * sem,
        ci_high=mean + t_crit * sem,
        confidence=confidence,
    )


def bootstrap_ci(
    samples: Sequence[float],
    statistic: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for any statistic.

    Used for skewed metrics (MSE is heavy-tailed under preemption)
    where the t-interval of :func:`summarize` is unreliable.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    values = np.asarray(samples, dtype=float)
    if values.size < 2:
        raise ValueError("bootstrap needs at least 2 samples")
    rng = np.random.Generator(np.random.PCG64(seed))
    estimates = np.empty(n_resamples)
    for i in range(n_resamples):
        resample = values[rng.integers(values.size, size=values.size)]
        estimates[i] = statistic(resample)
    alpha = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(estimates, alpha)),
        float(np.quantile(estimates, 1.0 - alpha)),
    )
