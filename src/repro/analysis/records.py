"""Experiment result containers and plain-text rendering.

An :class:`ExperimentSeries` is one curve of a figure: a swept
parameter (the x axis) against a measured metric (the y axis) for one
scheme.  An :class:`ExperimentTable` groups the curves of one figure
and renders them as the aligned text table the benchmark harnesses
print -- the reproduction's equivalent of the paper's plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

__all__ = ["ExperimentSeries", "ExperimentTable"]


@dataclass
class ExperimentSeries:
    """One labelled curve: y values over shared x values."""

    label: str
    x_values: Sequence[float]
    y_values: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.x_values) != len(self.y_values):
            raise ValueError(
                f"series {self.label!r}: {len(self.x_values)} x values but "
                f"{len(self.y_values)} y values"
            )
        if not self.x_values:
            raise ValueError(f"series {self.label!r} is empty")

    def value_at(self, x: float) -> float:
        """The y value measured at swept point ``x`` (exact match)."""
        for xi, yi in zip(self.x_values, self.y_values):
            if xi == x:
                return yi
        raise KeyError(f"series {self.label!r} has no point at x={x!r}")

    def as_dict(self) -> dict[float, float]:
        """{x: y} mapping of the curve."""
        return dict(zip(self.x_values, self.y_values))


@dataclass
class ExperimentTable:
    """A figure's worth of curves sharing one x axis."""

    title: str
    x_label: str
    y_label: str
    series: list[ExperimentSeries] = field(default_factory=list)

    def add(self, series: ExperimentSeries) -> None:
        """Append a curve, checking x-axis consistency."""
        if self.series and list(series.x_values) != list(self.series[0].x_values):
            raise ValueError(
                f"series {series.label!r} has a different x axis than the table"
            )
        self.series.append(series)

    def get(self, label: str) -> ExperimentSeries:
        """Look up a curve by label."""
        for series in self.series:
            if series.label == label:
                return series
        raise KeyError(
            f"no series labelled {label!r}; have {[s.label for s in self.series]}"
        )

    @property
    def x_values(self) -> Sequence[float]:
        """The shared x axis."""
        if not self.series:
            raise ValueError("table has no series yet")
        return self.series[0].x_values

    def render(self, float_format: str = "{:>14.4g}") -> str:
        """Aligned text table: one row per x value, one column per curve."""
        if not self.series:
            raise ValueError("table has no series yet")
        header_cells = [f"{self.x_label:>12}"] + [
            f"{series.label:>14}" for series in self.series
        ]
        lines = [
            f"# {self.title}  ({self.y_label})",
            " ".join(header_cells),
        ]
        for i, x in enumerate(self.x_values):
            cells = [f"{x:>12g}"] + [
                float_format.format(series.y_values[i]) for series in self.series
            ]
            lines.append(" ".join(cells))
        return "\n".join(lines)

    def as_dict(self) -> Mapping[str, dict[float, float]]:
        """{label: {x: y}} of every curve."""
        return {series.label: series.as_dict() for series in self.series}

    def to_csv(self) -> str:
        """The table as CSV text: one x column plus one column per curve.

        Labels containing commas or quotes are quoted per RFC 4180.
        """
        if not self.series:
            raise ValueError("table has no series yet")

        def quote(cell: str) -> str:
            if any(ch in cell for ch in ',"\n'):
                return '"' + cell.replace('"', '""') + '"'
            return cell

        header = [quote(self.x_label)] + [quote(s.label) for s in self.series]
        lines = [",".join(header)]
        for i, x in enumerate(self.x_values):
            row = [repr(float(x))] + [
                repr(float(series.y_values[i])) for series in self.series
            ]
            lines.append(",".join(row))
        return "\n".join(lines) + "\n"

    def to_json(self) -> str:
        """The table as a JSON document (title, labels, series data)."""
        import json

        if not self.series:
            raise ValueError("table has no series yet")
        return json.dumps(
            {
                "title": self.title,
                "x_label": self.x_label,
                "y_label": self.y_label,
                "x_values": [float(x) for x in self.x_values],
                "series": [
                    {
                        "label": series.label,
                        "y_values": [float(y) for y in series.y_values],
                    }
                    for series in self.series
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentTable":
        """Inverse of :meth:`to_json`."""
        import json

        payload = json.loads(text)
        table = cls(
            title=payload["title"],
            x_label=payload["x_label"],
            y_label=payload["y_label"],
        )
        for series in payload["series"]:
            table.add(
                ExperimentSeries(
                    series["label"], payload["x_values"], series["y_values"]
                )
            )
        return table
