"""Terminal charts: render an ExperimentTable as ASCII art.

The paper communicates through figures; in a terminal-only
environment the closest faithful rendering is a scaled bar chart per
series.  :func:`render_chart` draws one horizontal bar block per swept
x value and series, scaled to the table's maximum, so the figure's
*shape* (who dominates, where curves converge) is visible at a glance
without matplotlib.

:func:`render_timeseries` and :func:`render_event_rate` draw telemetry
time series the same way -- one bar per time bin, with an optional
analytic reference level (e.g. the M/M/k/k mean-occupancy prediction)
marked on each bar -- so the Erlang-B steady state is visually
checkable straight from a ``repro metrics --chart`` invocation.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.records import ExperimentTable

__all__ = ["render_chart", "render_timeseries", "render_event_rate"]

_BAR = "█"
_HALF = "▌"
_MARK = "┊"


def render_chart(
    table: ExperimentTable,
    width: int = 48,
    log_scale: bool = False,
) -> str:
    """Render the table as grouped horizontal bars.

    Parameters
    ----------
    table:
        The experiment table to draw.
    width:
        Width of the longest bar, in character cells.
    log_scale:
        Scale bar lengths by log10(1 + value) instead of value; useful
        when series span orders of magnitude (e.g. Figure 2(a)).
    """
    if width < 4:
        raise ValueError(f"chart width must be at least 4, got {width}")
    if not table.series:
        raise ValueError("table has no series to draw")

    def scale(value: float) -> float:
        if value < 0:
            raise ValueError("bar charts need non-negative values")
        if log_scale:
            import math

            return math.log10(1.0 + value)
        return value

    peak = max(scale(v) for series in table.series for v in series.y_values)
    label_width = max(len(series.label) for series in table.series)
    lines = [
        f"# {table.title}",
        f"  ({table.y_label}"
        + (", log scale" if log_scale else "")
        + f"; bar = {width} cells at max)",
    ]
    for i, x in enumerate(table.x_values):
        lines.append(f"{table.x_label} = {x:g}")
        for series in table.series:
            value = series.y_values[i]
            cells = 0.0 if peak == 0 else scale(value) / peak * width
            whole = int(cells)
            bar = _BAR * whole + (_HALF if cells - whole >= 0.5 else "")
            lines.append(f"  {series.label:>{label_width}} |{bar} {value:.4g}")
    return "\n".join(lines)


def _bar_with_mark(value: float, peak: float, width: int, mark: float | None) -> str:
    """One horizontal bar, with an optional reference level tick."""
    cells = 0.0 if peak <= 0 else min(value, peak) / peak * width
    whole = int(cells)
    bar = _BAR * whole + (_HALF if cells - whole >= 0.5 else "")
    if mark is not None and peak > 0:
        position = int(min(mark, peak) / peak * width)
        if position >= len(bar):
            bar = bar + " " * (position - len(bar)) + _MARK
    return bar


def render_timeseries(
    times: Sequence[float],
    values: Sequence[float],
    *,
    title: str,
    y_label: str = "value",
    width: int = 48,
    bins: int = 24,
    reference: float | None = None,
    initial: float = 0.0,
) -> str:
    """Render a step-function time series as time-binned bars.

    The series is split into ``bins`` equal time windows; each bar is
    the *time-weighted average* over its window (the quantity queueing
    predictions speak about), so downsampling never invents transient
    spikes.  ``reference`` draws a tick at an analytic level -- pass
    the M/M/k/k mean occupancy to eyeball Erlang-B convergence.
    """
    from repro.telemetry.timeseries import time_average

    if bins < 1:
        raise ValueError(f"need at least one bin, got {bins}")
    if len(times) != len(values):
        raise ValueError("times and values must be the same length")
    if not times:
        return f"# {title}\n  (empty series)"
    t_end = times[-1]
    t_start = times[0]
    span = t_end - t_start
    if span <= 0:
        return f"# {title}\n  (degenerate series: single instant t={t_start:g})"
    averages = []
    for i in range(bins):
        lo = t_start + span * i / bins
        hi = t_start + span * (i + 1) / bins
        averages.append((lo, hi, time_average(times, values, lo, hi, initial=initial)))
    peak = max(a for _, _, a in averages)
    if reference is not None:
        peak = max(peak, reference)
    lines = [
        f"# {title}",
        f"  ({y_label}, time-binned mean; bar = {width} cells at {peak:.4g}"
        + (f"; {_MARK} = reference {reference:.4g}" if reference is not None else "")
        + ")",
    ]
    for lo, _, average in averages:
        bar = _bar_with_mark(average, peak, width, reference)
        lines.append(f"  t={lo:>10.1f} |{bar} {average:.4g}")
    return "\n".join(lines)


def render_event_rate(
    event_times: Sequence[float],
    *,
    title: str,
    window: float,
    t_end: float | None = None,
    width: int = 48,
    bins: int = 24,
) -> str:
    """Render an event stream (drops, preemptions) as a rate-vs-time chart.

    Wraps :func:`repro.telemetry.timeseries.windowed_rate`: each bar is
    the sliding-window event rate probed at that time.
    """
    from repro.telemetry.timeseries import windowed_rate

    if t_end is None:
        t_end = event_times[-1] if len(event_times) else 0.0
    if t_end <= 0 or not len(event_times):
        return f"# {title}\n  (no events)"
    series = windowed_rate(event_times, window=window, t_end=t_end, n_points=bins)
    peak = max(series.values)
    lines = [
        f"# {title}",
        f"  (events per time unit over a {window:g}-unit window; "
        f"bar = {width} cells at {peak:.4g})",
    ]
    for t, rate in zip(series.times, series.values):
        bar = _bar_with_mark(rate, peak, width, None)
        lines.append(f"  t={t:>10.1f} |{bar} {rate:.4g}")
    return "\n".join(lines)
