"""Terminal charts: render an ExperimentTable as ASCII art.

The paper communicates through figures; in a terminal-only
environment the closest faithful rendering is a scaled bar chart per
series.  :func:`render_chart` draws one horizontal bar block per swept
x value and series, scaled to the table's maximum, so the figure's
*shape* (who dominates, where curves converge) is visible at a glance
without matplotlib.
"""

from __future__ import annotations

from repro.analysis.records import ExperimentTable

__all__ = ["render_chart"]

_BAR = "█"
_HALF = "▌"


def render_chart(
    table: ExperimentTable,
    width: int = 48,
    log_scale: bool = False,
) -> str:
    """Render the table as grouped horizontal bars.

    Parameters
    ----------
    table:
        The experiment table to draw.
    width:
        Width of the longest bar, in character cells.
    log_scale:
        Scale bar lengths by log10(1 + value) instead of value; useful
        when series span orders of magnitude (e.g. Figure 2(a)).
    """
    if width < 4:
        raise ValueError(f"chart width must be at least 4, got {width}")
    if not table.series:
        raise ValueError("table has no series to draw")

    def scale(value: float) -> float:
        if value < 0:
            raise ValueError("bar charts need non-negative values")
        if log_scale:
            import math

            return math.log10(1.0 + value)
        return value

    peak = max(scale(v) for series in table.series for v in series.y_values)
    label_width = max(len(series.label) for series in table.series)
    lines = [
        f"# {table.title}",
        f"  ({table.y_label}"
        + (", log scale" if log_scale else "")
        + f"; bar = {width} cells at max)",
    ]
    for i, x in enumerate(table.x_values):
        lines.append(f"{table.x_label} = {x:g}")
        for series in table.series:
            value = series.y_values[i]
            cells = 0.0 if peak == 0 else scale(value) / peak * width
            whole = int(cells)
            bar = _BAR * whole + (_HALF if cells - whole >= 0.5 else "")
            lines.append(f"  {series.label:>{label_width}} |{bar} {value:.4g}")
    return "\n".join(lines)
