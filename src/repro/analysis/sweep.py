"""Parameter sweeps and seed replication.

Both entry points route through the ambient
:class:`~repro.runtime.executors.Executor`, so ``use_runtime(jobs=N)``
parallelizes every experiment driver without per-driver changes.  The
executor contract is an order-preserving map over independent items;
simulations derive all randomness from their configuration's seed via
named RNG streams, so results are identical under any worker count.

When the active context carries a retry policy or a checkpoint
journal, the sweep instead routes through
:func:`repro.runtime.supervisor.supervised_map`, which adds per-item
timeouts, bounded retries with quarantine, mid-sweep degradation to
serial, and journal-backed resume -- still order-preserving, still
bit-identical for every cell that succeeds.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.analysis.stats import SummaryStats, summarize
from repro.runtime.context import current_runtime
from repro.runtime.supervisor import supervised_map

__all__ = ["sweep", "replicate", "ReplicationError"]

T = TypeVar("T")
R = TypeVar("R")


class ReplicationError(RuntimeError):
    """One replication failed; carries the offending seed."""

    def __init__(self, seed: int, cause: BaseException) -> None:
        super().__init__(
            f"replication with seed {seed} failed: {cause!r}"
        )
        self.seed = seed


def sweep(
    parameter_values: Sequence[T],
    run_one: Callable[[T], R],
) -> list[R]:
    """Evaluate ``run_one`` at every swept parameter value, in order.

    Thin but load-bearing: every experiment driver funnels its sweep
    through here, so the active runtime's executor (serial or process
    pool) and result cache apply to all of them at once.
    """
    if not parameter_values:
        raise ValueError("sweep needs at least one parameter value")
    return supervised_map(run_one, list(parameter_values), current_runtime())


def replicate(
    n_replications: int,
    run_one: Callable[[int], float],
    base_seed: int = 0,
    confidence: float = 0.95,
) -> SummaryStats:
    """Run ``run_one(seed)`` under distinct seeds and summarize.

    Seeds are ``base_seed, base_seed + 1, ...`` so replication sets are
    reproducible and disjoint across experiments using different bases.
    A failing replication raises :class:`ReplicationError` naming the
    seed, so the offending run can be reproduced in isolation.
    """
    if n_replications < 1:
        raise ValueError(f"need at least 1 replication, got {n_replications}")

    def run_guarded(seed: int) -> float:
        try:
            return run_one(seed)
        except Exception as exc:
            raise ReplicationError(seed, exc) from exc

    seeds = [base_seed + i for i in range(n_replications)]
    # The journal label must name the caller's fn, not the shared
    # run_guarded wrapper, or distinct experiments replicating over the
    # same seed range would collide on one journal file.
    label = (
        f"replicate:{getattr(run_one, '__module__', '?')}."
        f"{getattr(run_one, '__qualname__', repr(run_one))}"
    )
    values = supervised_map(run_guarded, seeds, current_runtime(), label=label)
    if any(value is None for value in values):
        values = [value for value in values if value is not None]
        if not values:
            raise ReplicationError(base_seed, RuntimeError("every replication was quarantined"))
    return summarize(values, confidence=confidence)
