"""Parameter sweeps and seed replication."""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

from repro.analysis.stats import SummaryStats, summarize

__all__ = ["sweep", "replicate"]

T = TypeVar("T")


def sweep(
    parameter_values: Sequence[float],
    run_one: Callable[[float], T],
) -> list[T]:
    """Evaluate ``run_one`` at every swept parameter value, in order.

    Thin but load-bearing: every experiment driver funnels its sweep
    through here, so instrumentation (progress, caching) has a single
    seam.
    """
    if not parameter_values:
        raise ValueError("sweep needs at least one parameter value")
    return [run_one(value) for value in parameter_values]


def replicate(
    n_replications: int,
    run_one: Callable[[int], float],
    base_seed: int = 0,
    confidence: float = 0.95,
) -> SummaryStats:
    """Run ``run_one(seed)`` under distinct seeds and summarize.

    Seeds are ``base_seed, base_seed + 1, ...`` so replication sets are
    reproducible and disjoint across experiments using different bases.
    """
    if n_replications < 1:
        raise ValueError(f"need at least 1 replication, got {n_replications}")
    values = [run_one(base_seed + i) for i in range(n_replications)]
    return summarize(values, confidence=confidence)
