"""Experiment plumbing: statistics, sweeps and table formatting.

The experiment drivers in :mod:`repro.experiments` produce *series*
(metric vs swept parameter, one per evaluated scheme); this package
holds the shared machinery: replication statistics with confidence
intervals, the parameter-sweep runner, and plain-text table rendering
used by the benchmark harnesses to print paper-style rows.
"""

from repro.analysis.charts import render_chart
from repro.analysis.records import ExperimentSeries, ExperimentTable
from repro.analysis.stats import SummaryStats, bootstrap_ci, summarize
from repro.analysis.sweep import replicate, sweep

__all__ = [
    "ExperimentSeries",
    "ExperimentTable",
    "SummaryStats",
    "summarize",
    "bootstrap_ci",
    "sweep",
    "replicate",
    "render_chart",
]
