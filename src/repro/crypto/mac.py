"""CBC-MAC message authentication.

TinySec authenticates each packet with a CBC-MAC under a dedicated MAC
key.  We implement the length-prepended variant, which is secure for
variable-length messages (plain CBC-MAC is only secure for fixed-length
input): the first block MACed is the message length, so no message can
be a prefix-extension of another.
"""

from __future__ import annotations

import hmac

from repro.crypto.speck import Speck64_128

__all__ = ["CbcMac"]


class CbcMac:
    """Length-prepended CBC-MAC over Speck64/128.

    Examples
    --------
    >>> mac = CbcMac(bytes(16))
    >>> tag = mac.tag(b"hello")
    >>> mac.verify(b"hello", tag)
    True
    >>> mac.verify(b"hellp", tag)
    False
    """

    tag_size = 8

    def __init__(self, key: bytes) -> None:
        self._cipher = Speck64_128(key)

    def tag(self, message: bytes) -> bytes:
        """Compute the 8-byte authentication tag of ``message``."""
        block_size = self._cipher.block_size
        padded = message + b"\x00" * (-len(message) % block_size)
        state = self._cipher.encrypt_block(len(message).to_bytes(block_size, "little"))
        for offset in range(0, len(padded), block_size):
            block = padded[offset : offset + block_size]
            state = self._cipher.encrypt_block(
                bytes(s ^ b for s, b in zip(state, block))
            )
        return state

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Constant-time check that ``tag`` authenticates ``message``."""
        return hmac.compare_digest(self.tag(message), tag)
