"""Application-payload sealing: what the adversary cannot read.

The paper's packet payload carries "application-level information, such
as the sensor reading, application sequence number, and the time-stamp
associated with the sensor reading", protected by conventional
encryption (Section 2).  :class:`PayloadCodec` serializes exactly those
three fields, encrypts them with the node's CTR key and authenticates
ciphertext + header context with the node's MAC key (encrypt-then-MAC).

The simulator attaches a :class:`SealedPayload` to every packet; the
sink decrypts it to recover ground-truth creation times, while adversary
implementations are *only handed the cleartext header and arrival time*.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.keys import KeyManager
from repro.crypto.mac import CbcMac
from repro.crypto.modes import CtrCipher

__all__ = ["SensorReading", "SealedPayload", "PayloadCodec"]

_FORMAT = struct.Struct("<dId")  # creation timestamp, app seq, reading value


@dataclass(frozen=True)
class SensorReading:
    """Plaintext application payload of one sensor packet."""

    created_at: float
    app_seq: int
    value: float

    def pack(self) -> bytes:
        """Serialize to the fixed wire format."""
        return _FORMAT.pack(self.created_at, self.app_seq, self.value)

    @classmethod
    def unpack(cls, raw: bytes) -> "SensorReading":
        """Inverse of :meth:`pack`."""
        created_at, app_seq, value = _FORMAT.unpack(raw)
        return cls(created_at=created_at, app_seq=app_seq, value=value)


@dataclass(frozen=True)
class SealedPayload:
    """Encrypted-and-authenticated payload as carried on the wire."""

    origin_id: int
    nonce: int
    ciphertext: bytes
    tag: bytes


class PayloadCodec:
    """Seals and opens sensor payloads using per-node derived keys."""

    def __init__(self, key_manager: KeyManager) -> None:
        self._keys = key_manager
        self._ctr_cache: dict[int, CtrCipher] = {}
        self._mac_cache: dict[int, CbcMac] = {}

    def seal(self, origin_id: int, reading: SensorReading) -> SealedPayload:
        """Encrypt ``reading`` under node ``origin_id``'s keys.

        The nonce is the application sequence number, which the source
        increments per packet, guaranteeing nonce uniqueness per key.
        """
        nonce = reading.app_seq & 0xFFFFFFFF
        ciphertext = self._ctr(origin_id).encrypt(reading.pack(), nonce)
        tag = self._mac(origin_id).tag(self._mac_context(origin_id, nonce, ciphertext))
        return SealedPayload(
            origin_id=origin_id, nonce=nonce, ciphertext=ciphertext, tag=tag
        )

    def open(self, payload: SealedPayload) -> SensorReading:
        """Verify and decrypt a sealed payload (the sink's operation).

        Raises
        ------
        ValueError
            If the authentication tag does not verify.
        """
        context = self._mac_context(
            payload.origin_id, payload.nonce, payload.ciphertext
        )
        if not self._mac(payload.origin_id).verify(context, payload.tag):
            raise ValueError(
                f"MAC verification failed for packet from node {payload.origin_id}"
            )
        raw = self._ctr(payload.origin_id).decrypt(payload.ciphertext, payload.nonce)
        return SensorReading.unpack(raw)

    # ------------------------------------------------------------------
    @staticmethod
    def _mac_context(origin_id: int, nonce: int, ciphertext: bytes) -> bytes:
        return origin_id.to_bytes(8, "little") + nonce.to_bytes(4, "little") + ciphertext

    def _ctr(self, node_id: int) -> CtrCipher:
        cipher = self._ctr_cache.get(node_id)
        if cipher is None:
            cipher = CtrCipher(self._keys.node_keys(node_id).encryption_key)
            self._ctr_cache[node_id] = cipher
        return cipher

    def _mac(self, node_id: int) -> CbcMac:
        mac = self._mac_cache.get(node_id)
        if mac is None:
            mac = CbcMac(self._keys.node_keys(node_id).mac_key)
            self._mac_cache[node_id] = mac
        return mac
