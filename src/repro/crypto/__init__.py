"""Lightweight sensor-grade cryptography substrate.

The paper's network model assumes *encrypted payloads* (sensor reading,
application sequence number, creation timestamp) and *cleartext routing
headers* -- the adversary "is not able to decipher packet contents by
decrypting the payloads, and hence ... must infer packet creation times
solely from network knowledge and the time it witnesses a packet"
(Section 2).  So that this is a real property of the simulated packets
rather than an assumption, this subpackage implements the kind of
symmetric primitives that run on motes (SPINS / TinySec lineage):

* :class:`~repro.crypto.speck.Speck64_128` -- the Speck64/128 block
  cipher (an ARX design sized for constrained devices),
* :func:`~repro.crypto.modes.ctr_keystream` /
  :class:`~repro.crypto.modes.CtrCipher` -- counter-mode encryption,
* :class:`~repro.crypto.mac.CbcMac` -- CBC-MAC authentication tags,
* :class:`~repro.crypto.keys.KeyManager` -- per-node keys derived from
  a network master key (the SPINS model of sink-shared pairwise keys).

None of this is intended for real-world security use; it exists so the
simulated adversary genuinely cannot read payload timestamps.
"""

from repro.crypto.keys import KeyManager, NodeKeys
from repro.crypto.mac import CbcMac
from repro.crypto.modes import CtrCipher, ctr_keystream
from repro.crypto.payload import PayloadCodec, SealedPayload, SensorReading
from repro.crypto.speck import Speck64_128

__all__ = [
    "Speck64_128",
    "CtrCipher",
    "ctr_keystream",
    "CbcMac",
    "KeyManager",
    "NodeKeys",
    "PayloadCodec",
    "SealedPayload",
    "SensorReading",
]
