"""Per-node key management.

SPINS (Perrig et al., 2002) gives every node a key shared with the base
station, derived from a network master secret.  We model that directly:
the sink holds the master key and derives each node's encryption and
MAC keys as ``F(master, node_id || purpose)`` where ``F`` is a CBC-MAC
used as a PRF.  Nodes store only their own two keys; the sink (and the
test harness) can re-derive any of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.mac import CbcMac

__all__ = ["NodeKeys", "KeyManager"]


@dataclass(frozen=True)
class NodeKeys:
    """The symmetric key material held by a single sensor node."""

    node_id: int
    encryption_key: bytes
    mac_key: bytes


class KeyManager:
    """Derives per-node keys from a 16-byte network master key.

    Examples
    --------
    >>> manager = KeyManager(master_key=bytes(16))
    >>> keys = manager.node_keys(42)
    >>> keys == manager.node_keys(42)          # deterministic
    True
    >>> keys.encryption_key != manager.node_keys(43).encryption_key
    True
    """

    key_size = 16

    def __init__(self, master_key: bytes) -> None:
        if len(master_key) != self.key_size:
            raise ValueError(
                f"master key must be {self.key_size} bytes, got {len(master_key)}"
            )
        self._prf = CbcMac(master_key)
        self._cache: dict[int, NodeKeys] = {}

    def node_keys(self, node_id: int) -> NodeKeys:
        """Return (deriving and caching on first use) node ``node_id``'s keys."""
        if node_id < 0:
            raise ValueError(f"node id must be non-negative, got {node_id}")
        keys = self._cache.get(node_id)
        if keys is None:
            keys = NodeKeys(
                node_id=node_id,
                encryption_key=self._derive(node_id, purpose=b"enc"),
                mac_key=self._derive(node_id, purpose=b"mac"),
            )
            self._cache[node_id] = keys
        return keys

    def _derive(self, node_id: int, purpose: bytes) -> bytes:
        label = node_id.to_bytes(8, "little") + purpose
        # Two PRF invocations give the 16 bytes a Speck key needs.
        return self._prf.tag(label + b"/0") + self._prf.tag(label + b"/1")
