"""Block-cipher modes of operation: counter (CTR) mode.

CTR mode is the natural choice for sensor payloads: it needs only the
*encrypt* direction of the block cipher, tolerates arbitrary payload
lengths without padding, and the (node id, sequence number) pair gives
a ready-made nonce -- this is exactly the construction TinySec-style
link layers use.
"""

from __future__ import annotations

from repro.crypto.speck import Speck64_128

__all__ = ["ctr_keystream", "CtrCipher"]


def ctr_keystream(cipher: Speck64_128, nonce: int, length: int) -> bytes:
    """Generate ``length`` keystream bytes for the given 32-bit nonce.

    The counter block is ``nonce || counter`` packed into the cipher's
    8-byte block (both 32-bit, little-endian).
    """
    if length < 0:
        raise ValueError("keystream length must be non-negative")
    if not 0 <= nonce < 2**32:
        raise ValueError(f"nonce must fit in 32 bits, got {nonce!r}")
    blocks = []
    for counter in range((length + cipher.block_size - 1) // cipher.block_size):
        block = nonce.to_bytes(4, "little") + counter.to_bytes(4, "little")
        blocks.append(cipher.encrypt_block(block))
    return b"".join(blocks)[:length]


class CtrCipher:
    """Counter-mode encryption bound to one key.

    Examples
    --------
    >>> ctr = CtrCipher(bytes(16))
    >>> msg = b"reading @ t=17.25"
    >>> ctr.decrypt(ctr.encrypt(msg, nonce=5), nonce=5) == msg
    True
    """

    def __init__(self, key: bytes) -> None:
        self._cipher = Speck64_128(key)

    def encrypt(self, plaintext: bytes, nonce: int) -> bytes:
        """Encrypt ``plaintext`` under ``nonce``.

        The caller must never reuse a nonce under the same key; the
        :class:`~repro.crypto.keys.KeyManager` derives nonces from
        monotonically increasing application sequence numbers.
        """
        stream = ctr_keystream(self._cipher, nonce, len(plaintext))
        return bytes(p ^ s for p, s in zip(plaintext, stream))

    def decrypt(self, ciphertext: bytes, nonce: int) -> bytes:
        """Decrypt (CTR decryption is encryption with the same stream)."""
        return self.encrypt(ciphertext, nonce)
