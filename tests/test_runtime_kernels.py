"""Vectorized kernels agree with their scalar oracles (<= 1e-9).

In practice every comparison here is *exactly* equal -- the batch
kernels perform the same IEEE-754 operations in the same per-element
order as the scalar code -- but the contract asserted is the issue's
1e-9 bound.
"""

import numpy as np
import pytest
from scipy.spatial import cKDTree

from repro.experiments.common import build_adversary, run_paper_case
from repro.experiments.fig3 import paper_path_aware_adversary
from repro.infotheory import batch
from repro.infotheory.entropy import (
    erlang_entropy,
    exponential_entropy,
    gaussian_entropy,
    gaussian_mutual_information,
    uniform_entropy,
)
from repro.infotheory.estimators import (
    _marginal_neighbor_counts,
    _marginal_neighbor_counts_scalar,
)
from repro.infotheory.mmse import mmse_lower_bound_from_mi
from repro.queueing.erlang import erlang_b
from repro.runtime import kernels

TOL = 1e-9


@pytest.fixture(scope="module")
def rcad_observations():
    return run_paper_case(2.0, "rcad", n_packets=200, seed=3).observations


class TestAdversaryKernels:
    @pytest.mark.parametrize("kind", ["naive", "baseline", "adaptive"])
    def test_estimate_all_matches_scalar(self, rcad_observations, kind):
        vectorized = build_adversary(kind, "rcad")
        scalar = build_adversary(kind, "rcad")
        v = vectorized.estimate_all(rcad_observations)
        s = scalar.estimate_all_scalar(rcad_observations)
        assert len(v) == len(s)
        assert max(abs(a - b) for a, b in zip(v, s)) <= TOL

    def test_path_aware_matches_scalar(self, rcad_observations):
        v = paper_path_aware_adversary(2.0).estimate_all(rcad_observations)
        s = paper_path_aware_adversary(2.0).estimate_all_scalar(rcad_observations)
        assert max(abs(a - b) for a, b in zip(v, s)) <= TOL

    def test_adaptive_batch_after_scalar_prefix(self, rcad_observations):
        # Mixing the scalar and batch paths must agree with pure scalar:
        # the batch carries the adaptive adversary's prior state.
        mixed = build_adversary("adaptive", "rcad")
        prefix = [mixed.estimate(o) for o in rcad_observations[:50]]
        suffix = mixed.estimate_all(rcad_observations[50:])

        scalar = build_adversary("adaptive", "rcad")
        reference = scalar.estimate_all_scalar(rcad_observations)
        combined = prefix + suffix
        assert max(abs(a - b) for a, b in zip(combined, reference)) <= TOL

    def test_out_of_order_arrivals_rejected(self, rcad_observations):
        adversary = build_adversary("baseline", "rcad")
        shuffled = list(rcad_observations)
        shuffled[0], shuffled[-1] = shuffled[-1], shuffled[0]
        with pytest.raises(ValueError):
            adversary.estimate_all(shuffled)


class TestErlangBatch:
    def test_matches_scalar_recursion(self):
        loads = np.linspace(0.0, 80.0, 333)
        batch_values = kernels.erlang_b_batch(loads, 10)
        scalar_values = [erlang_b(float(rho), 10) for rho in loads]
        assert max(abs(a - b) for a, b in zip(batch_values, scalar_values)) <= TOL

    def test_nan_propagates(self):
        out = kernels.erlang_b_batch(np.array([1.0, np.nan]), 5)
        assert not np.isnan(out[0]) and np.isnan(out[1])

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            kernels.erlang_b_batch(np.array([1.0, -0.5]), 5)


class TestEntropyBatch:
    def test_exponential(self):
        rates = np.array([0.01, 0.5, 1.0, 30.0])
        got = batch.exponential_entropy_batch(rates)
        want = [exponential_entropy(float(r)) for r in rates]
        assert max(abs(a - b) for a, b in zip(got, want)) <= TOL

    def test_uniform(self):
        widths = np.array([0.2, 1.0, 60.0])
        got = batch.uniform_entropy_batch(widths)
        want = [uniform_entropy(float(w)) for w in widths]
        assert max(abs(a - b) for a, b in zip(got, want)) <= TOL

    def test_gaussian(self):
        variances = np.array([0.1, 1.0, 900.0])
        got = batch.gaussian_entropy_batch(variances)
        want = [gaussian_entropy(float(v)) for v in variances]
        assert max(abs(a - b) for a, b in zip(got, want)) <= TOL

    def test_erlang(self):
        shapes = np.array([1, 2, 5, 40])
        rates = np.array([0.5, 1.0, 2.0, 30.0])
        got = batch.erlang_entropy_batch(shapes, rates)
        want = [
            erlang_entropy(int(k), float(r)) for k, r in zip(shapes, rates)
        ]
        assert max(abs(a - b) for a, b in zip(got, want)) <= TOL

    def test_gaussian_mi(self):
        signal = np.array([0.0, 1.0, 100.0])
        noise = np.array([1.0, 2.0, 3.0])
        got = batch.gaussian_mutual_information_batch(signal, noise)
        want = [
            gaussian_mutual_information(float(s), float(n))
            for s, n in zip(signal, noise)
        ]
        assert max(abs(a - b) for a, b in zip(got, want)) <= TOL

    def test_mmse_bound(self):
        h_x = np.array([0.0, 2.0, 5.0])
        mi = np.array([0.0, 1.0, 4.5])
        got = batch.mmse_lower_bound_from_mi_batch(h_x, mi)
        want = [
            mmse_lower_bound_from_mi(float(h), float(m))
            for h, m in zip(h_x, mi)
        ]
        assert max(abs(a - b) for a, b in zip(got, want)) <= TOL

    def test_domain_checks(self):
        with pytest.raises(ValueError):
            batch.exponential_entropy_batch(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            batch.erlang_entropy_batch(np.array([0]), np.array([1.0]))
        with pytest.raises(ValueError):
            batch.mmse_lower_bound_from_mi_batch(np.array([1.0]), np.array([-0.1]))


class TestKsgNeighborCounts:
    def test_batched_counts_match_loop(self):
        rng = np.random.Generator(np.random.PCG64(7))
        points = rng.standard_normal(300)
        radii = np.abs(rng.standard_normal(300)) * 0.5 + 1e-3
        tree = cKDTree(points[:, None])
        fast = _marginal_neighbor_counts(tree, points, radii)
        slow = _marginal_neighbor_counts_scalar(tree, points, radii)
        assert np.array_equal(fast, slow)
