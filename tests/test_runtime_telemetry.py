"""Runtime-level telemetry: bit-identical aggregation under any jobs count."""

import json

import pytest

from repro.analysis.sweep import sweep
from repro.runtime import RetryPolicy, use_runtime
from repro.runtime.context import run_simulation
from repro.sim.config import SimulationConfig


def _config(seed):
    return SimulationConfig.paper_baseline(
        interarrival=4.0, case="rcad", n_packets=40, seed=seed
    )


def _sweep_mse(seeds, **runtime_kwargs):
    """Run one tiny sweep; returns (per-seed results, telemetry snapshot)."""
    with use_runtime(telemetry=True, **runtime_kwargs) as ctx:
        results = sweep(list(seeds), lambda s: run_simulation(_config(s)))
        snapshot = json.dumps(ctx.telemetry.snapshot(), sort_keys=True)
        run_keys = [k for k, _ in ctx.telemetry.runs]
    return results, snapshot, run_keys


class TestAggregation:
    def test_telemetry_disabled_by_default(self):
        with use_runtime() as ctx:
            result = run_simulation(_config(0))
        assert ctx.telemetry is None
        assert result.telemetry is None

    def test_enabled_context_forces_instrumentation(self):
        with use_runtime(telemetry=True) as ctx:
            result = run_simulation(_config(0))
        assert result.telemetry is not None
        assert ctx.telemetry.n_runs == 1

    def test_cache_hit_republishes_telemetry(self, tmp_path):
        from repro.runtime import ResultCache

        cache = ResultCache(tmp_path)
        with use_runtime(telemetry=True, cache=cache) as first:
            run_simulation(_config(0))
        with use_runtime(telemetry=True, cache=cache) as second:
            run_simulation(_config(0))
        assert cache.stats.hits == 1
        assert json.dumps(first.telemetry.snapshot(), sort_keys=True) == json.dumps(
            second.telemetry.snapshot(), sort_keys=True
        )

    def test_parallel_merge_is_bit_identical_to_serial(self):
        seeds = [0, 1, 2, 3, 4, 5]
        _, serial, serial_keys = _sweep_mse(seeds, jobs=1)
        _, parallel, parallel_keys = _sweep_mse(seeds, jobs=4)
        assert parallel == serial
        assert parallel_keys == serial_keys  # item order, not completion order

    def test_supervised_retry_merge_is_bit_identical(self):
        seeds = [0, 1, 2, 3, 4, 5]
        _, serial, _ = _sweep_mse(seeds, jobs=1)
        _, supervised, _ = _sweep_mse(
            seeds, jobs=4, retry=RetryPolicy(max_attempts=2)
        )
        assert supervised == serial

    def test_retried_item_publishes_once(self):
        """A failed attempt's captured telemetry must be discarded."""
        attempts = {"n": 0}

        def flaky(seed):
            attempts["n"] += 1
            result = run_simulation(_config(seed))
            if attempts["n"] == 1:
                raise RuntimeError("transient")
            return result

        with use_runtime(
            telemetry=True, retry=RetryPolicy(max_attempts=3, backoff=0.0)
        ) as ctx:
            sweep([0], flaky)
        assert attempts["n"] == 2
        assert ctx.telemetry.n_runs == 1


class TestRuntimeStats:
    def test_sim_seconds_accrue(self):
        with use_runtime(telemetry=True) as ctx:
            run_simulation(_config(0))
        assert ctx.stats.simulations == 1
        assert ctx.stats.sim_seconds > 0.0

    def test_sim_seconds_merge_from_workers(self):
        with use_runtime(telemetry=True, jobs=2) as ctx:
            sweep([0, 1, 2], lambda s: run_simulation(_config(s)))
        assert ctx.stats.simulations == 3
        assert ctx.stats.sim_seconds > 0.0

    def test_uses_monotonic_clock(self, monkeypatch):
        """Regression: a wall-clock step backwards must not yield a
        negative duration (context.py once mixed perf_counter/time)."""
        import repro.runtime.context as context_module

        ticks = iter([100.0, 100.5])
        monkeypatch.setattr(
            context_module.time, "monotonic", lambda: next(ticks)
        )
        stats = context_module.RuntimeStats()
        ctx = context_module.RuntimeContext(stats=stats)
        monkeypatch.setattr(
            context_module, "current_runtime", lambda: ctx
        )
        run_simulation(_config(0))
        assert stats.sim_seconds == pytest.approx(0.5)

    def test_stats_delta_and_merge_round_trip(self):
        from repro.runtime import RuntimeStats

        stats = RuntimeStats(simulations=2, sim_seconds=1.5)
        before = stats.snapshot()
        stats.simulations += 3
        stats.sim_seconds += 0.5
        delta = stats.delta_since(before)
        assert delta.simulations == 3
        assert delta.sim_seconds == pytest.approx(0.5)
        before.merge(delta)
        assert before.simulations == stats.simulations
        assert before.sim_seconds == pytest.approx(stats.sim_seconds)
