"""Unit tests for the fault-injection layer: plans, GE channel, injector."""

import numpy as np
import pytest

from repro.des.rng import RngRegistry
from repro.faults import (
    ArqSpec,
    BurstyLossSpec,
    CrashWindow,
    DuplicationSpec,
    FaultInjector,
    FaultPlan,
    GilbertElliottChannel,
    JitterSpec,
)


def _rng(seed=0):
    return np.random.Generator(np.random.PCG64(seed))


class TestSpecs:
    def test_bursty_loss_probability_bounds(self):
        with pytest.raises(ValueError):
            BurstyLossSpec(p_good_to_bad=1.5, p_bad_to_good=0.2, loss_bad=0.5)
        with pytest.raises(ValueError):
            BurstyLossSpec(p_good_to_bad=0.1, p_bad_to_good=-0.1, loss_bad=0.5)
        with pytest.raises(ValueError):
            BurstyLossSpec(p_good_to_bad=0.1, p_bad_to_good=0.2, loss_bad=2.0)

    def test_absorbing_lossless_bad_state_rejected(self):
        # The chain would wedge in a "bad" state that never drops
        # anything: a spec that can never act is a configuration bug.
        with pytest.raises(ValueError):
            BurstyLossSpec(p_good_to_bad=0.1, p_bad_to_good=0.0, loss_bad=0.0)

    def test_bursty_loss_noop(self):
        assert BurstyLossSpec(0.0, 0.5, loss_bad=0.9).is_noop
        assert BurstyLossSpec(0.5, 0.5, loss_bad=0.0).is_noop
        assert not BurstyLossSpec(0.5, 0.5, loss_bad=0.9).is_noop
        assert not BurstyLossSpec(0.0, 0.5, loss_bad=0.0, loss_good=0.1).is_noop

    def test_jitter_validation_and_noop(self):
        with pytest.raises(ValueError):
            JitterSpec(amplitude=-0.5)
        assert JitterSpec(amplitude=0.0).is_noop
        assert not JitterSpec(amplitude=0.3).is_noop

    def test_duplication_validation_and_noop(self):
        with pytest.raises(ValueError):
            DuplicationSpec(probability=1.2)
        assert DuplicationSpec(probability=0.0).is_noop
        assert not DuplicationSpec(probability=0.1).is_noop

    def test_crash_window_validation(self):
        with pytest.raises(ValueError):
            CrashWindow(node=5, start=-1.0, end=10.0)
        with pytest.raises(ValueError):
            CrashWindow(node=5, start=10.0, end=10.0)
        with pytest.raises(ValueError):
            CrashWindow(node=5, start=10.0, end=5.0)

    def test_crash_window_covers(self):
        window = CrashWindow(node=5, start=10.0, end=20.0)
        assert not window.covers(9.99)
        assert window.covers(10.0)
        assert window.covers(19.99)
        assert not window.covers(20.0)

    def test_crash_window_defaults_to_never_recovering(self):
        window = CrashWindow(node=5, start=10.0)
        assert window.covers(1e12)

    def test_arq_spec_backoff_schedule(self):
        spec = ArqSpec(timeout=2.0, max_retries=3, backoff=2.0)
        assert spec.timeout_for(0) == 2.0
        assert spec.timeout_for(2) == 8.0
        assert spec.total_attempts() == 4


class TestFaultPlan:
    def test_empty_plan_is_noop(self):
        assert FaultPlan().is_noop

    def test_zeroed_specs_are_noop(self):
        plan = FaultPlan(
            bursty_loss=BurstyLossSpec(0.0, 0.5, loss_bad=0.9),
            jitter=JitterSpec(0.0),
            duplication=DuplicationSpec(0.0),
        )
        assert plan.is_noop

    def test_any_active_family_defeats_noop(self):
        assert not FaultPlan(jitter=JitterSpec(0.1)).is_noop
        assert not FaultPlan(crashes=(CrashWindow(node=3, start=1.0),)).is_noop
        assert not FaultPlan(arq=ArqSpec()).is_noop

    def test_crashes_coerced_to_tuple(self):
        plan = FaultPlan(crashes=[CrashWindow(node=3, start=1.0, end=2.0)])
        assert isinstance(plan.crashes, tuple)

    def test_overlapping_windows_same_node_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(
                crashes=(
                    CrashWindow(node=3, start=0.0, end=10.0),
                    CrashWindow(node=3, start=5.0, end=15.0),
                )
            )

    def test_disjoint_windows_allowed(self):
        plan = FaultPlan(
            crashes=(
                CrashWindow(node=3, start=0.0, end=10.0),
                CrashWindow(node=3, start=10.0, end=15.0),
                CrashWindow(node=4, start=5.0, end=12.0),
            )
        )
        assert plan.crash_nodes() == {3, 4}

    def test_describe_mentions_active_families(self):
        assert FaultPlan().describe() == "no faults"
        text = FaultPlan(
            jitter=JitterSpec(0.5), arq=ArqSpec(timeout=4.0)
        ).describe()
        assert "jitter" in text and "ARQ" in text


class TestGilbertElliottChannel:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(1.5, 0.5, 0.0, 0.9, _rng())

    def test_steady_state_loss_formula(self):
        chan = GilbertElliottChannel(0.1, 0.3, 0.02, 0.8, _rng())
        pi_bad = 0.1 / 0.4
        assert chan.steady_state_loss() == pytest.approx(
            (1 - pi_bad) * 0.02 + pi_bad * 0.8
        )

    def test_long_run_loss_matches_steady_state(self):
        chan = GilbertElliottChannel(0.05, 0.25, 0.0, 0.6, _rng(3))
        n = 60_000
        lost = sum(not chan.delivers() for _ in range(n))
        assert lost / n == pytest.approx(chan.steady_state_loss(), abs=0.01)

    def test_losses_are_bursty(self):
        """Losses cluster: P(loss | previous loss) >> marginal loss rate."""
        chan = GilbertElliottChannel(0.02, 0.2, 0.0, 1.0, _rng(5))
        outcomes = [chan.delivers() for _ in range(40_000)]
        losses = sum(not ok for ok in outcomes)
        repeats = sum(
            1
            for prev, cur in zip(outcomes, outcomes[1:])
            if not prev and not cur
        )
        conditional = repeats / losses
        marginal = losses / len(outcomes)
        assert conditional > 3 * marginal

    def test_mean_burst_length(self):
        assert GilbertElliottChannel(0.1, 0.25, 0.0, 1.0, _rng()).mean_burst_length() == 4.0
        assert GilbertElliottChannel(0.1, 0.0, 0.0, 1.0, _rng()).mean_burst_length() == float("inf")

    def test_never_leaves_good_state_when_p_gb_zero(self):
        chan = GilbertElliottChannel(0.0, 0.5, 0.0, 1.0, _rng())
        assert all(chan.delivers() for _ in range(1000))
        assert chan.transitions_to_bad == 0
        assert chan.steady_state_loss() == 0.0


class TestFaultInjector:
    def _plan(self):
        return FaultPlan(
            bursty_loss=BurstyLossSpec(0.1, 0.3, loss_bad=0.7),
            jitter=JitterSpec(0.5),
            duplication=DuplicationSpec(0.2),
        )

    def test_channels_cached_per_sender(self):
        injector = FaultInjector(self._plan(), RngRegistry(seed=1))
        assert injector.channel_for(3) is injector.channel_for(3)
        assert injector.channel_for(3) is not injector.channel_for(4)

    def test_noop_families_sample_nothing(self):
        injector = FaultInjector(FaultPlan(), RngRegistry(seed=1))
        assert injector.channel_for(3) is None
        assert injector.link_delivers(3) is True
        assert injector.sample_jitter() == 0.0
        assert injector.duplicates() is False

    def test_reproducible_across_instances(self):
        a = FaultInjector(self._plan(), RngRegistry(seed=7))
        b = FaultInjector(self._plan(), RngRegistry(seed=7))
        assert [a.link_delivers(2) for _ in range(200)] == [
            b.link_delivers(2) for _ in range(200)
        ]
        assert [a.sample_jitter() for _ in range(50)] == [
            b.sample_jitter() for _ in range(50)
        ]
        assert [a.duplicates() for _ in range(50)] == [
            b.duplicates() for _ in range(50)
        ]

    def test_senders_draw_independent_streams(self):
        injector = FaultInjector(self._plan(), RngRegistry(seed=7))
        a = [injector.link_delivers(2) for _ in range(200)]
        b = [injector.link_delivers(9) for _ in range(200)]
        assert a != b

    def test_jitter_bounded_by_amplitude(self):
        injector = FaultInjector(self._plan(), RngRegistry(seed=2))
        draws = [injector.sample_jitter() for _ in range(500)]
        assert all(0.0 <= d < 0.5 for d in draws)

    def test_loss_counter_tracks_failures(self):
        injector = FaultInjector(self._plan(), RngRegistry(seed=4))
        failures = sum(not injector.link_delivers(1) for _ in range(1000))
        assert injector.link_losses == failures > 0

    def test_crash_state_machine(self):
        injector = FaultInjector(FaultPlan(), RngRegistry(seed=0))
        assert not injector.is_crashed(5)
        injector.mark_crashed(5)
        assert injector.is_crashed(5)
        assert injector.crashed_nodes == frozenset({5})
        injector.mark_recovered(5)
        assert not injector.is_crashed(5)
