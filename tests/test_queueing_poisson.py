"""Unit tests for Poisson process utilities."""

import numpy as np
import pytest

from repro.queueing.poisson import (
    PoissonProcess,
    interarrival_cv2,
    merge_poisson_rates,
    sample_poisson_arrivals,
    thin_poisson_rate,
)


class TestSampling:
    def test_count_matches_rate(self, rng):
        arrivals = sample_poisson_arrivals(rate=2.0, horizon=5000.0, rng=rng)
        assert arrivals.size == pytest.approx(10000, rel=0.05)

    def test_arrivals_sorted_and_in_window(self, rng):
        arrivals = sample_poisson_arrivals(rate=1.0, horizon=100.0, rng=rng)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals.min() >= 0.0 and arrivals.max() < 100.0

    def test_interarrival_cv2_near_one(self, rng):
        arrivals = sample_poisson_arrivals(rate=1.0, horizon=20000.0, rng=rng)
        assert interarrival_cv2(arrivals) == pytest.approx(1.0, abs=0.1)

    def test_zero_rate_gives_no_arrivals(self, rng):
        assert sample_poisson_arrivals(0.0, 100.0, rng).size == 0

    def test_zero_horizon_gives_no_arrivals(self, rng):
        assert sample_poisson_arrivals(1.0, 0.0, rng).size == 0

    def test_negative_inputs_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_poisson_arrivals(-1.0, 10.0, rng)
        with pytest.raises(ValueError):
            sample_poisson_arrivals(1.0, -10.0, rng)


class TestRateAlgebra:
    def test_merge_sums_rates(self):
        assert merge_poisson_rates([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_merge_empty_is_zero(self):
        assert merge_poisson_rates([]) == 0.0

    def test_merge_rejects_negative(self):
        with pytest.raises(ValueError):
            merge_poisson_rates([0.1, -0.2])

    def test_thinning(self):
        assert thin_poisson_rate(2.0, 0.25) == pytest.approx(0.5)

    def test_thinning_bounds(self):
        with pytest.raises(ValueError):
            thin_poisson_rate(1.0, 1.5)
        with pytest.raises(ValueError):
            thin_poisson_rate(-1.0, 0.5)


class TestPoissonProcess:
    def test_mean_interarrival(self):
        assert PoissonProcess(rate=0.5).mean_interarrival == 2.0

    def test_count_pmf_sums_to_one(self):
        process = PoissonProcess(rate=0.5)
        total = sum(process.count_pmf(n, horizon=10.0) for n in range(100))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_count_pmf_known_value(self):
        # Poisson(2) at n=3: 2^3 e^-2 / 3! = 0.18044...
        assert PoissonProcess(rate=0.5).count_pmf(3, horizon=4.0) == pytest.approx(
            0.180447, abs=1e-5
        )

    def test_count_pmf_negative_is_zero(self):
        assert PoissonProcess(rate=1.0).count_pmf(-1, horizon=1.0) == 0.0

    def test_count_mean(self):
        assert PoissonProcess(rate=0.25).count_mean(horizon=8.0) == 2.0

    def test_interarrival_pdf(self):
        process = PoissonProcess(rate=2.0)
        assert process.interarrival_pdf(0.0) == pytest.approx(2.0)
        assert process.interarrival_pdf(-1.0) == 0.0

    def test_erlang_creation_time_mean(self):
        # X_j has mean j / lambda (Section 3.2).
        assert PoissonProcess(rate=0.5).erlang_creation_time_mean(10) == 20.0

    def test_erlang_creation_time_rejects_zero(self):
        with pytest.raises(ValueError):
            PoissonProcess(rate=1.0).erlang_creation_time_mean(0)

    def test_superpose(self):
        merged = PoissonProcess(0.1).superpose(PoissonProcess(0.2), PoissonProcess(0.3))
        assert merged.rate == pytest.approx(0.6)

    def test_sample_delegates(self, rng):
        samples = PoissonProcess(rate=1.0).sample(horizon=100.0, rng=rng)
        assert samples.size > 50

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonProcess(rate=0.0)


class TestCv2Validation:
    def test_cv2_needs_three_points(self):
        with pytest.raises(ValueError):
            interarrival_cv2([1.0, 2.0])

    def test_cv2_of_periodic_is_zero(self):
        assert interarrival_cv2(np.arange(100.0)) == pytest.approx(0.0, abs=1e-12)

    def test_cv2_identical_times_rejected(self):
        with pytest.raises(ValueError):
            interarrival_cv2([5.0, 5.0, 5.0])
