"""Unit tests for key management and payload sealing."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.keys import KeyManager
from repro.crypto.payload import PayloadCodec, SensorReading

MASTER = bytes(range(16))


class TestKeyManager:
    def test_derivation_is_deterministic(self):
        assert KeyManager(MASTER).node_keys(5) == KeyManager(MASTER).node_keys(5)

    def test_nodes_get_distinct_keys(self):
        manager = KeyManager(MASTER)
        assert manager.node_keys(1).encryption_key != manager.node_keys(2).encryption_key
        assert manager.node_keys(1).mac_key != manager.node_keys(2).mac_key

    def test_enc_and_mac_keys_differ(self):
        keys = KeyManager(MASTER).node_keys(7)
        assert keys.encryption_key != keys.mac_key

    def test_key_sizes(self):
        keys = KeyManager(MASTER).node_keys(3)
        assert len(keys.encryption_key) == 16
        assert len(keys.mac_key) == 16

    def test_different_masters_different_keys(self):
        a = KeyManager(MASTER).node_keys(1)
        b = KeyManager(bytes(16)).node_keys(1)
        assert a.encryption_key != b.encryption_key

    def test_wrong_master_length_rejected(self):
        with pytest.raises(ValueError):
            KeyManager(bytes(8))

    def test_negative_node_id_rejected(self):
        with pytest.raises(ValueError):
            KeyManager(MASTER).node_keys(-1)

    def test_caching_returns_same_object(self):
        manager = KeyManager(MASTER)
        assert manager.node_keys(2) is manager.node_keys(2)


class TestSensorReading:
    def test_pack_unpack_roundtrip(self):
        reading = SensorReading(created_at=17.25, app_seq=3, value=-21.5)
        assert SensorReading.unpack(reading.pack()) == reading

    @given(
        st.floats(min_value=0, max_value=1e12, allow_nan=False),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    def test_roundtrip_property(self, created_at, seq, value):
        reading = SensorReading(created_at=created_at, app_seq=seq, value=value)
        restored = SensorReading.unpack(reading.pack())
        assert restored.created_at == created_at
        assert restored.app_seq == seq


class TestPayloadCodec:
    def _codec(self):
        return PayloadCodec(KeyManager(MASTER))

    def test_seal_open_roundtrip(self):
        codec = self._codec()
        reading = SensorReading(created_at=100.5, app_seq=7, value=3.14)
        assert codec.open(codec.seal(12, reading)) == reading

    def test_ciphertext_hides_timestamp(self):
        """The timestamp bytes must not appear in the sealed payload."""
        codec = self._codec()
        reading = SensorReading(created_at=12345.0, app_seq=1, value=0.0)
        sealed = codec.seal(3, reading)
        assert reading.pack() != sealed.ciphertext
        assert reading.pack()[:8] not in sealed.ciphertext

    def test_tampered_ciphertext_rejected(self):
        codec = self._codec()
        sealed = codec.seal(3, SensorReading(1.0, 0, 0.0))
        tampered = dataclasses.replace(
            sealed, ciphertext=bytes([sealed.ciphertext[0] ^ 1]) + sealed.ciphertext[1:]
        )
        with pytest.raises(ValueError):
            codec.open(tampered)

    def test_tampered_tag_rejected(self):
        codec = self._codec()
        sealed = codec.seal(3, SensorReading(1.0, 0, 0.0))
        tampered = dataclasses.replace(
            sealed, tag=bytes([sealed.tag[0] ^ 1]) + sealed.tag[1:]
        )
        with pytest.raises(ValueError):
            codec.open(tampered)

    def test_origin_spoofing_rejected(self):
        """Re-attributing a sealed payload to another node must fail."""
        codec = self._codec()
        sealed = codec.seal(3, SensorReading(1.0, 0, 0.0))
        spoofed = dataclasses.replace(sealed, origin_id=4)
        with pytest.raises(ValueError):
            codec.open(spoofed)

    def test_nonce_spoofing_rejected(self):
        codec = self._codec()
        sealed = codec.seal(3, SensorReading(1.0, 5, 0.0))
        spoofed = dataclasses.replace(sealed, nonce=6)
        with pytest.raises(ValueError):
            codec.open(spoofed)

    def test_same_reading_different_nodes_differ(self):
        codec = self._codec()
        reading = SensorReading(9.0, 2, 1.0)
        assert codec.seal(1, reading).ciphertext != codec.seal(2, reading).ciphertext

    def test_sequence_numbers_randomize_ciphertexts(self):
        """CTR nonces from app_seq make equal values unlinkable."""
        codec = self._codec()
        a = codec.seal(1, SensorReading(9.0, 1, 1.0))
        b = codec.seal(1, SensorReading(9.0, 2, 1.0))
        assert a.ciphertext != b.ciphertext
