"""Unit tests for closed-form entropies."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.infotheory.entropy import (
    erlang_entropy,
    exponential_entropy,
    gaussian_entropy,
    gaussian_mutual_information,
    max_entropy_nonnegative_is_exponential,
    uniform_entropy,
)


class TestClosedForms:
    def test_exponential_entropy_rate_one(self):
        assert exponential_entropy(1.0) == pytest.approx(1.0)

    def test_exponential_entropy_paper_delay(self):
        # 1/mu = 30 -> h = 1 + ln 30.
        assert exponential_entropy(1.0 / 30.0) == pytest.approx(1.0 + math.log(30.0))

    def test_exponential_entropy_grows_with_mean(self):
        assert exponential_entropy(0.1) > exponential_entropy(1.0)

    def test_uniform_entropy(self):
        assert uniform_entropy(math.e) == pytest.approx(1.0)
        assert uniform_entropy(1.0) == 0.0

    def test_gaussian_entropy_unit_variance(self):
        assert gaussian_entropy(1.0) == pytest.approx(
            0.5 * math.log(2 * math.pi * math.e)
        )

    def test_erlang_shape_one_is_exponential(self):
        for rate in (0.1, 1.0, 3.0):
            assert erlang_entropy(1, rate) == pytest.approx(exponential_entropy(rate))

    def test_erlang_entropy_matches_monte_carlo(self, rng):
        """Cross-check the digamma formula against a histogram estimate."""
        shape, rate = 4, 0.5
        samples = rng.gamma(shape, 1.0 / rate, size=200_000)
        hist, edges = np.histogram(samples, bins=300, density=True)
        widths = np.diff(edges)
        mask = hist > 0
        empirical = -np.sum(hist[mask] * np.log(hist[mask]) * widths[mask])
        assert erlang_entropy(shape, rate) == pytest.approx(empirical, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_entropy(0.0)
        with pytest.raises(ValueError):
            uniform_entropy(-1.0)
        with pytest.raises(ValueError):
            gaussian_entropy(0.0)
        with pytest.raises(ValueError):
            erlang_entropy(0, 1.0)
        with pytest.raises(ValueError):
            erlang_entropy(2, 0.0)


class TestGaussianMi:
    def test_known_value(self):
        assert gaussian_mutual_information(3.0, 1.0) == pytest.approx(
            0.5 * math.log(4.0)
        )

    def test_zero_signal_leaks_nothing(self):
        assert gaussian_mutual_information(0.0, 1.0) == 0.0

    def test_more_noise_less_leakage(self):
        assert gaussian_mutual_information(1.0, 10.0) < gaussian_mutual_information(
            1.0, 1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            gaussian_mutual_information(1.0, 0.0)
        with pytest.raises(ValueError):
            gaussian_mutual_information(-1.0, 1.0)

    @given(st.floats(min_value=0.01, max_value=100.0))
    def test_nonnegative_property(self, noise):
        assert gaussian_mutual_information(1.0, noise) >= 0.0


class TestMaxEntropyArgument:
    def test_exponential_beats_same_mean_uniform(self):
        """The paper's motivation: Exp is max-entropy among nonnegative
        laws of a given mean."""
        mean = 30.0
        candidates = {
            "uniform(0, 2m)": uniform_entropy(2 * mean),
            "erlang-2": erlang_entropy(2, 2 / mean),
            "erlang-5": erlang_entropy(5, 5 / mean),
        }
        assert max_entropy_nonnegative_is_exponential(mean, candidates)

    def test_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            max_entropy_nonnegative_is_exponential(0.0, {})

    @given(st.floats(min_value=0.1, max_value=100.0), st.integers(2, 10))
    def test_erlang_entropy_below_exponential_property(self, mean, shape):
        """Every same-mean Erlang is strictly below the exponential."""
        assert erlang_entropy(shape, shape / mean) < exponential_entropy(1.0 / mean)
