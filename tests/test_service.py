"""Unit tests for the streaming service (repro.service).

The container has no pytest-asyncio, so each test is a sync function
driving its own event loop via ``asyncio.run``.
"""

import asyncio
import time

import pytest

from repro.service import (
    DegradationLadder,
    MetricsServer,
    ServiceConfig,
    ServiceLoadGenerator,
    SnapshotEntry,
    StreamEvent,
    SubmitOutcome,
    TemporalPrivacyService,
    Tier,
    load_snapshot,
    render_prometheus,
    write_snapshot,
)
from repro.telemetry import MetricsRegistry
from repro.traffic import PoissonTraffic


def _config(**overrides):
    defaults = dict(
        shards=2,
        shard_capacity=8,
        max_buffered_total=32,
        mean_delay=0.02,
        watchdog_interval=0.05,
        stall_timeout=0.3,
        drain_poll=0.01,
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestServiceConfig:
    def test_defaults_valid(self):
        ServiceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"shards": 0},
            {"shard_capacity": 0},
            {"max_buffered_total": 0},
            {"mean_delay": 0.0},
            {"watchdog_interval": 0.0},
            {"stall_timeout": 0.0},
            {"drain_poll": 0.0},
            {"watchdog_interval": 1.0, "stall_timeout": 0.5},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs)


class TestDegradationLadder:
    def test_classification(self):
        classify = DegradationLadder.classify
        assert classify(shard_full=False, global_full=False) is Tier.NORMAL
        assert classify(shard_full=True, global_full=False) is Tier.PREEMPT
        # The global bound dominates: shed even if the shard had room.
        assert classify(shard_full=False, global_full=True) is Tier.SHED
        assert classify(shard_full=True, global_full=True) is Tier.SHED

    def test_transitions_recorded_and_published(self):
        registry = MetricsRegistry()
        fake_now = [0.0]
        ladder = DegradationLadder(registry, clock=lambda: fake_now[0])
        ladder.note(Tier.NORMAL)
        ladder.note(Tier.NORMAL)
        fake_now[0] = 1.0
        ladder.note(Tier.PREEMPT)
        ladder.note(Tier.SHED)
        ladder.note(Tier.NORMAL)
        assert [(t, a.name, b.name) for t, a, b in ladder.transitions] == [
            (1.0, "NORMAL", "PREEMPT"),
            (1.0, "PREEMPT", "SHED"),
            (1.0, "SHED", "NORMAL"),
        ]
        counters = registry.snapshot()["counters"]
        assert counters["service/tier-transitions"] == 3
        assert counters["service/tier-normal-events"] == 3
        assert counters["service/tier-enter-shed"] == 1
        assert registry.snapshot()["gauges"]["service/tier"] == 1.0


class TestSnapshotFile:
    ENTRIES = [
        SnapshotEntry(
            flow_id=f, seq=s, payload=None, arrival_time=1.0 + s,
            release_time=9.0 + s, admit_seq=s,
        )
        for s, f in enumerate([3, 1, 2])
    ]

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "svc.snap"
        write_snapshot(path, self.ENTRIES)
        loaded, corrupt = load_snapshot(path)
        assert corrupt == 0
        assert loaded == self.ENTRIES

    def test_missing_file(self, tmp_path):
        assert load_snapshot(tmp_path / "nope.snap") == ([], 0)

    def test_sorted_by_admit_seq(self, tmp_path):
        path = tmp_path / "svc.snap"
        write_snapshot(path, list(reversed(self.ENTRIES)))
        loaded, _ = load_snapshot(path)
        assert [e.admit_seq for e in loaded] == [0, 1, 2]

    def test_corrupt_line_skipped_and_counted(self, tmp_path):
        path = tmp_path / "svc.snap"
        write_snapshot(path, self.ENTRIES)
        lines = path.read_text().splitlines()
        lines[2] = lines[2].replace('"sha": "', '"sha": "0000')
        lines.append("not json at all")
        path.write_text("\n".join(lines) + "\n")
        loaded, corrupt = load_snapshot(path)
        assert corrupt == 2
        assert len(loaded) == 2

    def test_atomic_replace_leaves_no_tmp(self, tmp_path):
        path = tmp_path / "svc.snap"
        write_snapshot(path, self.ENTRIES)
        assert not (tmp_path / "svc.snap.tmp").exists()


class TestServiceDataPath:
    def test_submit_release_conservation(self):
        async def main():
            service = TemporalPrivacyService(_config())
            gen = ServiceLoadGenerator(service, PoissonTraffic(rate=400.0), flows=4)
            service.set_on_release(gen.on_release)
            await service.start()
            report = await gen.drive(120)
            drained = await service.drain(timeout=10.0)
            return service, report, drained

        service, report, drained = asyncio.run(main())
        assert drained
        assert service.buffered_total == 0
        assert report.admitted + report.shed == report.submitted
        assert len(report.releases) == report.admitted
        counters = service.registry.snapshot()["counters"]
        assert counters["service/released"] == report.admitted

    def test_rejected_when_not_started(self):
        service = TemporalPrivacyService(_config())
        assert service.submit(StreamEvent(0, 0)) is SubmitOutcome.REJECTED
        assert service.registry.snapshot()["counters"]["service/rejected"] == 1

    def test_flow_ordering_preserved_within_flow(self):
        """A flow's events release in seq order: same shard, and the
        exponential delays are sampled per-admission while poll_due
        orders by release time -- so we only assert per-flow release
        completeness, plus that no event is lost or duplicated."""

        async def main():
            service = TemporalPrivacyService(_config(mean_delay=0.005))
            gen = ServiceLoadGenerator(service, PoissonTraffic(rate=2000.0), flows=3)
            service.set_on_release(gen.on_release)
            await service.start()
            report = await gen.drive(90)
            await service.drain(timeout=10.0)
            return report

        report = asyncio.run(main())
        seen = [(r.event.flow_id, r.event.seq) for r in report.releases]
        assert len(seen) == len(set(seen)) == report.admitted

    def test_preemption_backpressure_tier2(self):
        async def main():
            service = TemporalPrivacyService(
                _config(shards=1, shard_capacity=4, max_buffered_total=100,
                        mean_delay=30.0)
            )
            releases = []
            service.set_on_release(releases.append)
            await service.start()
            outcomes = [service.submit(StreamEvent(0, i)) for i in range(6)]
            await service.stop()
            return outcomes, releases, service

        outcomes, releases, service = asyncio.run(main())
        assert outcomes[:4] == [SubmitOutcome.ADMITTED] * 4
        assert outcomes[4:] == [SubmitOutcome.ADMITTED_PREEMPT] * 2
        # Victims left immediately, flagged early, before release_time.
        assert len(releases) == 2
        assert all(r.early and r.released_at < r.release_time for r in releases)
        assert service.ladder.tier is Tier.PREEMPT
        assert service.registry.snapshot()["counters"]["service/released-early"] == 2

    def test_admission_control_tier3(self):
        async def main():
            service = TemporalPrivacyService(
                _config(shards=2, shard_capacity=8, max_buffered_total=10,
                        mean_delay=30.0)
            )
            await service.start()
            outcomes = [service.submit(StreamEvent(i, 0)) for i in range(14)]
            await service.stop()
            return outcomes, service

        outcomes, service = asyncio.run(main())
        assert outcomes.count(SubmitOutcome.SHED) == 4
        assert service.buffered_total == 10
        counters = service.registry.snapshot()["counters"]
        assert counters["service/shed"] == 4
        assert counters["service/tier-shed-events"] == 4
        assert service.ladder.tier is Tier.SHED

    def test_stats_shape(self):
        async def main():
            service = TemporalPrivacyService(_config())
            await service.start()
            service.submit(StreamEvent(0, 0))
            await service.stop()
            return service.stats()

        stats = asyncio.run(main())
        assert stats["buffered"] == 1
        assert stats["tier"] == 1
        assert stats["shard_restarts"] == [0, 0]
        assert stats["counters"]["service/admitted"] == 1


class TestWatchdog:
    def test_dead_pump_restarted(self):
        async def main():
            service = TemporalPrivacyService(
                _config(watchdog_interval=0.02, stall_timeout=0.1, mean_delay=0.05)
            )
            releases = []
            service.set_on_release(releases.append)
            await service.start()
            # Kill one pump behind the watchdog's back.
            victim_shard = service.shards[0]
            victim_shard.task.cancel()
            await asyncio.sleep(0.1)
            assert victim_shard.restarts >= 1
            # The restarted pump still releases traffic for its shard.
            flow = next(
                f for f in range(64)
                if service._shard_index(f) == victim_shard.index
            )
            service.submit(StreamEvent(flow, 0))
            await service.drain(timeout=5.0)
            return service, releases

        service, releases = asyncio.run(main())
        assert len(releases) == 1
        assert (
            service.registry.snapshot()["counters"]["service/watchdog-restarts"] >= 1
        )


class TestSnapshotRestore:
    def test_shutdown_then_restart_loses_nothing(self, tmp_path):
        snap = tmp_path / "svc.snap"

        async def first():
            service = TemporalPrivacyService(
                _config(mean_delay=30.0, snapshot_path=snap, shard_capacity=16)
            )
            await service.start()
            for i in range(9):
                service.submit(StreamEvent(i % 3, i))
            entries_before = {
                (e.payload.event.flow_id, e.payload.event.seq): e.release_time
                for shard in service.shards
                for e in shard.core.entries()
            }
            persisted = await service.shutdown()
            return persisted, entries_before

        persisted, before = asyncio.run(first())
        assert persisted == 9
        assert snap.exists()

        async def second():
            service = TemporalPrivacyService(
                _config(mean_delay=30.0, snapshot_path=snap, shard_capacity=16)
            )
            restored = await service.start()
            entries_after = {
                (e.payload.event.flow_id, e.payload.event.seq): e.release_time
                for shard in service.shards
                for e in shard.core.entries()
            }
            await service.stop()
            return restored, entries_after

        restored, after = asyncio.run(second())
        assert restored == 9
        # Zero loss, and every event keeps its scheduled release time.
        assert after == before
        assert not snap.exists()

    def test_restore_renumbers_in_admission_order(self, tmp_path):
        """After a restore, preemption ties must pick the event that was
        admitted first in the ORIGINAL process (replay stability)."""
        snap = tmp_path / "svc.snap"
        entries = [
            SnapshotEntry(
                flow_id=0, seq=s, payload=None, arrival_time=float(s),
                release_time=100.0, admit_seq=s,
            )
            for s in (2, 0, 1)
        ]
        write_snapshot(snap, entries)

        async def main():
            service = TemporalPrivacyService(
                _config(shards=1, shard_capacity=3, mean_delay=30.0,
                        snapshot_path=snap)
            )
            releases = []
            service.set_on_release(releases.append)
            await service.start()
            assert service.submit(StreamEvent(0, 99)) is SubmitOutcome.ADMITTED_PREEMPT
            await service.stop()
            return releases

        releases = asyncio.run(main())
        assert len(releases) == 1
        assert releases[0].event.seq == 0  # lowest admit_seq wins the tie

    def test_single_use_instances(self):
        async def main():
            service = TemporalPrivacyService(_config())
            await service.start()
            await service.stop()
            with pytest.raises(RuntimeError):
                await service.start()

        asyncio.run(main())


async def _scrape(port, path):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.decode().partition("\r\n\r\n")
    status = int(head.split()[1])
    return status, body


class TestHttpEndpoints:
    def test_probes_and_metrics(self):
        async def main():
            service = TemporalPrivacyService(_config(mean_delay=0.01))
            await service.start()
            server = MetricsServer(service)
            await server.start()
            port = server.port

            out = {}
            out["healthz_live"] = await _scrape(port, "/healthz")
            out["readyz_live"] = await _scrape(port, "/readyz")
            out["missing"] = (await _scrape(port, "/nope"))[0]
            service.submit(StreamEvent(0, 0))
            out["metrics"] = await _scrape(port, "/metrics")

            drain_task = asyncio.create_task(service.drain(timeout=10.0))
            await asyncio.sleep(0)  # drain flips readiness synchronously
            out["readyz_draining"] = (await _scrape(port, "/readyz"))[0]
            out["healthz_draining"] = (await _scrape(port, "/healthz"))[0]
            await drain_task
            out["healthz_stopped"] = (await _scrape(port, "/healthz"))[0]
            await server.stop()
            return out

        out = asyncio.run(main())
        assert out["healthz_live"][0] == 200
        assert out["readyz_live"][0] == 200
        assert out["missing"] == 404
        status, body = out["metrics"]
        assert status == 200
        assert "repro_service_submitted_total 1" in body
        assert "repro_service_tier 1" in body
        assert 'repro_service_added_delay_bucket{le="+Inf"}' in body
        assert out["readyz_draining"] == 503
        assert out["healthz_draining"] == 200  # draining is alive
        assert out["healthz_stopped"] == 503

    def test_render_prometheus_histogram_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("service/added-delay", edges=(1.0, 2.0))
        for v in (0.5, 1.5, 1.7, 5.0):
            hist.observe(v)
        text = render_prometheus(registry)
        assert 'repro_service_added_delay_bucket{le="1"} 1' in text
        assert 'repro_service_added_delay_bucket{le="2"} 3' in text
        assert 'repro_service_added_delay_bucket{le="+Inf"} 4' in text
        assert "repro_service_added_delay_count 4" in text


class TestLoadGenerator:
    def test_validation(self):
        service = TemporalPrivacyService(_config())
        with pytest.raises(ValueError):
            ServiceLoadGenerator(service, PoissonTraffic(rate=1.0), flows=0)
        with pytest.raises(ValueError):
            ServiceLoadGenerator(service, PoissonTraffic(rate=1.0), speedup=0.0)

    def test_report_added_delays_split_by_early(self):
        async def main():
            service = TemporalPrivacyService(
                _config(shards=1, shard_capacity=2, max_buffered_total=50,
                        mean_delay=30.0)
            )
            gen = ServiceLoadGenerator(
                service, PoissonTraffic(rate=10000.0), flows=1
            )
            service.set_on_release(gen.on_release)
            await service.start()
            await gen.drive(6)
            await service.stop()
            return gen.report

        report = asyncio.run(main())
        assert report.outcomes[SubmitOutcome.ADMITTED_PREEMPT] == 4
        early = report.added_delays(early=True)
        assert len(early) == 4
        assert all(d < 30.0 for d in early)
        assert report.added_delays(early=False) == []

    def test_wall_time_tracks_pacing(self):
        async def main():
            service = TemporalPrivacyService(_config(mean_delay=0.005))
            gen = ServiceLoadGenerator(
                service, PoissonTraffic(rate=100.0), flows=2, speedup=10.0
            )
            service.set_on_release(gen.on_release)
            await service.start()
            start = time.perf_counter()
            report = await gen.drive(30)
            elapsed = time.perf_counter() - start
            await service.drain(timeout=5.0)
            return report, elapsed

        report, elapsed = asyncio.run(main())
        assert report.submitted == 30
        assert report.wall_time <= elapsed + 0.001
