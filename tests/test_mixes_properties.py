"""Property-based tests (hypothesis) on the mix designs."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mixes.designs import PoolMix, StopAndGoMix, ThresholdMix, TimedMix
from repro.mixes.metrics import sender_anonymity_entropy

_SETTINGS = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Strictly positive sorted arrival times.
arrival_lists = st.lists(
    st.floats(min_value=0.01, max_value=1e4), min_size=1, max_size=120
).map(lambda xs: np.sort(np.asarray(xs)))


def _rng(seed):
    return np.random.Generator(np.random.PCG64(seed))


@_SETTINGS
@given(arrival_lists, st.integers(min_value=1, max_value=20), st.integers(0, 9999))
def test_threshold_mix_conservation(arrivals, batch_size, seed):
    output = ThresholdMix(batch_size).transform(arrivals, _rng(seed))
    assert output.departure_times.size == arrivals.size
    assert np.all(output.departure_times >= output.arrival_times - 1e-12)
    # Every message belongs to a batch, and batches are contiguous.
    assert np.all(output.batch_ids >= 0)
    assert np.all(np.diff(output.batch_ids) >= 0)


@_SETTINGS
@given(arrival_lists, st.floats(min_value=0.1, max_value=500.0), st.integers(0, 9999))
def test_timed_mix_departures_on_grid(arrivals, interval, seed):
    output = TimedMix(interval).transform(arrivals, _rng(seed))
    ticks = output.departure_times / interval
    assert np.allclose(ticks, np.round(ticks), atol=1e-6)
    assert np.all(output.departure_times >= output.arrival_times - 1e-9)


@_SETTINGS
@given(
    arrival_lists,
    st.integers(min_value=2, max_value=15),
    st.data(),
)
def test_pool_mix_conservation(arrivals, batch_size, data):
    pool_size = data.draw(st.integers(min_value=0, max_value=batch_size - 1))
    seed = data.draw(st.integers(0, 9999))
    output = PoolMix(batch_size, pool_size).transform(arrivals, _rng(seed))
    # Everything departs, nothing before arrival, batches assigned.
    assert not np.any(np.isnan(output.departure_times))
    assert np.all(output.departure_times >= output.arrival_times - 1e-12)
    assert np.all(output.batch_ids >= 0)


@_SETTINGS
@given(arrival_lists, st.floats(min_value=0.1, max_value=200.0), st.integers(0, 9999))
def test_stop_and_go_individual_batches(arrivals, mean_delay, seed):
    output = StopAndGoMix(mean_delay).transform(arrivals, _rng(seed))
    assert len(set(output.batch_ids.tolist())) == arrivals.size
    assert np.all(output.departure_times >= output.arrival_times)
    assert sender_anonymity_entropy(output) == 0.0


@_SETTINGS
@given(arrival_lists, st.integers(min_value=1, max_value=20), st.integers(0, 9999))
def test_set_entropy_bounded_by_log_batch(arrivals, batch_size, seed):
    """Mean anonymity entropy never exceeds ln(batch size)."""
    import math

    output = ThresholdMix(batch_size).transform(arrivals, _rng(seed))
    assert sender_anonymity_entropy(output) <= math.log(batch_size) + 1e-12
