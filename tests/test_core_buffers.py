"""Unit tests for buffer disciplines, including the RCAD buffer."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.buffers import (
    AdmissionOutcome,
    DropTailBuffer,
    InfiniteBuffer,
    RcadBuffer,
)
from repro.core.victim import LongestRemainingDelay, RandomVictim

RNG = np.random.Generator(np.random.PCG64(0))


class TestInfiniteBuffer:
    def test_admits_everything(self):
        buffer = InfiniteBuffer()
        for i in range(100):
            result = buffer.offer(f"p{i}", arrival_time=float(i), release_time=1e6)
            assert result.outcome is AdmissionOutcome.ADMITTED
        assert buffer.occupancy == 100
        assert buffer.dropped_count == 0
        assert not buffer.is_full

    def test_capacity_is_none(self):
        assert InfiniteBuffer().capacity is None

    def test_release_removes_entry(self):
        buffer = InfiniteBuffer()
        entry = buffer.offer("a", 0.0, 5.0).entry
        released = buffer.release(entry.entry_id)
        assert released.payload == "a"
        assert buffer.occupancy == 0

    def test_release_unknown_raises(self):
        with pytest.raises(KeyError):
            InfiniteBuffer().release(42)

    def test_peak_occupancy_tracked(self):
        buffer = InfiniteBuffer()
        entries = [buffer.offer(i, 0.0, 10.0).entry for i in range(5)]
        for entry in entries:
            buffer.release(entry.entry_id)
        assert buffer.peak_occupancy == 5
        assert buffer.occupancy == 0

    def test_shortest_remaining_release_time(self):
        buffer = InfiniteBuffer()
        buffer.offer("a", 0.0, 9.0)
        buffer.offer("b", 0.0, 4.0)
        assert buffer.shortest_remaining_release_time() == 4.0
        assert InfiniteBuffer().shortest_remaining_release_time() is None

    def test_release_before_arrival_rejected(self):
        with pytest.raises(ValueError):
            InfiniteBuffer().offer("a", arrival_time=5.0, release_time=4.0)


class TestDropTailBuffer:
    def test_drops_when_full(self):
        buffer = DropTailBuffer(capacity=2)
        assert buffer.offer("a", 0.0, 10.0).outcome is AdmissionOutcome.ADMITTED
        assert buffer.offer("b", 0.0, 10.0).outcome is AdmissionOutcome.ADMITTED
        result = buffer.offer("c", 0.0, 10.0)
        assert result.outcome is AdmissionOutcome.DROPPED
        assert result.entry is None and result.victim is None
        assert buffer.occupancy == 2
        assert buffer.dropped_count == 1

    def test_slot_freed_by_release(self):
        buffer = DropTailBuffer(capacity=1)
        entry = buffer.offer("a", 0.0, 5.0).entry
        buffer.release(entry.entry_id)
        assert buffer.offer("b", 6.0, 9.0).outcome is AdmissionOutcome.ADMITTED

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailBuffer(capacity=0)

    def test_counters(self):
        buffer = DropTailBuffer(capacity=1)
        buffer.offer("a", 0.0, 10.0)
        buffer.offer("b", 0.0, 10.0)
        assert buffer.admitted_count == 1
        assert buffer.dropped_count == 1
        assert buffer.preemption_count == 0


class TestRcadBuffer:
    def test_preempts_shortest_remaining_by_default(self):
        buffer = RcadBuffer(capacity=3)
        buffer.offer("slow", 0.0, 50.0)
        buffer.offer("fast", 0.0, 5.0)
        buffer.offer("mid", 0.0, 25.0)
        result = buffer.offer("new", 1.0, 40.0)
        assert result.outcome is AdmissionOutcome.PREEMPTED_VICTIM
        assert result.victim.payload == "fast"
        assert buffer.occupancy == 3  # victim out, new packet in
        assert buffer.preemption_count == 1
        assert buffer.dropped_count == 0

    def test_never_drops(self):
        buffer = RcadBuffer(capacity=1)
        for i in range(50):
            outcome = buffer.offer(i, float(i), float(i) + 30.0).outcome
            assert outcome is not AdmissionOutcome.DROPPED
        assert buffer.dropped_count == 0
        assert buffer.preemption_count == 49

    def test_victim_removed_from_entries(self):
        buffer = RcadBuffer(capacity=1)
        first = buffer.offer("a", 0.0, 30.0)
        second = buffer.offer("b", 1.0, 31.0)
        assert second.victim.entry_id == first.entry.entry_id
        remaining = buffer.entries()
        assert len(remaining) == 1 and remaining[0].payload == "b"
        with pytest.raises(KeyError):
            buffer.release(first.entry.entry_id)

    def test_no_preemption_below_capacity(self):
        buffer = RcadBuffer(capacity=3)
        assert buffer.offer("a", 0.0, 10.0).victim is None
        assert buffer.offer("b", 0.0, 10.0).victim is None
        assert buffer.preemption_count == 0

    def test_custom_victim_policy(self):
        buffer = RcadBuffer(capacity=2, victim_policy=LongestRemainingDelay())
        buffer.offer("short", 0.0, 5.0)
        buffer.offer("long", 0.0, 50.0)
        result = buffer.offer("new", 1.0, 20.0)
        assert result.victim.payload == "long"

    def test_random_victim_uses_supplied_rng(self):
        buffer = RcadBuffer(capacity=2, victim_policy=RandomVictim())
        buffer.offer("a", 0.0, 10.0)
        buffer.offer("b", 0.0, 20.0)
        rng = np.random.Generator(np.random.PCG64(3))
        result = buffer.offer("c", 1.0, 30.0, rng=rng)
        assert result.victim.payload in ("a", "b")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RcadBuffer(capacity=0)

    def test_effective_delay_shortened(self):
        """Preempted packets leave before their scheduled release: the
        mechanism by which RCAD adapts the effective mu."""
        buffer = RcadBuffer(capacity=1)
        buffer.offer("victim-to-be", arrival_time=0.0, release_time=30.0)
        result = buffer.offer("new", arrival_time=2.0, release_time=32.0)
        victim = result.victim
        assert victim.release_time == 30.0
        assert victim.remaining_delay(now=2.0) == 28.0  # delay cut short by 28


class TestBufferInvariants:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0),
                st.floats(min_value=0.0, max_value=60.0),
            ),
            min_size=1,
            max_size=200,
        ),
        st.integers(min_value=1, max_value=8),
    )
    def test_rcad_occupancy_never_exceeds_capacity(self, offers, capacity):
        buffer = RcadBuffer(capacity=capacity)
        now = 0.0
        for gap, delay in offers:
            now += gap
            result = buffer.offer("p", now, now + delay)
            assert result.outcome is not AdmissionOutcome.DROPPED
            assert buffer.occupancy <= capacity
        assert buffer.admitted_count == len(offers)
        assert buffer.peak_occupancy <= capacity

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=100
        ),
        st.integers(min_value=1, max_value=5),
    )
    def test_droptail_conservation(self, gaps, capacity):
        """admitted + dropped == offered, occupancy <= capacity."""
        buffer = DropTailBuffer(capacity=capacity)
        now = 0.0
        for gap in gaps:
            now += gap
            buffer.offer("p", now, now + 30.0)
        assert buffer.admitted_count + buffer.dropped_count == len(gaps)
        assert buffer.occupancy <= capacity

    @given(st.integers(min_value=1, max_value=6))
    def test_rcad_preemptions_equal_overflow_offers(self, capacity):
        buffer = RcadBuffer(capacity=capacity)
        total = 4 * capacity
        for i in range(total):
            buffer.offer(i, float(i), float(i) + 1000.0)
        assert buffer.preemption_count == total - capacity
